//! Quickstart: compile a mini-C program, run DCA, and print the verdict
//! for every loop — including the pointer-chasing loop of the paper's
//! Fig. 1(b) that dependence analysis cannot handle.
//!
//! Run with `cargo run --example quickstart`.

use dca::core::{Dca, DcaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The two loops of the paper's Fig. 1: the same map operation written
    // over an array and over a linked list.
    let source = r#"
        struct Node { val: int, next: *Node }
        let array: [int; 64];

        fn main() -> int {
            // Fig. 1(a): the array-based loop.
            @array_map: for (let i: int = 0; i < 64; i = i + 1) {
                array[i] = array[i] + 1;
            }

            // Build a list, then Fig. 1(b): the PLDS-based loop. The
            // `ptr = ptr.next` update carries a cross-iteration dependence
            // that defeats dependence analysis -- but not commutativity.
            let head: *Node = null;
            for (let i: int = 0; i < 64; i = i + 1) {
                let n: *Node = new Node;
                n.val = i;
                n.next = head;
                head = n;
            }
            let ptr: *Node = head;
            @plds_map: while (ptr != null) {
                ptr.val = ptr.val + 1;
                ptr = ptr.next;
            }

            // Consume both results so they are live-out.
            let sum: int = array[5];
            let q: *Node = head;
            while (q != null) { sum = sum + q.val; q = q.next; }
            print("sum", sum);
            return sum;
        }
    "#;

    let module = dca::ir::compile(source)?;
    let report = Dca::new(DcaConfig::default()).analyze_module(&module)?;

    println!("{report}");
    for tag in ["array_map", "plds_map"] {
        let r = report.by_tag(tag).expect("tagged loop");
        println!(
            "@{tag}: {} ({} iterations observed, {} permutations verified)",
            r.verdict, r.trips, r.permutations_tested
        );
        assert!(r.verdict.is_commutative());
    }
    println!("\nBoth loops are commutative — DCA handles them uniformly.");
    Ok(())
}
