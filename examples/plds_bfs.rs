//! The paper's Fig. 2 walkthrough: run every detection technique on the
//! worklist-based BFS from the suite and show that only DCA finds the
//! top-down step commutative — then simulate parallelizing it.
//!
//! Run with `cargo run --release --example plds_bfs`.

use dca::baselines::all_detectors;
use dca::parallel::SimConfig;
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = dca::suite::by_name("bfs").expect("bfs is in the suite");
    let module = program.module();
    let args = program.targs();

    let top_down = program
        .loop_by_tag(&module, "top_down")
        .expect("the Fig. 2 top-down loop");

    println!("Detection of the BFS top-down step (paper Fig. 2, lines 9-23):");
    for det in all_detectors(dca::core::DcaConfig::fast()) {
        let report = det.detect(&module, &args);
        let d = report.get(top_down).expect("loop analyzed");
        println!(
            "  {:<22} {}  ({})",
            det.technique().to_string(),
            if d.parallel { "PARALLEL" } else { "rejected" },
            d.reason
        );
    }

    // Parallelize what DCA found and estimate the speedup on the paper's
    // 72-core host (simulated).
    let selection = BTreeSet::from([top_down]);
    let speedup =
        dca::parallel::speedup_for_selection(&module, &args, &selection, &SimConfig::paper_host())?;
    println!("\nSimulated 72-core speedup from the top-down step alone: {speedup:.2}x");

    let plan = dca::parallel::ParallelPlan::build(&module, top_down);
    println!(
        "Parallelization plan: {} private vars, {} control vars, {} reductions",
        plan.private.len(),
        plan.control.len(),
        plan.reductions.len()
    );
    Ok(())
}
