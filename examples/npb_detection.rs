//! Detection survey over the NPB-like suite: for each program, how many
//! loops each technique reports parallelizable — a compact, runnable view
//! of the paper's Tables I and III.
//!
//! Run with `cargo run --release --example npb_detection`.

use dca::baselines::all_detectors;

fn main() {
    let detectors = all_detectors(dca::core::DcaConfig::fast());
    print!("{:<8} {:>6}", "Bmk", "Loops");
    for det in &detectors {
        print!(" {:>9}", det.technique().to_string());
    }
    println!();

    let mut totals = vec![0usize; detectors.len()];
    let mut total_loops = 0usize;
    for program in dca::suite::npb::programs() {
        let module = program.module();
        let args = program.targs();
        let loops = dca::ir::all_loops(&module).len();
        total_loops += loops;
        print!("{:<8} {:>6}", program.name.to_uppercase(), loops);
        for (i, det) in detectors.iter().enumerate() {
            let n = det.detect(&module, &args).parallel_count();
            totals[i] += n;
            print!(" {n:>9}");
        }
        println!();
    }
    print!("{:<8} {:>6}", "Total", total_loops);
    for t in &totals {
        print!(" {t:>9}");
    }
    println!();
    println!(
        "\nDCA detects {}x the loops of the best static tool (ICC column).",
        totals[5] as f64 / totals[4].max(1) as f64
    );
}
