//! The 429.mcf case study (paper §V-B2): the one Table II loop known NOT
//! to be statically commutative. Its cross-iteration dependence through
//! `node.pred.potential` is simply never exercised by the paper-like
//! workload, so DCA reports the loop commutative — the profile-dependent
//! behavior speculative parallelizers bet on. On a workload that chains
//! predecessors, DCA correctly flags it.
//!
//! Run with `cargo run --release --example mcf_inputs`.

use dca::core::{Dca, DcaConfig, LoopVerdict};
use dca::interp::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = dca::suite::by_name("mcf").expect("mcf is in the suite");
    let module = program.module();
    let refresh = program
        .loop_by_tag(&module, "refresh")
        .expect("refresh_potential loop");
    let dca = Dca::new(DcaConfig::default());

    // Workload A: flat basis tree — the dependence is dormant (this is
    // the paper's test/ref-input situation).
    let flat = dca.test_loop(&module, refresh, &[Value::Int(256), Value::Int(0)])?;
    println!("flat tree   (dependence dormant):  {}", flat.verdict);
    assert_eq!(flat.verdict, LoopVerdict::Commutative);

    // Workload B: chained predecessors — the dependence fires.
    let deep = dca.test_loop(&module, refresh, &[Value::Int(256), Value::Int(1)])?;
    println!("chained tree (dependence fires):   {}", deep.verdict);
    assert!(matches!(deep.verdict, LoopVerdict::NonCommutative(_)));

    println!(
        "\nSame loop, two inputs, two verdicts: DCA is profile-guided, not\n\
         sound — which is why the paper keeps the user in the loop (§IV-D)."
    );
    Ok(())
}
