//! Regression pins for the footprint pre-check (DESIGN.md §18): across
//! the whole suite, exactly six DCA-commutative loops carry genuine
//! cross-iteration heap flow, and the executor must refuse each of them
//! *before any worker spawns* — with a concrete `(iter_a, iter_b, cell)`
//! witness — while every loop the differential validator accepts keeps
//! validating with an unchanged oracle fingerprint (no false positives).

use dca::core::{Dca, DcaConfig, Obs};
use dca::parallel::{execute_loop, ConflictKind, ExecConfig, ExecError, Schedule};
use dca_rng::Rng;
use std::collections::BTreeSet;

/// The six suite loops that are commutative under sequential permutation
/// (paper §III) yet not decomposable across snapshot-isolated workers:
/// each reads, in a later iteration, a heap cell an earlier iteration
/// changed. Keep in sync with EXPERIMENTS.md's refusal table.
const NOT_DECOMPOSABLE: [&str; 6] = [
    "em3d @sim",
    "lu @ssor_iter",
    "mst @grow",
    "otter @prove",
    "ua @coarsen",
    "water @timestep",
];

fn cfg(precheck: bool) -> ExecConfig {
    ExecConfig {
        threads: 2,
        deps_precheck: precheck,
        ..ExecConfig::from_dca(&DcaConfig::fast())
    }
}

#[test]
fn prespawn_refusals_match_the_validator_exactly() {
    let dca = Dca::new(DcaConfig::fast());
    let mut refused_prespawn = BTreeSet::new();
    let (mut validated, mut structural) = (0usize, 0usize);
    for p in dca::suite::all_programs() {
        let m = p.module();
        let args = p.targs();
        let report = dca.analyze(&m, &args).expect("analyze");
        for r in report.commutative_loops() {
            let tag = r
                .tag
                .as_deref()
                .map(|t| format!(" @{t}"))
                .unwrap_or_default();
            let name = format!("{} {}{tag}", p.name, r.lref);
            let short = r
                .tag
                .as_deref()
                .map(|t| format!("{} @{t}", p.name))
                .unwrap_or_else(|| name.clone());

            let obs = Obs::enabled();
            let with = execute_loop(&m, &args, r.lref, &cfg(true), &obs);
            let without = execute_loop(&m, &args, r.lref, &cfg(false), &Obs::disabled());

            match with {
                Err(ExecError::NotDecomposable {
                    witness,
                    conflicting_cells,
                }) => {
                    refused_prespawn.insert(short.clone());
                    assert!(conflicting_cells > 0, "{name}: empty conflict report");
                    assert_eq!(
                        witness.kind,
                        ConflictKind::Flow,
                        "{name}: suite refusals are all payload flow"
                    );
                    assert!(
                        witness.iter_a < witness.iter_b,
                        "{name}: witness must name two distinct iterations: {witness}"
                    );
                    // Zero spawns: the profile was taken and judged, but
                    // no worker invocation (and no iteration) ran.
                    let counters = obs.rollup().expect("rollup").counters;
                    assert_eq!(counters.get("deps.prespawn_refusals"), Some(&1));
                    assert_eq!(counters.get("deps.loops_profiled"), Some(&1));
                    assert!(counters.get("deps.conflicts").copied() >= Some(1));
                    assert!(
                        !counters.contains_key("exec.invocations")
                            && !counters.contains_key("exec.iters"),
                        "{name}: refused loop must not spawn workers: {counters:?}"
                    );
                    // Defense-in-depth agreement: validator-only mode
                    // rejects the very same loop with evidence.
                    assert!(
                        matches!(without, Err(ExecError::Diverged { .. })),
                        "{name}: validator disagrees with pre-check: {without:?}"
                    );
                }
                Ok(out) => {
                    assert!(out.validated, "{name}: executed but not validated");
                    validated += 1;
                    // No false positives, and the pre-check must not
                    // perturb recording or replay: same oracle.
                    match without {
                        Ok(base) => assert_eq!(
                            (base.validated, base.oracle_fingerprint),
                            (true, out.oracle_fingerprint),
                            "{name}: pre-check changed the outcome"
                        ),
                        Err(e) => panic!("{name}: validator-only mode failed: {e}"),
                    }
                }
                Err(
                    e @ (ExecError::Unresolved(_)
                    | ExecError::OrderSensitive(_)
                    | ExecError::Unsupported(_)),
                ) => {
                    structural += 1;
                    // Structural refusals precede the dependence verdict
                    // and must be mode-independent.
                    assert_eq!(
                        without.as_ref().err().map(ToString::to_string),
                        Some(e.to_string()),
                        "{name}: structural refusal differs without the pre-check"
                    );
                }
                Err(e) => panic!("{name}: unexpected error class: {e}"),
            }
        }
    }
    let expected: BTreeSet<String> = NOT_DECOMPOSABLE.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        refused_prespawn, expected,
        "pre-spawn refusal set drifted from the pinned six"
    );
    assert_eq!(validated, 171, "validated-loop count drifted");
    assert_eq!(structural, 23, "structural-refusal count drifted");
}

/// Loop families for the agreement property. The decomposable three are
/// drawn from the executor's supported envelope (disjoint maps, scalar
/// reductions, histograms); the conflicting one is a genuine RMW flow
/// chain `a[i] = a[i-1] + k`, where a worker starting mid-chain reads a
/// stale snapshot cell.
#[derive(Debug, Clone, Copy)]
enum Family {
    Doall,
    Reduction,
    Histogram,
    FlowRmw,
}

impl Family {
    fn source(self, n: usize, k: i64) -> String {
        let body = match self {
            Family::Doall => format!(
                "let a: [int; 64];\n\
                 @l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                   a[i] = (i * {k} + 3) % 53; }}\n\
                 let t: int = 0;\n\
                 for (let i: int = 0; i < 64; i = i + 1) {{ t = t + a[i] * (i + 1); }}\n\
                 return t;"
            ),
            Family::Reduction => format!(
                "let s: int = {k};\n\
                 @l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                   s = s + (i * i + {k}) % 101; }}\n\
                 return s;"
            ),
            Family::Histogram => format!(
                "let h: [int; 8];\n\
                 @l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                   h[(i * {k} + 1) % 8] = h[(i * {k} + 1) % 8] + 1; }}\n\
                 let t: int = 0;\n\
                 for (let i: int = 0; i < 8; i = i + 1) {{ t = t + h[i] * (i + 1); }}\n\
                 return t;"
            ),
            Family::FlowRmw => format!(
                "let a: [int; 64];\n\
                 @l: for (let i: int = 1; i < {n}; i = i + 1) {{ \
                   a[i] = a[i - 1] + {k}; }}\n\
                 let t: int = 0;\n\
                 for (let i: int = 0; i < 64; i = i + 1) {{ t = t + a[i] * (i + 1); }}\n\
                 return t;"
            ),
        };
        format!("fn main() -> int {{\n{body}\n}}")
    }
}

/// Agreement property: on generated programs the footprint verdict — a
/// pure function of the golden recording — must agree with the
/// differential validator at widths 2 and 4 under both schedules.
/// Decomposable families validate in both modes with the same oracle
/// fingerprint; the flow family is refused pre-spawn in pre-check mode
/// and caught by the validator in validator-only mode. The one relaxed
/// corner is flow under a dynamic schedule, where a racy chunk grab can
/// hand every iteration to one worker in order (see the overlap module
/// docs): there the validator may legitimately accept the run, but never
/// silently — an accepted run must still be validated against the
/// oracle.
#[test]
fn footprint_verdict_agrees_with_validator_on_generated_programs() {
    const FAMILIES: [Family; 4] = [
        Family::Doall,
        Family::Reduction,
        Family::Histogram,
        Family::FlowRmw,
    ];
    let mut rng = Rng::seed_from_u64(0xDEC0);
    for case in 0..24 {
        let family = FAMILIES[case % FAMILIES.len()];
        let n = rng.range_usize(16, 49);
        let k = rng.range_i64(1, 9);
        let src = family.source(n, k);
        let m = dca::ir::compile(&src).expect("generated programs compile");
        let lref = dca::ir::all_loops(&m)
            .into_iter()
            .find(|(_, t)| t.as_deref() == Some("l"))
            .expect("tagged loop")
            .0;
        let schedules = [
            Schedule::StaticBlock,
            Schedule::Dynamic {
                chunk: rng.range_usize(1, 4),
            },
        ];
        for schedule in schedules {
            for w in [2usize, 4] {
                let ctx = format!("case {case}: {family:?} n={n} k={k} w={w} {schedule:?}");
                let run = |precheck: bool| {
                    execute_loop(
                        &m,
                        &[],
                        lref,
                        &ExecConfig {
                            threads: w,
                            schedule,
                            deps_precheck: precheck,
                            ..ExecConfig::from_dca(&DcaConfig::fast())
                        },
                        &Obs::disabled(),
                    )
                };
                let with = run(true);
                let without = run(false);
                match family {
                    Family::Doall | Family::Reduction | Family::Histogram => {
                        let a = with.unwrap_or_else(|e| panic!("{ctx}: pre-check mode: {e}"));
                        let b = without.unwrap_or_else(|e| panic!("{ctx}: validator mode: {e}"));
                        assert!(a.validated && b.validated, "{ctx}: must validate");
                        assert_eq!(
                            a.oracle_fingerprint, b.oracle_fingerprint,
                            "{ctx}: pre-check changed the oracle"
                        );
                        assert_eq!(a.fingerprint, b.fingerprint, "{ctx}: merged state differs");
                    }
                    Family::FlowRmw => {
                        match with {
                            Err(ExecError::NotDecomposable { witness, .. }) => {
                                assert_eq!(witness.kind, ConflictKind::Flow, "{ctx}");
                                assert!(witness.iter_a < witness.iter_b, "{ctx}: {witness}");
                            }
                            other => panic!("{ctx}: flow chain not refused pre-spawn: {other:?}"),
                        }
                        match (schedule, without) {
                            (_, Err(ExecError::Diverged { .. })) => {}
                            (Schedule::Dynamic { .. }, Ok(out)) => assert!(
                                out.validated && out.exact,
                                "{ctx}: a lucky in-order grab must still match the oracle"
                            ),
                            (_, other) => {
                                panic!("{ctx}: validator missed the flow chain: {other:?}")
                            }
                        }
                    }
                }
            }
        }
    }
}
