//! Integration bands for the NPB-side results: the *shape* of Tables I and
//! III must hold on the test workloads — DCA matches the dynamic
//! techniques and roughly doubles the combined static baseline.

use dca::baselines::{
    DcaDetector, DependenceProfiling, Detector, DiscoPopStyle, IccStyle, IdiomsStyle, PollyStyle,
};
use dca::core::DcaConfig;
use dca::ir::LoopRef;
use std::collections::BTreeSet;

struct Counts {
    total: usize,
    depprof: usize,
    discopop: usize,
    idioms: usize,
    polly: usize,
    icc: usize,
    combined: usize,
    dca: usize,
}

fn count_all() -> Counts {
    let mut c = Counts {
        total: 0,
        depprof: 0,
        discopop: 0,
        idioms: 0,
        polly: 0,
        icc: 0,
        combined: 0,
        dca: 0,
    };
    for p in dca::suite::npb::programs() {
        let m = p.module();
        let args = p.targs();
        c.total += dca::ir::all_loops(&m).len();
        c.depprof += DependenceProfiling.detect(&m, &args).parallel_count();
        c.discopop += DiscoPopStyle.detect(&m, &args).parallel_count();
        let idioms: BTreeSet<LoopRef> = IdiomsStyle.detect(&m, &args).parallel_loops().collect();
        let polly: BTreeSet<LoopRef> = PollyStyle.detect(&m, &args).parallel_loops().collect();
        let icc: BTreeSet<LoopRef> = IccStyle.detect(&m, &args).parallel_loops().collect();
        c.idioms += idioms.len();
        c.polly += polly.len();
        c.icc += icc.len();
        let mut comb = idioms;
        comb.extend(polly);
        comb.extend(icc);
        c.combined += comb.len();
        c.dca += DcaDetector::new(DcaConfig::fast())
            .detect(&m, &args)
            .parallel_count();
    }
    c
}

#[test]
fn detection_shape_matches_the_paper() {
    let c = count_all();
    assert!(c.total >= 150, "suite has a realistic loop population");

    // Table I shape: DCA keeps pace with both dynamic techniques.
    let close = |a: usize, b: usize| (a as f64 - b as f64).abs() / (b as f64) < 0.15;
    assert!(
        close(c.dca, c.depprof),
        "DCA ({}) should match DepProf ({})",
        c.dca,
        c.depprof
    );
    assert!(
        close(c.dca, c.discopop) || c.dca > c.discopop,
        "DCA ({}) should keep pace with DiscoPoP ({})",
        c.dca,
        c.discopop
    );

    // Table III shape: DCA detects far more than the static union; the
    // paper reports 86% vs 44% — about 2x.
    let ratio = c.dca as f64 / c.combined as f64;
    assert!(
        ratio > 1.4,
        "DCA ({}) should dwarf combined static ({}) — ratio {ratio:.2}",
        c.dca,
        c.combined
    );
    // DCA finds most of the suite (paper: 86%).
    assert!(c.dca as f64 / c.total as f64 > 0.7);
    // The static tools order as in the paper: ICC strongest.
    assert!(c.icc > c.polly, "ICC ({}) > Polly ({})", c.icc, c.polly);
    assert!(c.icc > c.idioms, "ICC ({}) > Idioms ({})", c.icc, c.idioms);
    // The union is genuinely a union (overlap exists but is not total).
    assert!(c.combined <= c.idioms + c.polly + c.icc);
    assert!(c.combined >= c.icc);
}
