//! The parallel engine's core guarantee: for any worker-thread count, the
//! analysis produces a verdict-identical report — same verdicts, same
//! trips, same `permutations_tested`, same `replay_steps` — as the
//! sequential engine. Exercised across engine seeds, generated programs,
//! and the realistic suite programs.

use dca::core::{Dca, DcaConfig, DcaReport};
use dca_rng::Rng;

fn assert_reports_identical(seq: &DcaReport, par: &DcaReport, context: &str) {
    assert_eq!(seq.len(), par.len(), "{context}: loop counts differ");
    for (s, p) in seq.iter().zip(par.iter()) {
        assert_eq!(s, p, "{context}: outcome differs at {}", s.lref);
        assert_eq!(
            s.replay_steps, p.replay_steps,
            "{context}: replay accounting differs at {}",
            s.lref
        );
    }
}

fn check_all_widths(m: &dca::ir::Module, base: &DcaConfig, context: &str) {
    let seq = Dca::new(DcaConfig {
        threads: 1,
        ..base.clone()
    })
    .analyze_module(m)
    .expect("sequential analysis");
    for threads in [2, 4, 7] {
        let par = Dca::new(DcaConfig {
            threads,
            ..base.clone()
        })
        .analyze_module(m)
        .expect("parallel analysis");
        assert_reports_identical(&seq, &par, &format!("{context} threads={threads}"));
    }
}

/// A mixed-verdict module: maps, reductions, a recurrence and a
/// first-match search, so early-exit paths and full verification paths
/// both run under contention.
fn mixed_module(trip: usize, c: i64) -> dca::ir::Module {
    let src = format!(
        "fn main() -> int {{ \
         let a: [int; 64]; let b: [int; 64]; let s: int = 0; let first: int = 0 - 1; \
         @fill: for (let i: int = 0; i < {trip}; i = i + 1) {{ a[i] = i * {c} % 31; }} \
         @map: for (let i: int = 0; i < {trip}; i = i + 1) {{ b[i] = a[i] * 2 + 1; }} \
         @red: for (let i: int = 0; i < {trip}; i = i + 1) {{ s = s + b[i]; }} \
         @rec: for (let i: int = 1; i < {trip}; i = i + 1) {{ a[i] = a[i - 1] + {c}; }} \
         @find: for (let i: int = 0; i < {trip}; i = i + 1) {{ \
           if (b[i] > 20 && first < 0) {{ first = i; }} }} \
         return s + first + a[{trip} - 1]; }}"
    );
    dca::ir::compile(&src).expect("generated module compiles")
}

#[test]
fn parallel_reports_match_sequential_across_seeds() {
    let mut rng = Rng::seed_from_u64(11);
    let m = mixed_module(24, 3);
    for _ in 0..6 {
        let seed = rng.next_u64();
        let cfg = DcaConfig {
            seed,
            ..DcaConfig::fast()
        };
        check_all_widths(&m, &cfg, &format!("seed={seed:#x}"));
    }
}

#[test]
fn parallel_reports_match_sequential_across_programs() {
    let mut rng = Rng::seed_from_u64(12);
    for case in 0..5 {
        let trip = rng.range_usize(6, 40);
        let c = rng.range_i64(2, 9);
        let m = mixed_module(trip, c);
        check_all_widths(
            &m,
            &DcaConfig::fast(),
            &format!("case {case} trip={trip} c={c}"),
        );
    }
}

#[test]
fn parallel_reports_match_sequential_on_suite_programs() {
    for name in ["ep", "bfs"] {
        let p = dca::suite::by_name(name).expect("suite program");
        let m = p.module();
        let args = p.targs();
        let seq = Dca::new(DcaConfig {
            threads: 1,
            ..DcaConfig::fast()
        })
        .analyze(&m, &args)
        .expect("sequential analysis");
        let par = Dca::new(DcaConfig {
            threads: 4,
            ..DcaConfig::fast()
        })
        .analyze(&m, &args)
        .expect("parallel analysis");
        assert_reports_identical(&seq, &par, name);
        assert_eq!(par.threads, 4);
    }
}

#[test]
fn parallel_matches_sequential_under_loop_exit_scope() {
    // The loop-exit scope adds the identity reference replay to the
    // accounting; it must stay deterministic too.
    let m = mixed_module(20, 5);
    let cfg = DcaConfig {
        verify_scope: dca::core::VerifyScope::LoopExit,
        ..DcaConfig::fast()
    };
    check_all_widths(&m, &cfg, "loop-exit scope");
}

#[test]
fn auto_thread_count_honours_dca_threads_env() {
    // CI runs this whole file in a matrix with DCA_THREADS forced to 1,
    // 2 and 8; `threads: 0` must resolve to exactly that width, and the
    // report must still be identical to the sequential one.
    let m = mixed_module(18, 4);
    let auto = Dca::new(DcaConfig {
        threads: 0,
        ..DcaConfig::fast()
    })
    .analyze_module(&m)
    .expect("auto-width analysis");
    if let Ok(forced) = std::env::var("DCA_THREADS") {
        let expected: usize = forced.parse().expect("DCA_THREADS is an integer");
        assert_eq!(
            auto.threads, expected,
            "DCA_THREADS must win over auto-detect"
        );
    }
    let seq = Dca::new(DcaConfig {
        threads: 1,
        ..DcaConfig::fast()
    })
    .analyze_module(&m)
    .expect("sequential analysis");
    assert_reports_identical(&seq, &auto, "auto width");
}

#[test]
fn obs_counters_identical_across_widths() {
    // The observability rollup rides the same deterministic fold as the
    // verdicts: counter values and span *counts* must not depend on the
    // worker count (durations legitimately do).
    let m = mixed_module(22, 3);
    let deterministic_view = |r: &DcaReport| {
        let obs = r.obs.clone().expect("metrics enabled");
        let spans: Vec<(String, u64)> = obs
            .spans
            .iter()
            .map(|(k, s)| (k.clone(), s.count))
            .collect();
        (obs.counters, spans)
    };
    let base = DcaConfig {
        obs: dca::core::ObsOptions::metrics(),
        ..DcaConfig::fast()
    };
    let seq = Dca::new(DcaConfig {
        threads: 1,
        ..base.clone()
    })
    .analyze_module(&m)
    .expect("sequential analysis");
    let reference = deterministic_view(&seq);
    for threads in [2, 4, 7] {
        let par = Dca::new(DcaConfig {
            threads,
            ..base.clone()
        })
        .analyze_module(&m)
        .expect("parallel analysis");
        assert_reports_identical(&seq, &par, &format!("obs threads={threads}"));
        assert_eq!(
            deterministic_view(&par),
            reference,
            "obs counters/span counts differ at threads={threads}"
        );
    }
}
