//! Kill/resume determinism for the write-ahead run journal.
//!
//! An analysis suite interrupted mid-flight by cooperative cancellation
//! and resumed against the same journal must produce a final report
//! bit-identical to an uninterrupted run — verdicts, trip and
//! permutation counters, and the replay-step accounting — at worker
//! widths 1, 2 and 4. The interrupt points vary per program so cancels
//! land before, inside and after real verification work. Torn journal
//! tails (a kill mid-append) must degrade to re-running exactly the torn
//! loop, never to a panic or a wrong verdict.

use dca::core::{Dca, DcaConfig, FaultPlan, LoopResult, LoopVerdict, SkipReason};
use std::path::PathBuf;

const WIDTHS: [usize; 3] = [1, 2, 4];

fn config(threads: usize) -> DcaConfig {
    DcaConfig {
        threads,
        ..DcaConfig::fast()
    }
}

/// Analyzes every suite program on its test workload — one `analyze`
/// call per program, all sharing `journal` when given — injecting
/// `fault(i)` into program `i`'s run.
fn run_suite(
    width: usize,
    journal: Option<&PathBuf>,
    fault: &dyn Fn(usize) -> Option<FaultPlan>,
) -> Vec<(String, Vec<LoopResult>)> {
    dca::suite::all_programs()
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let cfg = DcaConfig {
                journal: journal.cloned(),
                fault: fault(i),
                ..config(width)
            };
            let report = Dca::new(cfg)
                .analyze(&p.module(), &p.targs())
                .expect("analyze");
            (p.name.to_string(), report.iter().cloned().collect())
        })
        .collect()
}

#[test]
fn killed_suite_resumes_bit_identical_at_every_width() {
    let oracle = run_suite(1, None, &|_| None);
    for width in WIDTHS {
        let dir =
            std::env::temp_dir().join(format!("dca-interrupt-w{width}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let journal = dir.join("suite.journal");
        // Interrupt each program at a point that varies with its
        // position: loop ordinal i % 3, replay slot i % 2. Programs
        // whose targeted site does not exist simply run to completion.
        let interrupted = run_suite(width, Some(&journal), &|i| {
            Some(
                FaultPlan::parse(&format!("cancel@replay:{},loop:{}", i % 2, i % 3))
                    .expect("valid spec"),
            )
        });
        let cancelled: usize = interrupted
            .iter()
            .flat_map(|(_, rs)| rs)
            .filter(|r| r.verdict == LoopVerdict::Skipped(SkipReason::Cancelled))
            .count();
        assert!(
            cancelled > 0,
            "width {width}: the kill must actually land mid-suite"
        );
        // Resume against the same journal with the fault cleared.
        let resumed = run_suite(width, Some(&journal), &|_| None);
        let mut served = 0usize;
        for ((name, o), (_, r)) in oracle.iter().zip(&resumed) {
            assert_eq!(o.len(), r.len(), "width {width}: {name}: report incomplete");
            for (a, b) in o.iter().zip(r) {
                assert_eq!(a, b, "width {width}: {name} {} diverged on resume", a.lref);
                assert_eq!(
                    a.replay_steps, b.replay_steps,
                    "width {width}: {name} {} replay accounting diverged",
                    a.lref
                );
                served += usize::from(b.resumed);
            }
        }
        assert!(
            served > 0,
            "width {width}: some verdicts must be served from the journal"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn torn_journal_tail_degrades_to_rerunning_the_torn_loop() {
    let programs = dca::suite::all_programs();
    let p = programs[0];
    let m = p.module();
    let args = p.targs();
    let oracle = Dca::new(config(2)).analyze(&m, &args).expect("analyze");
    let dir = std::env::temp_dir().join(format!("dca-interrupt-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let journal = dir.join("suite.journal");
    let cfg = DcaConfig {
        journal: Some(journal.clone()),
        ..config(2)
    };
    let full = Dca::new(cfg.clone()).analyze(&m, &args).expect("analyze");
    assert_eq!(
        full.journal.as_ref().expect("stats").recorded as usize,
        oracle.len(),
        "every verdict of a clean run is journaled"
    );
    // A kill mid-append tears the final line.
    let text = std::fs::read_to_string(&journal).expect("journal on disk");
    std::fs::write(&journal, &text.as_bytes()[..text.len() - 10]).expect("tear");
    let resumed = Dca::new(cfg).analyze(&m, &args).expect("analyze");
    let js = resumed.journal.as_ref().expect("stats");
    assert_eq!(js.dropped, 1, "exactly the torn record is dropped");
    assert_eq!(
        js.resumed as usize,
        oracle.len() - 1,
        "every loop but the torn-away one is served from the journal"
    );
    for (o, r) in oracle.iter().zip(resumed.iter()) {
        assert_eq!(o, r, "torn tail must not change any verdict");
        assert_eq!(o.replay_steps, r.replay_steps);
    }
    std::fs::remove_dir_all(&dir).ok();
}
