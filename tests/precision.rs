//! The §V-D precision claims: zero false positives against the expert
//! ground truth, and agreement between the pragmatic permutation presets
//! and exhaustive permutation testing on small trip counts.

use dca::core::{Dca, DcaConfig, LoopVerdict, PermutationSet, Violation};
use dca::ir::LoopRef;
use std::collections::BTreeSet;

#[test]
fn zero_false_positives_and_negatives_on_npb() {
    for p in dca::suite::npb::programs() {
        let m = p.module();
        let report = Dca::new(DcaConfig::fast())
            .analyze(&m, &p.targs())
            .expect("analyze");
        let truth: BTreeSet<LoopRef> = p
            .expert
            .parallel_tags
            .iter()
            .filter_map(|t| p.loop_by_tag(&m, t))
            .collect();
        for r in report.iter() {
            if r.verdict.is_commutative() {
                assert!(
                    truth.contains(&r.lref),
                    "{}: false positive on {} (@{:?})",
                    p.name,
                    r.lref,
                    r.tag
                );
            }
            if matches!(r.verdict, LoopVerdict::NonCommutative(_)) {
                assert!(
                    !truth.contains(&r.lref),
                    "{}: false negative on {} (@{:?})",
                    p.name,
                    r.lref,
                    r.tag
                );
            }
        }
    }
}

#[test]
fn presets_agree_with_exhaustive_on_small_trips() {
    // Run the same program under the reduced presets and under exhaustive
    // permutation enumeration; for loops with small trip counts, both must
    // reach the same verdict (the paper's evidence that the pragmatic
    // scheme loses nothing in practice).
    let src = "fn main() -> int { let a: [int; 6]; let s: int = 0; \
         @map: for (let i: int = 0; i < 6; i = i + 1) { a[i] = i * 3 + 1; } \
         @red: for (let i: int = 0; i < 6; i = i + 1) { s = s + a[i]; } \
         a[0] = 1; \
         @rec: for (let i: int = 1; i < 6; i = i + 1) { a[i] = a[i - 1] * 2; } \
         let t: int = 0; \
         for (let i: int = 0; i < 6; i = i + 1) { t = t + a[i] * (i + 1); } \
         return s * 1000 + t; }";
    let m = dca::ir::compile(src).expect("compile");
    let presets = Dca::new(DcaConfig::fast())
        .analyze_module(&m)
        .expect("analyze");
    let exhaustive = Dca::new(DcaConfig {
        permutations: PermutationSet::Exhaustive {
            max_trip: 6,
            fallback_shuffles: 3,
        },
        ..DcaConfig::fast()
    })
    .analyze_module(&m)
    .expect("analyze");
    // Mismatch diagnostics name the witnessing permutation's values, and
    // different permutation sets legitimately find different witnesses;
    // agreement here means reaching the same classification.
    let class = |v: &LoopVerdict| match v {
        LoopVerdict::NonCommutative(Violation::OutcomeMismatch(_)) => {
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(None))
        }
        other => other.clone(),
    };
    for tag in ["map", "red", "rec"] {
        let a = &presets.by_tag(tag).expect("tag").verdict;
        let b = &exhaustive.by_tag(tag).expect("tag").verdict;
        assert_eq!(class(a), class(b), "@{tag}: presets vs exhaustive disagree");
    }
    assert!(exhaustive.by_tag("map").expect("map").permutations_tested >= 719);
    assert!(matches!(
        exhaustive.by_tag("rec").expect("rec").verdict,
        LoopVerdict::NonCommutative(_)
    ));
}

#[test]
fn verdicts_are_deterministic_across_runs() {
    let p = dca::suite::by_name("cg").expect("cg");
    let m = p.module();
    let dca = Dca::new(DcaConfig::fast());
    let a = dca.analyze(&m, &p.targs()).expect("analyze");
    let b = dca.analyze(&m, &p.targs()).expect("analyze");
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(ra, rb);
    }
}

#[test]
fn seeds_change_schedules_but_not_verdicts_here() {
    let p = dca::suite::by_name("is").expect("is");
    let m = p.module();
    let base = Dca::new(DcaConfig::fast())
        .analyze(&m, &p.targs())
        .expect("analyze");
    let other = Dca::new(DcaConfig {
        seed: 12345,
        ..DcaConfig::fast()
    })
    .analyze(&m, &p.targs())
    .expect("analyze");
    for (ra, rb) in base.iter().zip(other.iter()) {
        assert_eq!(
            ra.verdict, rb.verdict,
            "verdict for {} flipped across seeds",
            ra.lref
        );
    }
}
