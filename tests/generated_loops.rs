//! Differential testing against constructed ground truth: generate loops
//! from archetypes whose commutativity is known by construction, then
//! check that DCA's verdict (and, where the archetype pins it down, the
//! dependence profiler's) matches.

use dca::baselines::{DependenceProfiling, Detector};
use dca::core::{Dca, DcaConfig, LoopVerdict};
use dca_rng::Rng;

/// A loop archetype with known ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Archetype {
    /// `a[i] = f(b[i], i)` — always commutative, dependence-free.
    Map,
    /// `s = s op f(i)` — commutative; profiler accepts via reduction.
    Reduction,
    /// `h[f(i) % B] += g(i)` — commutative; RAW explained as histogram.
    Histogram,
    /// `a[i] = a[i - d] op c` — never commutative (exercised recurrence).
    Recurrence,
    /// `a[i] = b[(i + off) % n]` reading another array — commutative.
    Gather,
    /// `if (b[i] > t) { first = i (once) }` — first-match: not commutative.
    FirstMatch,
}

impl Archetype {
    fn commutative(self) -> bool {
        !matches!(self, Archetype::Recurrence | Archetype::FirstMatch)
    }

    /// Whether the dependence profiler's verdict is pinned by the
    /// archetype (FirstMatch is a scalar-control case it may or may not
    /// accept depending on recognition, so it is left unpinned).
    fn depprof(self) -> Option<bool> {
        match self {
            Archetype::Map | Archetype::Reduction | Archetype::Histogram | Archetype::Gather => {
                Some(true)
            }
            Archetype::Recurrence => Some(false),
            Archetype::FirstMatch => None,
        }
    }

    fn source(self, n: usize, k: i64) -> String {
        let prelude = format!(
            "fn main() -> int {{\n\
             let a: [int; 64]; let b: [int; 64]; let h: [int; 8];\n\
             let s: int = {k}; let first: int = 0 - 1;\n\
             for (let i: int = 0; i < 64; i = i + 1) {{ \
               a[i] = (i * {k} + 3) % 23; b[i] = (i * 7 + {k}) % 19; }}\n"
        );
        let body = match self {
            Archetype::Map => format!(
                "@l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                 a[i] = b[i] * {k} + i; }}"
            ),
            Archetype::Reduction => format!(
                "@l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                 s = s + (i * i + {k}); }}"
            ),
            Archetype::Histogram => format!(
                "@l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                 h[(i * {k} + 1) % 8] = h[(i * {k} + 1) % 8] + 1; }}"
            ),
            Archetype::Recurrence => format!(
                "@l: for (let i: int = 2; i < {n}; i = i + 1) {{ \
                 a[i] = a[i - 1] * 2 + a[i - 2] + {k}; }}"
            ),
            Archetype::Gather => format!(
                "@l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                 a[i] = b[(i + {k}) % 64]; }}"
            ),
            // Every other iteration matches, so at least two candidates
            // exist for n >= 4 and any reordering moves the first match.
            Archetype::FirstMatch => format!(
                "@l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                 if (i % 2 == 0 && first < 0) {{ first = i + {k}; }} }}"
            ),
        };
        let epilogue = "\nlet t: int = 0;\n\
             for (let i: int = 0; i < 64; i = i + 1) { t = t + a[i] * (i + 1) + h[i % 8]; }\n\
             print(t); print(s); print(first);\n\
             return t + s + first; }";
        format!("{prelude}{body}{epilogue}")
    }
}

const ARCHETYPES: [Archetype; 6] = [
    Archetype::Map,
    Archetype::Reduction,
    Archetype::Histogram,
    Archetype::Recurrence,
    Archetype::Gather,
    Archetype::FirstMatch,
];

#[test]
fn dca_matches_constructed_ground_truth() {
    let mut rng = Rng::seed_from_u64(0xDCA);
    for case in 0..48 {
        let arch = *rng.choose(&ARCHETYPES).expect("non-empty");
        let n = rng.range_usize(4, 48);
        let k = rng.range_i64(1, 12);
        let src = arch.source(n, k);
        let m = dca::ir::compile(&src).expect("generated programs compile");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        let r = report.by_tag("l").expect("tagged loop");
        if arch.commutative() {
            assert_eq!(
                r.verdict,
                LoopVerdict::Commutative,
                "case {case}: {arch:?} n={n} k={k} must be commutative, got {} ({src})",
                r.verdict
            );
        } else {
            // Degenerate parameter combinations can make even a recurrence
            // outcome-invariant; require only that no *exercised* verdict
            // claims commutativity when a distinguishing permutation
            // exists. For these archetypes the constructions above are
            // non-degenerate by choice of constants.
            assert!(
                matches!(r.verdict, LoopVerdict::NonCommutative(_)),
                "case {case}: {arch:?} n={n} k={k} must be refuted, got {}",
                r.verdict
            );
        }
        if let Some(expected) = arch.depprof() {
            let dep = DependenceProfiling.detect(&m, &[]);
            let lref = r.lref;
            assert_eq!(
                dep.is_parallel(lref),
                expected,
                "DepProf on {arch:?}: {:?}",
                dep.get(lref)
            );
        }
    }
}

#[test]
fn every_archetype_has_both_verdict_classes_covered() {
    let classes: Vec<bool> = [
        Archetype::Map,
        Archetype::Reduction,
        Archetype::Histogram,
        Archetype::Recurrence,
        Archetype::Gather,
        Archetype::FirstMatch,
    ]
    .iter()
    .map(|a| a.commutative())
    .collect();
    assert!(classes.contains(&true) && classes.contains(&false));
}
