//! Integration test for the Table II claim: DCA detects the key loop of
//! every PLDS program as commutative, and none of the five baselines
//! detects any of them.

use dca::baselines::{
    DcaDetector, DependenceProfiling, Detector, DiscoPopStyle, IccStyle, IdiomsStyle, PollyStyle,
};
use dca::core::DcaConfig;

#[test]
fn every_plds_key_loop_is_dca_only() {
    for p in dca::suite::plds::programs() {
        let m = p.module();
        let args = p.targs();
        let key_tag = p.expert.profitable_tags[0];
        let key = p
            .loop_by_tag(&m, key_tag)
            .unwrap_or_else(|| panic!("{}: missing key loop @{key_tag}", p.name));

        let dca_report = DcaDetector::new(DcaConfig::fast()).detect(&m, &args);
        assert!(
            dca_report.is_parallel(key),
            "{}: DCA must detect @{key_tag}: {:?}",
            p.name,
            dca_report.get(key)
        );

        for det in [
            &DependenceProfiling as &dyn Detector,
            &DiscoPopStyle,
            &IdiomsStyle,
            &PollyStyle,
            &IccStyle,
        ] {
            assert!(
                !det.detect(&m, &args).is_parallel(key),
                "{}: {} unexpectedly detected @{key_tag}",
                p.name,
                det.technique()
            );
        }
    }
}

#[test]
fn table_ii_has_all_fourteen_rows() {
    let programs = dca::suite::plds::programs();
    assert_eq!(programs.len(), 14, "Table II lists fourteen PLDS loops");
    for p in programs {
        let paper = p
            .expert
            .paper
            .unwrap_or_else(|| panic!("{}: missing Table II metadata", p.name));
        assert!(!paper.function.is_empty());
        assert!(
            paper.loop_speedup.is_some() || paper.overall_speedup.is_some(),
            "{}: Table II reports a potential speedup",
            p.name
        );
    }
}

#[test]
fn plds_ground_truth_loops_verified_by_dca() {
    // Every loop the expert annotation marks order-insensitive must be
    // confirmed commutative (no false negatives on the PLDS side either).
    for p in dca::suite::plds::programs() {
        let m = p.module();
        let report = dca::core::Dca::new(DcaConfig::fast())
            .analyze(&m, &p.targs())
            .expect("analyze");
        for tag in p.expert.parallel_tags {
            let r = report
                .by_tag(tag)
                .unwrap_or_else(|| panic!("{}: no loop @{tag}", p.name));
            assert!(
                !matches!(r.verdict, dca::core::LoopVerdict::NonCommutative(_)),
                "{}: @{tag} should be order-insensitive, got {}",
                p.name,
                r.verdict
            );
        }
    }
}
