//! Integration tests for the persistent verdict cache: warm runs must be
//! indistinguishable from cold runs in every outcome-bearing field, at
//! every worker-thread width, and no file damage may ever panic the
//! engine or change a verdict.

use dca::core::{Dca, DcaConfig, DcaReport, ObsOptions};
use dca_rng::Rng;
use std::path::PathBuf;

/// A unique scratch directory per test (the suite runs tests in
/// parallel, so cache files must never be shared implicitly).
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dca-cache-it-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn with_cache(path: &std::path::Path, threads: usize) -> DcaConfig {
    DcaConfig {
        cache: Some(path.to_path_buf()),
        threads,
        obs: ObsOptions::metrics(),
        ..DcaConfig::fast()
    }
}

/// A generated mixed-verdict program: commutative maps and reductions, an
/// order-sensitive recurrence, an excluded (printing) loop and a
/// never-exercised one, so the cache sees every cacheable verdict class.
fn gen_program(rng: &mut Rng) -> dca::ir::Module {
    let n = rng.range_usize(4, 24);
    let c = rng.range_i64(2, 9);
    let src = format!(
        "fn main() -> int {{ \
         let a: [int; 32]; let s: int = 0; \
         @map: for (let i: int = 0; i < {n}; i = i + 1) {{ a[i] = i * {c} % 13; }} \
         @red: for (let i: int = 0; i < {n}; i = i + 1) {{ s = s + a[i] * (i + 1); }} \
         @ncr: for (let i: int = 0; i < {n}; i = i + 1) {{ s = s * 2 + i; }} \
         @io: for (let i: int = 0; i < 2; i = i + 1) {{ print(i); }} \
         @cold: for (let i: int = 0; i < 0; i = i + 1) {{ a[0] = i; }} \
         return s + a[{n} - 1]; }}"
    );
    dca::ir::compile(&src).expect("generated program compiles")
}

/// Full-report equality modulo the documented non-outcome fields
/// (`wall`, `cached`): everything else — verdicts with payloads, trips,
/// permutation counts, replay-step accounting, loop order — must match.
fn assert_reports_equal_modulo_cache(a: &DcaReport, b: &DcaReport, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: loop counts differ");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x, y, "{context}: outcome differs at {}", x.lref);
        assert_eq!(
            x.replay_steps, y.replay_steps,
            "{context}: replay accounting differs at {}",
            x.lref
        );
    }
}

#[test]
fn cached_verdict_equals_fresh_verdict() {
    let dir = scratch("property");
    let mut rng = Rng::seed_from_u64(21);
    for case in 0..6 {
        let m = gen_program(&mut rng);
        let path = dir.join(format!("case-{case}.json"));
        // The oracle: a fresh analysis with no cache at all.
        let fresh = Dca::new(DcaConfig {
            threads: 1,
            ..DcaConfig::fast()
        })
        .analyze_module(&m)
        .expect("fresh analysis");
        // Cold run populates the cache; its report must already equal the
        // cacheless oracle, with nothing marked cached.
        let cold = Dca::new(with_cache(&path, 1))
            .analyze_module(&m)
            .expect("cold analysis");
        assert_reports_equal_modulo_cache(&fresh, &cold, &format!("case {case} cold"));
        assert_eq!(cold.cached_count(), 0, "case {case}: cold run has no hits");
        let stats = cold.cache.clone().expect("cache configured");
        assert!(!stats.bypassed);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, cold.len() as u64);
        assert!(stats.stores > 0, "case {case}: cold run stores verdicts");
        // Warm runs at every width serve the same full report.
        for threads in [1, 2, 4] {
            let warm = Dca::new(with_cache(&path, threads))
                .analyze_module(&m)
                .expect("warm analysis");
            let context = format!("case {case} warm threads={threads}");
            assert_reports_equal_modulo_cache(&fresh, &warm, &context);
            let stats = warm.cache.clone().expect("cache configured");
            assert_eq!(stats.misses, 0, "{context}: every consult hits");
            assert_eq!(stats.stores, 0, "{context}: nothing new to store");
            assert_eq!(stats.faults, 0, "{context}: no integrity faults");
            assert_eq!(
                warm.cached_count() as u64,
                stats.hits,
                "{context}: per-loop cached flags mirror the hit count"
            );
            assert!(
                warm.cached_count() > 0,
                "{context}: warm run must serve hits"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_obs_rollups_identical_across_widths() {
    // Cache hits ride the same deterministic fold as everything else:
    // counter values (including `cache.{hits,misses,stores}`) and span
    // counts must not depend on the worker count.
    let dir = scratch("rollup");
    let path = dir.join("cache.json");
    let m = gen_program(&mut Rng::seed_from_u64(22));
    let deterministic_view = |r: &DcaReport| {
        let obs = r.obs.clone().expect("metrics enabled");
        let spans: Vec<(String, u64)> = obs
            .spans
            .iter()
            .map(|(k, s)| (k.clone(), s.count))
            .collect();
        (obs.counters, spans)
    };
    // Pre-warm, then compare fully-warm runs across widths.
    Dca::new(with_cache(&path, 1))
        .analyze_module(&m)
        .expect("pre-warm");
    let seq = Dca::new(with_cache(&path, 1))
        .analyze_module(&m)
        .expect("warm sequential");
    assert!(seq.cached_count() > 0, "warm run hits");
    let reference = deterministic_view(&seq);
    assert!(
        reference.0.get("cache.hits").copied().unwrap_or(0) > 0,
        "cache.hits counter present in the rollup"
    );
    for threads in [2, 4, 7] {
        let par = Dca::new(with_cache(&path, threads))
            .analyze_module(&m)
            .expect("warm parallel");
        assert_reports_equal_modulo_cache(&seq, &par, &format!("warm threads={threads}"));
        assert_eq!(
            deterministic_view(&par),
            reference,
            "warm rollup differs at threads={threads}"
        );
    }
    // Cold runs are equally deterministic: fresh file per width, same
    // rollup (cache.misses/stores counters included).
    let cold_view = |threads: usize| {
        let p = dir.join(format!("cold-{threads}.json"));
        let r = Dca::new(with_cache(&p, threads))
            .analyze_module(&m)
            .expect("cold run");
        deterministic_view(&r)
    };
    let cold_ref = cold_view(1);
    assert!(cold_ref.0.get("cache.misses").copied().unwrap_or(0) > 0);
    for threads in [2, 4] {
        assert_eq!(
            cold_view(threads),
            cold_ref,
            "cold rollup differs at threads={threads}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn key_changes_invalidate_stale_verdicts() {
    let dir = scratch("invalidate");
    let path = dir.join("cache.json");
    let mut rng = Rng::seed_from_u64(23);
    let m1 = gen_program(&mut rng);
    let m2 = gen_program(&mut rng);
    let cold = Dca::new(with_cache(&path, 2))
        .analyze_module(&m1)
        .expect("cold");
    assert_eq!(cold.cached_count(), 0);
    // A different program against the same file: all misses, no stale
    // verdicts served.
    let other = Dca::new(with_cache(&path, 2))
        .analyze_module(&m2)
        .expect("other program");
    assert_eq!(other.cached_count(), 0, "different program never hits");
    // A verdict-affecting knob change also misses, while the original
    // configuration still hits.
    let reseeded = Dca::new(DcaConfig {
        seed: 4242,
        ..with_cache(&path, 2)
    })
    .analyze_module(&m1)
    .expect("reseeded");
    assert_eq!(reseeded.cached_count(), 0, "knob change never hits");
    let warm = Dca::new(with_cache(&path, 2))
        .analyze_module(&m1)
        .expect("warm");
    assert!(warm.cached_count() > 0, "original key still hits");
    assert_reports_equal_modulo_cache(&cold, &warm, "warm after interleaved runs");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_cache_bypasses_with_fault_counter_and_correct_verdicts() {
    let dir = scratch("damage");
    let path = dir.join("cache.json");
    let m = gen_program(&mut Rng::seed_from_u64(24));
    let fresh = Dca::new(DcaConfig {
        threads: 2,
        ..DcaConfig::fast()
    })
    .analyze_module(&m)
    .expect("fresh");
    std::fs::write(&path, "{\"schema\": \"dca-cache/1\", \"entries\": [trunc").expect("write");
    let damaged = Dca::new(with_cache(&path, 2))
        .analyze_module(&m)
        .expect("analysis survives damage");
    assert_reports_equal_modulo_cache(&fresh, &damaged, "damaged file");
    assert_eq!(damaged.cached_count(), 0);
    let stats = damaged.cache.clone().expect("cache configured");
    assert!(stats.bypassed, "damage degrades to bypass");
    assert_eq!(stats.faults, 1);
    let obs = damaged.obs.expect("metrics enabled");
    assert_eq!(
        obs.counters.get("engine.cache_fault").copied(),
        Some(1),
        "fault surfaces as the engine.cache_fault counter"
    );
    assert_eq!(
        std::fs::read_to_string(&path).expect("read"),
        "{\"schema\": \"dca-cache/1\", \"entries\": [trunc",
        "the damaged file is left for inspection"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_injection_and_deadlines_bypass_the_cache() {
    let dir = scratch("bypass");
    let path = dir.join("cache.json");
    let m = gen_program(&mut Rng::seed_from_u64(25));
    // Pre-warm with the plain config.
    Dca::new(with_cache(&path, 1))
        .analyze_module(&m)
        .expect("pre-warm");
    let faulty = Dca::new(DcaConfig {
        fault: Some(dca::core::FaultPlan::parse("panic@replay:1").expect("fault spec")),
        ..with_cache(&path, 1)
    })
    .analyze_module(&m)
    .expect("fault-injected run");
    let stats = faulty.cache.clone().expect("cache configured");
    assert!(stats.bypassed, "fault injection must not consult the cache");
    assert_eq!(faulty.cached_count(), 0);
    let deadline = Dca::new(DcaConfig {
        max_wall: dca::core::WallLimits {
            analysis: Some(std::time::Duration::from_secs(3600)),
            replay: None,
        },
        ..with_cache(&path, 1)
    })
    .analyze_module(&m)
    .expect("deadline run");
    assert!(
        deadline.cache.expect("cache configured").bypassed,
        "wall deadlines must not consult the cache"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_file_fuzz_never_panics_or_serves_wrong_verdicts() {
    // `dca-rng`-driven byte mutations of a valid cache file: whatever the
    // mutation does — file-level damage (bypass), entry-level damage
    // (checksum drop → recompute) or no semantic change (hit) — the
    // report must equal the cacheless oracle and nothing may panic.
    let dir = scratch("fuzz");
    let path = dir.join("cache.json");
    let m = gen_program(&mut Rng::seed_from_u64(26));
    let fresh = Dca::new(DcaConfig {
        threads: 2,
        ..DcaConfig::fast()
    })
    .analyze_module(&m)
    .expect("fresh");
    Dca::new(with_cache(&path, 2))
        .analyze_module(&m)
        .expect("populate");
    let pristine = std::fs::read(&path).expect("read cache file");
    assert!(!pristine.is_empty());
    let mut rng = Rng::seed_from_u64(27);
    for case in 0..40 {
        let mut bytes = pristine.clone();
        match rng.below(4) {
            // Truncate at a random point.
            0 => bytes.truncate(rng.range_usize(0, bytes.len())),
            // Flip bits in a few random bytes.
            1 => {
                for _ in 0..rng.range_usize(1, 6) {
                    let i = rng.range_usize(0, bytes.len());
                    bytes[i] ^= 1 << rng.range_usize(0, 8);
                }
            }
            // Overwrite a random span with random bytes.
            2 => {
                let start = rng.range_usize(0, bytes.len());
                let len = rng.range_usize(1, 24).min(bytes.len() - start);
                for b in &mut bytes[start..start + len] {
                    *b = rng.range_u64(0, 256) as u8;
                }
            }
            // Splice a chunk of the file into itself (shuffles entries
            // and separators around while staying mostly textual).
            _ => {
                let start = rng.range_usize(0, bytes.len());
                let len = rng.range_usize(1, 48).min(bytes.len() - start);
                let chunk: Vec<u8> = bytes[start..start + len].to_vec();
                let at = rng.range_usize(0, bytes.len());
                for (i, b) in chunk.into_iter().enumerate() {
                    bytes.insert(at + i, b);
                }
            }
        }
        std::fs::write(&path, &bytes).expect("write mutated file");
        let mutated = Dca::new(with_cache(&path, 2))
            .analyze_module(&m)
            .expect("analysis survives any mutation");
        assert_reports_equal_modulo_cache(&fresh, &mutated, &format!("fuzz case {case}"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dca_cache_env_var_enables_the_cache() {
    // The env path is what CI's cache job uses. Setting env vars is
    // process-global, so this test talks to a subprocess-free seam
    // instead: config wins only when the env is unset, which it is for
    // the rest of this suite — here we set it around a single analyze.
    let dir = scratch("env");
    let path = dir.join("env-cache.json");
    let m = gen_program(&mut Rng::seed_from_u64(28));
    // SAFETY/isolation note: no other test in this *file* reads
    // DCA_CACHE concurrently with a different expectation; the variable
    // is removed again before the test ends.
    std::env::set_var("DCA_CACHE", &path);
    let cold = Dca::new(DcaConfig::fast())
        .analyze_module(&m)
        .expect("cold");
    let warm = Dca::new(DcaConfig::fast())
        .analyze_module(&m)
        .expect("warm");
    std::env::remove_var("DCA_CACHE");
    assert_eq!(cold.cached_count(), 0);
    assert!(warm.cached_count() > 0, "env-configured cache serves hits");
    assert_eq!(
        warm.cache.expect("stats").path,
        path,
        "stats report the env-resolved path"
    );
    std::fs::remove_dir_all(&dir).ok();
}
