//! Golden regression test: per-benchmark detection counts for all six
//! techniques on the fast workloads. These values pin the shapes of
//! Tables I and III — any analysis or suite change that shifts them is
//! either a deliberate re-calibration (refresh with
//! `cargo run --release -p dca-bench --bin golden_counts`) or a
//! regression.

/// (name, total, depprof, discopop, idioms, polly, icc, dca)
type GoldenRow = (
    &'static str,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
);
const GOLDEN: &[GoldenRow] = &[
    ("bt", 25, 23, 23, 4, 7, 11, 23),
    ("cg", 14, 10, 9, 5, 2, 6, 10),
    ("dc", 14, 6, 4, 3, 2, 4, 6),
    ("ep", 9, 6, 4, 2, 3, 4, 6),
    ("ft", 15, 12, 11, 3, 3, 6, 13),
    ("is", 9, 6, 5, 4, 0, 3, 6),
    ("lu", 22, 17, 18, 2, 3, 8, 18),
    ("mg", 14, 9, 10, 1, 2, 5, 8),
    ("sp", 27, 25, 25, 2, 3, 11, 25),
    ("ua", 30, 28, 27, 8, 3, 12, 29),
    ("mcf", 3, 0, 0, 0, 0, 0, 3),
    ("twolf", 4, 0, 0, 0, 0, 0, 4),
    ("ks", 4, 0, 0, 0, 0, 0, 3),
    ("otter", 4, 0, 0, 0, 0, 0, 4),
    ("em3d", 7, 0, 0, 0, 0, 0, 5),
    ("mst", 6, 0, 0, 0, 0, 0, 5),
    ("bh", 4, 0, 0, 0, 0, 0, 3),
    ("perimeter", 3, 1, 1, 0, 0, 0, 2),
    ("treeadd", 2, 1, 1, 0, 0, 0, 2),
    ("hash", 3, 0, 0, 0, 0, 0, 2),
    ("bfs", 9, 4, 4, 1, 2, 3, 7),
    ("ising", 4, 0, 0, 0, 0, 0, 3),
    ("spmatmat", 7, 3, 3, 1, 1, 2, 7),
    ("water", 8, 1, 1, 0, 0, 0, 6),
];

#[test]
fn detection_counts_match_golden_values() {
    let mut failures = Vec::new();
    for &(name, total, depprof, discopop, idioms, polly, icc, dca) in GOLDEN {
        let p = dca_suite::by_name(name).unwrap_or_else(|| panic!("missing program {name}"));
        let (_m, r) = dca_bench::detect_all(p, true);
        let got = (
            r.total,
            r.depprof.parallel_count(),
            r.discopop.parallel_count(),
            r.idioms.parallel_count(),
            r.polly.parallel_count(),
            r.icc.parallel_count(),
            r.dca.parallel_count(),
        );
        let want = (total, depprof, discopop, idioms, polly, icc, dca);
        if got != want {
            failures.push(format!("{name}: got {got:?}, want {want:?}"));
        }
    }
    assert!(
        failures.is_empty(),
        "golden detection counts drifted:\n{}",
        failures.join("\n")
    );
}

#[test]
fn golden_covers_every_program() {
    let names: Vec<&str> = GOLDEN.iter().map(|g| g.0).collect();
    for p in dca_suite::all_programs() {
        assert!(names.contains(&p.name), "{} missing from GOLDEN", p.name);
    }
    assert_eq!(names.len(), dca_suite::all_programs().len());
}
