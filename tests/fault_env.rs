//! `DCA_FAULT` environment-variable plumbing for the fault-injection
//! harness. Environment mutation is process-global, so this file holds a
//! single test function (its own test binary) and performs the checks
//! sequentially — no other test in this process races on the variable.

use dca::core::{Dca, DcaConfig, DcaReport, FaultPlan, LoopVerdict, SkipReason};

const SRC: &str = "fn main() -> int { let a: [int; 16]; let s: int = 0;\n\
     @fill: for (let i: int = 0; i < 12; i = i + 1) { a[i] = i * 5 % 13; }\n\
     @sum: for (let i: int = 0; i < 12; i = i + 1) { s = s + a[i]; }\n\
     return s; }";

fn analyze(m: &dca::ir::Module, cfg: DcaConfig) -> DcaReport {
    Dca::new(cfg).analyze_module(m).expect("analysis runs")
}

fn verdict_of(report: &DcaReport, tag: &str) -> LoopVerdict {
    report.by_tag(tag).expect("tagged loop").verdict.clone()
}

#[test]
fn dca_fault_env_spec_is_honored_ignored_and_overridden() {
    let m = dca::ir::compile(SRC).expect("compiles");
    let cfg = DcaConfig {
        threads: 2,
        ..DcaConfig::fast()
    };
    let baseline = analyze(&m, cfg.clone());
    assert!(verdict_of(&baseline, "fill").is_commutative());
    assert!(verdict_of(&baseline, "sum").is_commutative());

    // A valid spec in the environment arms the fault with no config
    // change at all — the chaos entry point for release binaries.
    std::env::set_var("DCA_FAULT", "panic@replay:1,loop:0");
    let env_faulted = analyze(&m, cfg.clone());
    assert!(
        matches!(
            verdict_of(&env_faulted, "fill"),
            LoopVerdict::Skipped(SkipReason::EngineFault(_))
        ),
        "env-armed fault must be injected: {:?}",
        verdict_of(&env_faulted, "fill")
    );
    assert_eq!(
        verdict_of(&env_faulted, "sum"),
        LoopVerdict::Commutative,
        "the un-targeted loop is untouched"
    );

    // An explicit `DcaConfig::fault` wins over the environment.
    let explicit = DcaConfig {
        fault: Some(FaultPlan::parse("panic@replay:0,loop:1").expect("valid")),
        ..cfg.clone()
    };
    let config_faulted = analyze(&m, explicit);
    assert_eq!(
        verdict_of(&config_faulted, "fill"),
        LoopVerdict::Commutative,
        "config plan replaces the env plan, so loop 0 is clean"
    );
    assert!(
        matches!(
            verdict_of(&config_faulted, "sum"),
            LoopVerdict::Skipped(SkipReason::EngineFault(_))
        ),
        "config plan targets loop 1"
    );

    // A typo'd spec is reported and ignored — it must not change
    // analysis behavior (and must not panic).
    std::env::set_var("DCA_FAULT", "explode@never:1");
    let ignored = analyze(&m, cfg.clone());
    for (b, r) in baseline.iter().zip(ignored.iter()) {
        assert_eq!(b, r, "invalid spec must leave the analysis untouched");
    }

    // A `cancel@…` spec cooperatively stops the run mid-verification.
    // Single-threaded, so the cut point is exact: loops decided before
    // the cancel keep their verdicts, the target stops at the next safe
    // point with a valid partial report.
    let seq = DcaConfig {
        threads: 1,
        ..cfg.clone()
    };
    std::env::set_var("DCA_FAULT", "cancel@replay:0,loop:1");
    let cancelled = analyze(&m, seq.clone());
    assert_eq!(
        verdict_of(&cancelled, "fill"),
        LoopVerdict::Commutative,
        "loops decided before the cancel keep their verdicts"
    );
    assert_eq!(
        verdict_of(&cancelled, "sum"),
        LoopVerdict::Skipped(SkipReason::Cancelled),
        "the targeted loop stops at the next safe point"
    );

    // `DCA_JOURNAL` plumbing: the interrupted run journals its decided
    // loops; with the fault cleared, a resumed run against the same
    // journal serves them and finishes the rest, matching the baseline.
    let dir = std::env::temp_dir().join(format!("dca-fault-env-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let jpath = dir.join("run.journal");
    std::env::set_var("DCA_JOURNAL", &jpath);
    let interrupted = analyze(&m, seq.clone());
    assert_eq!(
        verdict_of(&interrupted, "sum"),
        LoopVerdict::Skipped(SkipReason::Cancelled)
    );
    std::env::remove_var("DCA_FAULT");
    let resumed = analyze(&m, seq);
    std::env::remove_var("DCA_JOURNAL");
    assert_eq!(
        resumed.journal.as_ref().expect("journal stats").resumed,
        1,
        "the decided loop is served from the env-configured journal"
    );
    assert!(resumed.by_tag("fill").expect("fill").resumed);
    for (b, r) in baseline.iter().zip(resumed.iter()) {
        assert_eq!(b, r, "resumed run equals the uninterrupted baseline");
    }
    std::fs::remove_dir_all(&dir).ok();

    std::env::remove_var("DCA_FAULT");
    let clean = analyze(&m, cfg);
    for (b, r) in baseline.iter().zip(clean.iter()) {
        assert_eq!(b, r, "unset variable restores fault-free behavior");
    }
}
