//! Soak test: the full evaluation pipeline on the *default* (class-B-like)
//! workloads — everything the table binaries do, asserted end to end.
//! Ignored by default because it takes a few minutes in debug builds; run
//! with `cargo test --release --test full_suite -- --ignored`.

use dca::core::LoopVerdict;
use std::collections::BTreeSet;

#[test]
#[ignore = "several seconds in release; run explicitly"]
fn full_default_workload_sweep() {
    let mut npb_total = 0usize;
    let mut npb_dca = 0usize;
    let mut npb_static = 0usize;
    for p in dca::suite::all_programs() {
        let m = p.module();
        let args = p.args();
        // The program itself must run clean on the evaluation workload.
        let r = dca::interp::run_program(&m, &args)
            .unwrap_or_else(|e| panic!("{} trapped on default args: {e}", p.name));
        assert!(!r.output.is_empty(), "{}: no verification digest", p.name);

        // DCA with the default configuration.
        let report = dca::core::Dca::new(dca::core::DcaConfig::default())
            .analyze(&m, &args)
            .expect("analyze");

        // Zero false positives / negatives against the expert annotations.
        let truth: BTreeSet<_> = p
            .expert
            .parallel_tags
            .iter()
            .filter_map(|t| p.loop_by_tag(&m, t))
            .collect();
        for lr in report.iter() {
            if lr.verdict.is_commutative() {
                assert!(
                    truth.contains(&lr.lref),
                    "{}: false positive {} (@{:?})",
                    p.name,
                    lr.lref,
                    lr.tag
                );
            }
            if matches!(lr.verdict, LoopVerdict::NonCommutative(_)) {
                assert!(
                    !truth.contains(&lr.lref),
                    "{}: false negative {} (@{:?})",
                    p.name,
                    lr.lref,
                    lr.tag
                );
            }
        }

        if matches!(p.group, dca::suite::Group::Npb) {
            npb_total += report.len();
            npb_dca += report.commutative_count();
            npb_static += dca::baselines::combined_static(&m).len();
        } else {
            // PLDS: key loop detected by DCA on the evaluation workload.
            let key = p
                .loop_by_tag(&m, p.expert.profitable_tags[0])
                .expect("key loop");
            assert!(
                report
                    .get(key)
                    .map(|r| r.verdict.is_commutative())
                    .unwrap_or(false),
                "{}: key loop not commutative on default workload",
                p.name
            );
        }
    }
    // Table III shape on the evaluation workloads.
    assert!(npb_dca as f64 / npb_total as f64 > 0.75);
    assert!(npb_dca as f64 / npb_static as f64 > 1.4);
}
