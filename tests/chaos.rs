//! Chaos suite for the verification engine's fault-containment layer.
//!
//! Sweeps deterministic fault injections ([`dca::core::FaultPlan`]) over
//! a mixed-verdict module at several worker-thread widths and asserts the
//! containment contract: the engine always returns a *complete*
//! [`DcaReport`], loops the fault did not target are bit-identical to the
//! fault-free run, and the obs rollup records every injected fault.
//! Wall-clock deadline handling is exercised with zero deadlines, which
//! expire deterministically on every host.

use dca::core::{
    Dca, DcaConfig, DcaReport, FaultPlan, LoopVerdict, ObsOptions, SkipReason, Violation,
    WallLimits,
};
use dca::interp::Trap;
use std::time::Duration;

/// A module with known verdicts at every ordinal: two commutative array
/// loops, a commutative allocating reduction (so OOM injection has an
/// allocation to fail), and a genuine recurrence (so the sweep also
/// covers a loop whose fault-free verdict is non-commutative).
const CHAOS_SRC: &str = "struct Node { val: int, next: *Node }\n\
     fn main() -> int {\n\
       let a: [int; 16]; let s: int = 0; let t: int = 0;\n\
       @fill: for (let i: int = 0; i < 12; i = i + 1) { a[i] = i * 5 % 13; }\n\
       @sum: for (let i: int = 0; i < 12; i = i + 1) { s = s + a[i]; }\n\
       @grow: for (let i: int = 0; i < 10; i = i + 1) {\n\
         let n: *Node = new Node; n.val = i * 2; t = t + n.val; }\n\
       @rec: for (let i: int = 1; i < 12; i = i + 1) { a[i] = a[i - 1] + 1; }\n\
       return s + t + a[11];\n\
     }";

const WIDTHS: [usize; 3] = [1, 2, 8];

fn compile() -> dca::ir::Module {
    dca::ir::compile(CHAOS_SRC).expect("chaos module compiles")
}

fn config(threads: usize) -> DcaConfig {
    DcaConfig {
        threads,
        obs: ObsOptions::metrics(),
        ..DcaConfig::fast()
    }
}

fn analyze(m: &dca::ir::Module, cfg: DcaConfig) -> DcaReport {
    Dca::new(cfg).analyze_module(m).expect("analysis runs")
}

/// The analysis ordinal of the loop tagged `tag` (reports are in analysis
/// order, so the report position *is* the ordinal faults target).
fn ordinal_of(report: &DcaReport, tag: &str) -> usize {
    report
        .iter()
        .position(|r| r.tag.as_deref() == Some(tag))
        .expect("tagged loop in report")
}

fn faults_counter(report: &DcaReport, kind: &str) -> u64 {
    report
        .obs
        .as_ref()
        .expect("metrics on")
        .counter(match kind {
            "panic" => "engine.faults.panic",
            "stall" => "engine.faults.stall",
            "trap" => "engine.faults.trap",
            "oom" => "engine.faults.oom",
            "cancel" => "engine.faults.cancel",
            "kill" => "engine.faults.kill",
            other => panic!("unknown fault kind {other}"),
        })
}

/// Asserts every loop except `faulted_ordinal` is bit-identical to the
/// fault-free baseline — verdict, trips, permutation count, and the
/// deterministic replay-step accounting.
fn assert_unfaulted_identical(
    baseline: &DcaReport,
    faulted: &DcaReport,
    faulted_ordinal: usize,
    context: &str,
) {
    assert_eq!(
        baseline.len(),
        faulted.len(),
        "{context}: report incomplete"
    );
    for (i, (b, f)) in baseline.iter().zip(faulted.iter()).enumerate() {
        if i == faulted_ordinal {
            continue;
        }
        assert_eq!(b, f, "{context}: un-faulted loop {i} diverged");
        assert_eq!(
            b.replay_steps, f.replay_steps,
            "{context}: un-faulted loop {i} replay accounting diverged"
        );
    }
}

/// The core sweep: every fault kind, injected at its site, at every
/// worker width. Each case asserts (a) a complete report, (b) un-faulted
/// loops bit-identical to the fault-free run, (c) the faulted loop's
/// verdict classifies the fault, (d) the obs rollup counts the fault.
#[test]
fn fault_sweep_contains_every_kind_at_every_width() {
    let m = compile();
    let baseline = analyze(&m, config(1));
    let fill = ordinal_of(&baseline, "fill");
    let sum = ordinal_of(&baseline, "sum");
    let grow = ordinal_of(&baseline, "grow");
    assert!(
        baseline
            .iter()
            .nth(fill)
            .expect("fill")
            .verdict
            .is_commutative()
            && baseline
                .iter()
                .nth(sum)
                .expect("sum")
                .verdict
                .is_commutative()
            && baseline
                .iter()
                .nth(grow)
                .expect("grow")
                .verdict
                .is_commutative(),
        "sweep targets must be commutative fault-free"
    );
    // (spec, target ordinal, expected verdict check)
    type Check = fn(&LoopVerdict) -> bool;
    let panic_check: Check = |v| matches!(v, LoopVerdict::Skipped(SkipReason::EngineFault(_)));
    let stall_check: Check = LoopVerdict::is_commutative;
    let trap_check: Check = |v| {
        matches!(
            v,
            LoopVerdict::NonCommutative(Violation::ReplayTrapped(Trap::Injected))
        )
    };
    let oom_check: Check = |v| {
        matches!(
            v,
            LoopVerdict::NonCommutative(Violation::ReplayTrapped(Trap::OutOfMemory))
        )
    };
    let cases: Vec<(String, usize, &str, Check)> = vec![
        (
            format!("panic@replay:0,loop:{fill}"),
            fill,
            "panic",
            panic_check,
        ),
        (
            format!("panic@replay:1,loop:{sum}"),
            sum,
            "panic",
            panic_check,
        ),
        (
            format!("stall@replay:0,loop:{sum}"),
            sum,
            "stall",
            stall_check,
        ),
        (
            format!("stall@replay:2,loop:{fill}"),
            fill,
            "stall",
            stall_check,
        ),
        (
            format!("trap@step:5,replay:1,loop:{fill}"),
            fill,
            "trap",
            trap_check,
        ),
        (
            format!("trap@step:5,replay:0,loop:{sum}"),
            sum,
            "trap",
            trap_check,
        ),
        (format!("oom@alloc:0,loop:{grow}"), grow, "oom", oom_check),
        (format!("oom@alloc:3,loop:{grow}"), grow, "oom", oom_check),
    ];
    for (spec, target, kind, check) in &cases {
        let plan = FaultPlan::parse(spec).expect("sweep specs are valid");
        let mut per_width: Vec<DcaReport> = Vec::new();
        for width in WIDTHS {
            let cfg = DcaConfig {
                fault: Some(plan.clone()),
                ..config(width)
            };
            let report = analyze(&m, cfg);
            let context = format!("spec `{spec}` width {width}");
            assert_unfaulted_identical(&baseline, &report, *target, &context);
            let faulted = report.iter().nth(*target).expect("faulted loop present");
            assert!(
                check(&faulted.verdict),
                "{context}: unexpected verdict {:?}",
                faulted.verdict
            );
            assert_eq!(
                faults_counter(&report, kind),
                1,
                "{context}: rollup must count the injected fault"
            );
            per_width.push(report);
        }
        // The faulted run itself is deterministic across widths.
        for (w, report) in WIDTHS.iter().zip(&per_width).skip(1) {
            for (a, b) in per_width[0].iter().zip(report.iter()) {
                assert_eq!(a, b, "spec `{spec}`: width {w} diverged from width 1");
                assert_eq!(
                    a.replay_steps, b.replay_steps,
                    "spec `{spec}`: width {w} replay accounting diverged"
                );
            }
        }
    }
}

/// A fault aimed past every loop (or past every replay slot) must not
/// perturb anything: the report is bit-identical to the fault-free run
/// and no fault is counted.
#[test]
fn fault_aimed_nowhere_changes_nothing() {
    let m = compile();
    let baseline = analyze(&m, config(1));
    for spec in ["panic@replay:0,loop:99", "trap@step:1,replay:77"] {
        let cfg = DcaConfig {
            fault: Some(FaultPlan::parse(spec).expect("valid")),
            ..config(2)
        };
        let report = analyze(&m, cfg);
        assert_unfaulted_identical(&baseline, &report, usize::MAX, spec);
        for kind in ["panic", "stall", "trap", "oom"] {
            assert_eq!(faults_counter(&report, kind), 0, "{spec}: no fault fired");
        }
    }
}

/// Injected faults are surfaced as `fault` trace events when a trace sink
/// is attached.
#[test]
fn injected_faults_emit_trace_events() {
    let m = compile();
    let path = std::env::temp_dir().join(format!("dca-chaos-trace-{}.jsonl", std::process::id()));
    let cfg = DcaConfig {
        fault: Some(FaultPlan::parse("panic@replay:1").expect("valid")),
        obs: ObsOptions {
            metrics: true,
            trace: Some(path.clone()),
        },
        threads: 2,
        ..DcaConfig::fast()
    };
    let report = analyze(&m, cfg);
    assert_eq!(faults_counter(&report, "panic"), 1);
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let fault_lines: Vec<&str> = trace
        .lines()
        .filter(|l| l.contains("\"fault\"") && l.contains("engine.faults.panic"))
        .collect();
    assert_eq!(fault_lines.len(), 1, "exactly one fault event:\n{trace}");
    assert!(
        fault_lines[0].contains("\"replay\":1"),
        "event names the targeted slot: {}",
        fault_lines[0]
    );
}

/// An expired whole-analysis deadline still yields a complete report:
/// every loop present, every one skipped with the deadline reason. A zero
/// deadline expires before any work on every host, so this is
/// deterministic despite deadlines being wall-clock-dependent.
#[test]
fn zero_analysis_deadline_skips_every_loop_deterministically() {
    let m = compile();
    for width in WIDTHS {
        let cfg = DcaConfig {
            max_wall: WallLimits {
                analysis: Some(Duration::ZERO),
                replay: None,
            },
            ..config(width)
        };
        let report = analyze(&m, cfg);
        assert_eq!(report.len(), 4, "width {width}: report complete");
        for r in report.iter() {
            assert_eq!(
                r.verdict,
                LoopVerdict::Skipped(SkipReason::Deadline),
                "width {width}: loop {} must be deadline-skipped",
                r.lref
            );
        }
    }
}

/// A zero per-run deadline expires during golden recording; loops that
/// would have been excluded statically are still excluded (the static
/// stage runs before any governed execution).
#[test]
fn zero_replay_deadline_skips_recorded_loops() {
    let src = "fn main() -> int { let a: [int; 8]; let s: int = 0;\n\
         @io: for (let i: int = 0; i < 4; i = i + 1) { print(i); }\n\
         @map: for (let i: int = 0; i < 8; i = i + 1) { a[i] = i; }\n\
         for (let i: int = 0; i < 8; i = i + 1) { s = s + a[i]; } return s; }";
    let m = dca::ir::compile(src).expect("compiles");
    for width in WIDTHS {
        let cfg = DcaConfig {
            max_wall: WallLimits {
                analysis: None,
                replay: Some(Duration::ZERO),
            },
            ..config(width)
        };
        let report = analyze(&m, cfg);
        assert!(
            matches!(
                report.by_tag("io").expect("io").verdict,
                LoopVerdict::Excluded(_)
            ),
            "width {width}: static exclusion still wins"
        );
        assert_eq!(
            report.by_tag("map").expect("map").verdict,
            LoopVerdict::Skipped(SkipReason::Deadline),
            "width {width}: recording hits the zero deadline"
        );
    }
}

/// An injected `cancel@…` fault trips the run's cancellation token
/// mid-verification: the targeted loop stops at the next safe point with
/// `Skipped(Cancelled)`, every other loop is either bit-identical to the
/// fault-free run or likewise cancelled, and the report stays complete.
#[test]
fn cancel_fault_stops_at_a_safe_point_with_a_valid_partial_report() {
    let m = compile();
    let baseline = analyze(&m, config(1));
    let sum = ordinal_of(&baseline, "sum");
    let plan = FaultPlan::parse(&format!("cancel@replay:0,loop:{sum}")).expect("valid");
    for width in WIDTHS {
        let cfg = DcaConfig {
            fault: Some(plan.clone()),
            ..config(width)
        };
        let report = analyze(&m, cfg);
        let context = format!("cancel width {width}");
        assert_eq!(report.len(), baseline.len(), "{context}: report complete");
        let target = report.iter().nth(sum).expect("target loop present");
        assert_eq!(
            target.verdict,
            LoopVerdict::Skipped(SkipReason::Cancelled),
            "{context}: the targeted loop stops at the next safe point"
        );
        for (i, (b, f)) in baseline.iter().zip(report.iter()).enumerate() {
            if i == sum {
                continue;
            }
            assert!(
                f.verdict == LoopVerdict::Skipped(SkipReason::Cancelled) || b == f,
                "{context}: loop {i} must be cancelled or baseline-identical, got {:?}",
                f.verdict
            );
        }
        assert_eq!(
            faults_counter(&report, "cancel"),
            1,
            "{context}: rollup counts the injected cancel once"
        );
        // Width 1 is fully sequential, so the cut point is exact: loops
        // before the target completed, loops after never started.
        if width == 1 {
            for (i, (b, f)) in baseline.iter().zip(report.iter()).enumerate() {
                if i < sum {
                    assert_eq!(b, f, "loop {i} completed before the cancel");
                } else {
                    assert_eq!(
                        f.verdict,
                        LoopVerdict::Skipped(SkipReason::Cancelled),
                        "loop {i} never started after the cancel"
                    );
                }
            }
        }
    }
}

/// The chaos proof of the cache save protocol's atomicity: a simulated
/// process kill mid-save (`kill@save:0` between temp write and rename,
/// `kill@save:1` mid temp write) never corrupts or replaces the real
/// cache file, and a later clean run behaves exactly like the cacheless
/// oracle.
#[test]
fn kill_save_fault_never_corrupts_the_cache_file() {
    let m = compile();
    let oracle = analyze(&m, config(1));
    let dir = std::env::temp_dir().join(format!("dca-chaos-killsave-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("verdicts.dcache");
    let cache_cfg = |fault: Option<&str>| DcaConfig {
        cache: Some(path.clone()),
        fault: fault.map(|s| FaultPlan::parse(s).expect("valid")),
        ..config(2)
    };
    // A kill on a *cold* save leaves no cache file at all — a torn temp
    // write must never become the cache. The verdicts themselves are
    // unperturbed: the kill strikes after verification.
    let cold = analyze(&m, cache_cfg(Some("kill@save:1")));
    assert_eq!(cold.cache.as_ref().expect("stats").faults, 1);
    assert!(!path.exists(), "torn temp file must never be renamed in");
    for (o, r) in oracle.iter().zip(cold.iter()) {
        assert_eq!(o, r, "kill-save must not perturb verdicts");
    }
    // A clean run lands the file; the leftover temp is simply rewritten
    // and consumed by the rename.
    let stored = analyze(&m, cache_cfg(None));
    assert_eq!(stored.cache.as_ref().expect("stats").faults, 0);
    let good = std::fs::read(&path).expect("cache file exists after clean save");
    assert!(
        !path.with_extension("tmp").exists(),
        "clean save leaves no temp file"
    );
    // Kills at both stages leave the existing file byte-identical. A
    // roomy heap budget shifts the cache keys (it is absorbed into
    // them) without touching any verdict, so these runs miss, add
    // fresh entries, and actually attempt the save the kill targets.
    for (stage, spec) in [
        ("after temp write", "kill@save:0"),
        ("mid temp write", "kill@save:1"),
    ] {
        let killed = analyze(
            &m,
            DcaConfig {
                max_heap_cells: Some(1 << 20),
                ..cache_cfg(Some(spec))
            },
        );
        assert_eq!(
            killed.cache.as_ref().expect("stats").faults,
            1,
            "{stage}: save fault surfaced in the stats"
        );
        assert_eq!(
            std::fs::read(&path).expect("cache file"),
            good,
            "{stage}: the real file must be untouched"
        );
    }
    // A warm run against the surviving file serves every verdict; the
    // inert temp left by the simulated kills never shadows it.
    let warm = analyze(&m, cache_cfg(None));
    assert_eq!(
        warm.cache.as_ref().expect("stats").hits as usize,
        oracle.len()
    );
    for (o, r) in oracle.iter().zip(warm.iter()) {
        assert_eq!(o, r, "warm verdicts match the cacheless oracle");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A deterministic engine fault is retried `fault_retries` times with
/// exact accounting; once the budget is exhausted the loop is
/// quarantined in the run journal, and the next journaled run skips it
/// immediately instead of re-tripping the same contained panic.
#[test]
fn exhausted_retries_quarantine_the_loop_in_the_journal() {
    let m = compile();
    let baseline = analyze(&m, config(1));
    let fill = ordinal_of(&baseline, "fill");
    let dir = std::env::temp_dir().join(format!("dca-chaos-quarantine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("run.journal");
    let cfg = || DcaConfig {
        journal: Some(path.clone()),
        fault: Some(FaultPlan::parse(&format!("panic@replay:0,loop:{fill}")).expect("valid")),
        fault_retries: 2,
        ..config(2)
    };
    let first = analyze(&m, cfg());
    let f = first.iter().nth(fill).expect("target loop");
    assert!(
        matches!(f.verdict, LoopVerdict::Skipped(SkipReason::EngineFault(_))),
        "deterministic fault survives every retry: {:?}",
        f.verdict
    );
    assert!(!f.resumed);
    let obs = first.obs.as_ref().expect("metrics on");
    assert_eq!(obs.counter("engine.retries"), 2, "both retries accounted");
    assert_eq!(
        faults_counter(&first, "panic"),
        3,
        "initial attempt plus two retries each trip the fault"
    );
    let js = first.journal.as_ref().expect("journal stats");
    assert_eq!(js.quarantined, 1, "the exhausted loop is quarantined");
    assert_eq!(
        js.recorded, 1,
        "perturbing plan: only the quarantine record is journaled"
    );
    // Second run against the same journal: the quarantined loop is
    // served immediately, the panic never re-fires, and the untargeted
    // loops still verify to their true verdicts.
    let second = analyze(&m, cfg());
    let f2 = second.iter().nth(fill).expect("target loop");
    assert!(
        f2.resumed,
        "quarantined loop must be served from the journal"
    );
    assert!(matches!(
        f2.verdict,
        LoopVerdict::Skipped(SkipReason::EngineFault(_))
    ));
    assert_eq!(faults_counter(&second, "panic"), 0);
    assert_eq!(
        second
            .obs
            .as_ref()
            .expect("metrics")
            .counter("engine.retries"),
        0
    );
    assert_eq!(second.journal.as_ref().expect("stats").resumed, 1);
    for (i, (b, s)) in baseline.iter().zip(second.iter()).enumerate() {
        if i != fill {
            assert_eq!(b, s, "untargeted loop {i} diverged");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A heap budget turns a runaway replay into `Skipped(MemoryBudget)`
/// instead of an OOM kill — deterministically at every width — while a
/// roomy budget perturbs nothing.
#[test]
fn heap_budget_degrades_to_memory_budget_skips() {
    let m = compile();
    for width in WIDTHS {
        let cfg = DcaConfig {
            max_heap_cells: Some(4),
            ..config(width)
        };
        let report = analyze(&m, cfg);
        assert_eq!(report.len(), 4, "width {width}: report complete");
        for r in report.iter() {
            assert_eq!(
                r.verdict,
                LoopVerdict::Skipped(SkipReason::MemoryBudget),
                "width {width}: loop {} must degrade to a budget skip",
                r.lref
            );
        }
        assert_eq!(
            report
                .obs
                .as_ref()
                .expect("metrics on")
                .counter("engine.mem_budget"),
            4,
            "width {width}: every budget skip is counted"
        );
    }
    let baseline = analyze(&m, config(1));
    let roomy = analyze(
        &m,
        DcaConfig {
            max_heap_cells: Some(1 << 20),
            ..config(1)
        },
    );
    for (b, r) in baseline.iter().zip(roomy.iter()) {
        assert_eq!(b, r, "a roomy budget must not perturb verdicts");
        assert_eq!(b.replay_steps, r.replay_steps);
    }
}

/// The paper's §IV-E observation, now carried into the verdict: a loop
/// whose golden order is safe but whose *reversed* order reads a cell
/// that has not been written yet refutes commutativity with the concrete
/// out-of-bounds trap — at every worker width.
#[test]
fn permutation_induced_oob_is_a_concrete_violation_at_every_width() {
    // idx[i] is written by iteration i-1 (idx[0] is seeded), so the
    // golden order always reads a valid index; a reversed replay reads
    // the unwritten sentinel -1 and indexes a[-1].
    let src = "fn main() -> int {\n\
         let idx: [int; 8]; let a: [int; 8]; let s: int = 0;\n\
         for (let i: int = 0; i < 8; i = i + 1) { idx[i] = 0 - 1; }\n\
         idx[0] = 0;\n\
         @chain: for (let i: int = 0; i < 8; i = i + 1) {\n\
           a[idx[i]] = i * 3;\n\
           if (i < 7) { idx[i + 1] = i + 1; }\n\
         }\n\
         for (let i: int = 0; i < 8; i = i + 1) { s = s + a[i]; }\n\
         return s; }";
    let m = dca::ir::compile(src).expect("compiles");
    for width in WIDTHS {
        let report = analyze(&m, config(width));
        let r = report.by_tag("chain").expect("chain");
        assert_eq!(
            r.verdict,
            LoopVerdict::NonCommutative(Violation::ReplayTrapped(Trap::OutOfBounds {
                len: 8,
                index: -1
            })),
            "width {width}: reversed order must trap on the unwritten index"
        );
    }
}
