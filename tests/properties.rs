//! Property-based tests over the core invariants, using generated
//! programs and inputs.

use dca::core::{Dca, DcaConfig, LoopVerdict};
use dca::interp::Value;
use proptest::prelude::*;

/// A small generator of pure arithmetic expressions over `a[i]`, `i` and
/// constants — every loop of the form `a[i] = <expr>` is a map and must be
/// commutative.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a[i]".to_string()),
        Just("i".to_string()),
        (1i64..9).prop_map(|c| c.to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), prop_oneof![Just("+"), Just("*"), Just("-")], inner)
            .prop_map(|(l, op, r)| format!("({l} {op} {r})"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_map_loops_are_commutative(expr in expr_strategy(), n in 3usize..24) {
        let src = format!(
            "fn main() -> int {{ let a: [int; 32]; let s: int = 0; \
             @m: for (let i: int = 0; i < {n}; i = i + 1) {{ a[i] = {expr}; }} \
             for (let i: int = 0; i < {n}; i = i + 1) {{ s = s + a[i] * (i + 1); }} \
             return s; }}"
        );
        let m = dca::ir::compile(&src).expect("compile");
        let report = Dca::new(DcaConfig::fast()).analyze_module(&m).expect("analyze");
        prop_assert_eq!(
            &report.by_tag("m").expect("m").verdict,
            &LoopVerdict::Commutative
        );
    }

    #[test]
    fn generated_reduction_loops_are_commutative(
        coef in 1i64..7,
        n in 3usize..32,
        mul in prop::bool::ANY,
    ) {
        let op = if mul { "*" } else { "+" };
        let src = format!(
            "fn main() -> int {{ let s: int = 1; \
             @r: for (let i: int = 0; i < {n}; i = i + 1) {{ \
               s = s {op} (i % 5 + {coef}); }} \
             return s; }}"
        );
        let m = dca::ir::compile(&src).expect("compile");
        let report = Dca::new(DcaConfig::fast()).analyze_module(&m).expect("analyze");
        prop_assert_eq!(
            &report.by_tag("r").expect("r").verdict,
            &LoopVerdict::Commutative
        );
    }

    #[test]
    fn prefix_recurrences_are_never_commutative(n in 4usize..24, c in 2i64..5) {
        // a[i] = a[i-1] * c + i: genuinely order-sensitive, consumed by a
        // position-weighted checksum.
        let src = format!(
            "fn main() -> int {{ let a: [int; 32]; a[0] = 1; let s: int = 0; \
             @rec: for (let i: int = 1; i < {n}; i = i + 1) {{ \
               a[i] = a[i - 1] * {c} + i; }} \
             for (let i: int = 0; i < {n}; i = i + 1) {{ s = s + a[i] * (i + 1); }} \
             return s; }}"
        );
        let m = dca::ir::compile(&src).expect("compile");
        let report = Dca::new(DcaConfig::fast()).analyze_module(&m).expect("analyze");
        prop_assert!(matches!(
            report.by_tag("rec").expect("rec").verdict,
            LoopVerdict::NonCommutative(_)
        ));
    }

    #[test]
    fn parser_never_panics(src in "[a-z0-9(){};:=<>+*\\-@ \n]{0,160}") {
        // Arbitrary near-token soup must produce Ok or Err, never a panic.
        let _ = dca::ir::compile(&src);
    }

    #[test]
    fn interpreter_is_deterministic(seed in 0i64..1000) {
        let p = dca::suite::by_name("ep").expect("ep");
        let m = p.module();
        let args = [Value::Int(4 + seed % 4), Value::Int(8)];
        let a = dca::interp::run_program(&m, &args).expect("run");
        let b = dca::interp::run_program(&m, &args).expect("run");
        prop_assert_eq!(a.ret, b.ret);
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn simulator_speedup_is_bounded_by_cores_and_work(
        costs in prop::collection::vec(1u64..500, 1..300),
        cores in 1usize..96,
    ) {
        let cfg = dca::parallel::SimConfig::with_cores(cores);
        let r = dca::parallel::simulate_invocation(&costs, &cfg);
        let seq: u64 = costs.iter().sum();
        prop_assert_eq!(r.seq_steps, seq);
        prop_assert!(r.speedup() <= cores as f64 + 1e-9);
        // The critical path can never beat the largest single iteration.
        if cores > 1 {
            let max = *costs.iter().max().expect("non-empty");
            prop_assert!(r.par_steps >= max);
        }
    }
}
