//! Property-based tests over the core invariants, using generated
//! programs and inputs. Cases are generated from a fixed-seed [`Rng`], so
//! every run explores the same space deterministically.

use dca::core::{Dca, DcaConfig, DigestMode, LoopVerdict};
use dca::interp::Value;
use dca_rng::Rng;

/// A small generator of pure arithmetic expressions over `a[i]`, `i` and
/// constants — every loop of the form `a[i] = <expr>` is a map and must be
/// commutative.
fn gen_expr(rng: &mut Rng, depth: usize) -> String {
    if depth == 0 || rng.below(3) == 0 {
        match rng.below(3) {
            0 => "a[i]".to_string(),
            1 => "i".to_string(),
            _ => rng.range_i64(1, 9).to_string(),
        }
    } else {
        let l = gen_expr(rng, depth - 1);
        let r = gen_expr(rng, depth - 1);
        let op = ["+", "*", "-"][rng.range_usize(0, 3)];
        format!("({l} {op} {r})")
    }
}

#[test]
fn generated_map_loops_are_commutative() {
    let mut rng = Rng::seed_from_u64(1);
    for case in 0..24 {
        let expr = gen_expr(&mut rng, 3);
        let n = rng.range_usize(3, 24);
        let src = format!(
            "fn main() -> int {{ let a: [int; 32]; let s: int = 0; \
             @m: for (let i: int = 0; i < {n}; i = i + 1) {{ a[i] = {expr}; }} \
             for (let i: int = 0; i < {n}; i = i + 1) {{ s = s + a[i] * (i + 1); }} \
             return s; }}"
        );
        let m = dca::ir::compile(&src).expect("compile");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        assert_eq!(
            report.by_tag("m").expect("m").verdict,
            LoopVerdict::Commutative,
            "case {case}: a[i] = {expr} with n={n}"
        );
    }
}

#[test]
fn generated_reduction_loops_are_commutative() {
    let mut rng = Rng::seed_from_u64(2);
    for case in 0..24 {
        let coef = rng.range_i64(1, 7);
        let n = rng.range_usize(3, 32);
        let op = if rng.flip() { "*" } else { "+" };
        let src = format!(
            "fn main() -> int {{ let s: int = 1; \
             @r: for (let i: int = 0; i < {n}; i = i + 1) {{ \
               s = s {op} (i % 5 + {coef}); }} \
             return s; }}"
        );
        let m = dca::ir::compile(&src).expect("compile");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        assert_eq!(
            report.by_tag("r").expect("r").verdict,
            LoopVerdict::Commutative,
            "case {case}: s = s {op} (i % 5 + {coef}) with n={n}"
        );
    }
}

#[test]
fn prefix_recurrences_are_never_commutative() {
    // a[i] = a[i-1] * c + i: genuinely order-sensitive, consumed by a
    // position-weighted checksum.
    let mut rng = Rng::seed_from_u64(3);
    for case in 0..24 {
        let n = rng.range_usize(4, 24);
        let c = rng.range_i64(2, 5);
        let src = format!(
            "fn main() -> int {{ let a: [int; 32]; a[0] = 1; let s: int = 0; \
             @rec: for (let i: int = 1; i < {n}; i = i + 1) {{ \
               a[i] = a[i - 1] * {c} + i; }} \
             for (let i: int = 0; i < {n}; i = i + 1) {{ s = s + a[i] * (i + 1); }} \
             return s; }}"
        );
        let m = dca::ir::compile(&src).expect("compile");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        assert!(
            matches!(
                report.by_tag("rec").expect("rec").verdict,
                LoopVerdict::NonCommutative(_)
            ),
            "case {case}: n={n} c={c}"
        );
    }
}

#[test]
fn parser_never_panics() {
    // Arbitrary near-token soup must produce Ok or Err, never a panic.
    const CHARSET: &[u8] = b"abcxyz0123(){};:=<>+*-@ \n";
    let mut rng = Rng::seed_from_u64(4);
    for _ in 0..200 {
        let len = rng.range_usize(0, 160);
        let src: String = (0..len)
            .map(|_| CHARSET[rng.range_usize(0, CHARSET.len())] as char)
            .collect();
        let _ = dca::ir::compile(&src);
    }
}

#[test]
fn interpreter_is_deterministic() {
    let p = dca::suite::by_name("ep").expect("ep");
    let m = p.module();
    let mut rng = Rng::seed_from_u64(5);
    for _ in 0..8 {
        let seed = rng.range_i64(0, 1000);
        let args = [Value::Int(4 + seed % 4), Value::Int(8)];
        let a = dca::interp::run_program(&m, &args).expect("run");
        let b = dca::interp::run_program(&m, &args).expect("run");
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.output, b.output);
        assert_eq!(a.steps, b.steps);
    }
}

/// Generates a program that touches every journaled dimension: a global
/// array mutated in place, frame variables, fresh heap allocations and
/// the output stream. The `oob` bound, when below `heap`, makes the
/// second loop trap mid-write after a few stores have already landed.
fn gen_journal_program(rng: &mut Rng, heap: usize, oob: Option<usize>) -> String {
    let trip = rng.range_usize(2, heap + 1);
    let expr = gen_expr(rng, 2).replace("a[i]", "g[i]");
    let limit = oob.map_or(trip, |bound| bound + 1);
    format!(
        "let g: [int; {heap}];\n\
         fn main() -> int {{\n\
           let s: int = 0;\n\
           for (let i: int = 0; i < {heap}; i = i + 1) {{ g[i] = i * 3; }}\n\
           for (let i: int = 0; i < {limit}; i = i + 1) {{\n\
             g[i] = {expr}; s = s + g[i];\n\
           }}\n\
           let n: *int = new [int; {trip}];\n\
           n[0] = s; print(s);\n\
           return s + n[0] + g[{trip} - 1];\n\
         }}"
    )
}

/// Differential oracle for the tentpole: for generated programs, snapshot
/// points and trap shapes, a journaled [`Machine::rollback`] must leave
/// the machine bit-identical to the snapshot it was armed at — the same
/// state a full [`Machine::restore`] reconstructs — and a rerun from the
/// rolled-back machine must replay identically to one from a fresh
/// restore.
#[test]
fn journal_rollback_equals_full_restore() {
    use dca::interp::{Machine, NoHooks, Trap};

    let mut rng = Rng::seed_from_u64(7);
    for case in 0..32 {
        // One third of the cases trap out-of-bounds mid-loop, after some
        // journaled writes have already landed; the rest run clean.
        let heap = rng.range_usize(4, 16);
        let oob = (case % 3 == 0).then_some(heap);
        let src = gen_journal_program(&mut rng, heap, oob);
        let m = dca::ir::compile(&src).expect("generated program compiles");
        let main = m.main().expect("main");

        let mut machine = Machine::new(&m);
        machine.push_call(main, &[]).expect("push");
        // Random snapshot point, then arm the journal exactly there. A
        // warmup that already hit the trap leaves nothing to journal.
        let warmup = rng.range_u64(1, 40);
        let Ok(warm) = machine.run(&mut NoHooks, warmup) else {
            continue;
        };
        let snap = machine.snapshot();
        machine.begin_journal();
        let first = machine.run(&mut NoHooks, 100_000);
        if oob.is_some() && warm == dca::interp::Outcome::Paused {
            assert!(
                matches!(first, Err(Trap::OutOfBounds { .. })),
                "case {case}: expected a trap inside the journaled region"
            );
        }
        machine.rollback();
        assert_eq!(
            machine.snapshot(),
            snap,
            "case {case}: rollback diverged from the armed snapshot\n{src}"
        );

        // A fresh machine through the full-restore path is the oracle.
        let mut oracle = Machine::new(&m);
        oracle.restore(&snap);
        assert_eq!(oracle.snapshot(), snap, "case {case}: full restore");

        // Replays from both paths stay in lockstep.
        let a = machine.run(&mut NoHooks, 100_000);
        let b = oracle.run(&mut NoHooks, 100_000);
        assert_eq!(a, b, "case {case}: rerun outcomes diverge");
        assert_eq!(machine.output(), oracle.output(), "case {case}: output");
        assert_eq!(machine.steps(), oracle.steps(), "case {case}: steps");
    }
}

/// An injected allocation fault firing *inside* a journaled region (the
/// engine's `FaultKind::AllocFail` shape) must also roll back cleanly:
/// the machine rewinds to the snapshot and, with the fault cleared,
/// replays to the same result as a machine that never faulted.
#[test]
fn journal_rollback_survives_injected_alloc_fault() {
    use dca::interp::{Machine, NoHooks, Trap};

    let mut rng = Rng::seed_from_u64(8);
    for case in 0..16 {
        let heap = rng.range_usize(4, 12);
        let src = gen_journal_program(&mut rng, heap, None);
        let m = dca::ir::compile(&src).expect("generated program compiles");
        let main = m.main().expect("main");

        let mut machine = Machine::new(&m);
        machine.push_call(main, &[]).expect("push");
        machine.run(&mut NoHooks, 5).expect("warmup");
        let snap = machine.snapshot();
        machine.begin_journal();
        // The generated program allocates once after its loops; fail it.
        machine.fail_alloc_after(0);
        assert_eq!(
            machine.run(&mut NoHooks, 100_000),
            Err(Trap::OutOfMemory),
            "case {case}: injected fault must fire inside the journal"
        );
        machine.rollback();
        machine.clear_alloc_fault();
        assert_eq!(machine.snapshot(), snap, "case {case}: rollback");

        let mut clean = Machine::new(&m);
        clean.restore(&snap);
        let a = machine.run(&mut NoHooks, 100_000);
        let b = clean.run(&mut NoHooks, 100_000);
        assert_eq!(a, b, "case {case}: post-fault rerun diverges");
        assert_eq!(machine.output(), clean.output(), "case {case}: output");
    }
}

#[test]
fn simulator_speedup_is_bounded_by_cores_and_work() {
    let mut rng = Rng::seed_from_u64(6);
    for _ in 0..64 {
        let len = rng.range_usize(1, 300);
        let costs: Vec<u64> = (0..len).map(|_| rng.range_u64(1, 500)).collect();
        let cores = rng.range_usize(1, 96);
        let cfg = dca::parallel::SimConfig::with_cores(cores);
        let r = dca::parallel::simulate_invocation(&costs, &cfg);
        let seq: u64 = costs.iter().sum();
        assert_eq!(r.seq_steps, seq);
        assert!(r.speedup() <= cores as f64 + 1e-9);
        // The critical path can never beat the largest single iteration.
        if cores > 1 {
            let max = *costs.iter().max().expect("non-empty");
            assert!(r.par_steps >= max);
        }
    }
}

/// The hashed verification tier is a pure optimization: at zero float
/// tolerance, `DigestMode::Auto` (streamed 128-bit fingerprints, tier 1,
/// falling back to the structural digest only to explain a mismatch)
/// must produce a report bit-identical to `DigestMode::Structural` (the
/// materializing oracle) — same verdicts including `Violation` payloads,
/// same trips and permutation counts, same replay-step accounting — for
/// generated programs whose live-out heaps mix int cells, float cells
/// seeded with NaN and `-0.0`, commutative and non-commutative loops,
/// at every worker-thread width.
#[test]
fn hash_digest_equals_structural_digest() {
    let mut rng = Rng::seed_from_u64(11);
    for case in 0..10 {
        let expr = gen_expr(&mut rng, 2);
        let n = rng.range_usize(4, 24);
        let c = rng.range_i64(1, 9);
        // Every third float cell is NaN (0.0 / 0.0) and every fourth is
        // -0.0 ((0.0 - 1.0) * 0.0); both are produced identically by any
        // iteration order, so @fmap stays commutative only if the
        // comparator canonicalizes them — in both tiers.
        let src = format!(
            "fn main() -> float {{ \
             let a: [int; 32]; let f: [float; 32]; let s: int = 0; \
             @imap: for (let i: int = 0; i < {n}; i = i + 1) {{ a[i] = {expr}; }} \
             @fmap: for (let i: int = 0; i < {n}; i = i + 1) {{ \
               if (i % 3 == 0) {{ f[i] = 0.0 / 0.0; }} \
               else {{ if (i % 4 == 0) {{ f[i] = (0.0 - 1.0) * 0.0; }} \
               else {{ f[i] = (i as float) / 3.0; }} }} }} \
             @red: for (let i: int = 0; i < {n}; i = i + 1) {{ s = s + a[i] * (i + 1); }} \
             @rec: for (let i: int = 1; i < {n}; i = i + 1) {{ a[i] = a[i - 1] + {c}; }} \
             @ncr: for (let i: int = 0; i < {n}; i = i + 1) {{ s = s * 2 + i; }} \
             return f[1] + (s as float); }}"
        );
        let m = dca::ir::compile(&src).expect("compile");
        for threads in [1, 2, 4] {
            let hashed = Dca::new(DcaConfig {
                threads,
                ..DcaConfig::exact()
            })
            .analyze_module(&m)
            .expect("hashed analysis");
            let structural = Dca::new(DcaConfig {
                threads,
                digest: DigestMode::Structural,
                ..DcaConfig::exact()
            })
            .analyze_module(&m)
            .expect("structural analysis");
            assert_eq!(
                hashed.len(),
                structural.len(),
                "case {case} threads={threads}: loop counts differ"
            );
            for (h, st) in hashed.iter().zip(structural.iter()) {
                assert_eq!(
                    h, st,
                    "case {case} threads={threads}: outcome differs at {}",
                    h.lref
                );
                assert_eq!(
                    h.replay_steps, st.replay_steps,
                    "case {case} threads={threads}: replay accounting differs at {}",
                    h.lref
                );
            }
            assert!(
                hashed
                    .by_tag("fmap")
                    .expect("fmap")
                    .verdict
                    .is_commutative(),
                "case {case} threads={threads}: NaN/-0.0 map must stay commutative"
            );
            // `s = s * 2 + i` weights each iteration by a distinct power
            // of two, so no permutation preserves it — unlike @rec, which
            // a generated @imap can accidentally leave at a fixpoint.
            assert!(
                !hashed.by_tag("ncr").expect("ncr").verdict.is_commutative(),
                "case {case} threads={threads}: order-sensitive reduction must stay refuted"
            );
        }
    }
}
