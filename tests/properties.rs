//! Property-based tests over the core invariants, using generated
//! programs and inputs. Cases are generated from a fixed-seed [`Rng`], so
//! every run explores the same space deterministically.

use dca::core::{Dca, DcaConfig, LoopVerdict};
use dca::interp::Value;
use dca_rng::Rng;

/// A small generator of pure arithmetic expressions over `a[i]`, `i` and
/// constants — every loop of the form `a[i] = <expr>` is a map and must be
/// commutative.
fn gen_expr(rng: &mut Rng, depth: usize) -> String {
    if depth == 0 || rng.below(3) == 0 {
        match rng.below(3) {
            0 => "a[i]".to_string(),
            1 => "i".to_string(),
            _ => rng.range_i64(1, 9).to_string(),
        }
    } else {
        let l = gen_expr(rng, depth - 1);
        let r = gen_expr(rng, depth - 1);
        let op = ["+", "*", "-"][rng.range_usize(0, 3)];
        format!("({l} {op} {r})")
    }
}

#[test]
fn generated_map_loops_are_commutative() {
    let mut rng = Rng::seed_from_u64(1);
    for case in 0..24 {
        let expr = gen_expr(&mut rng, 3);
        let n = rng.range_usize(3, 24);
        let src = format!(
            "fn main() -> int {{ let a: [int; 32]; let s: int = 0; \
             @m: for (let i: int = 0; i < {n}; i = i + 1) {{ a[i] = {expr}; }} \
             for (let i: int = 0; i < {n}; i = i + 1) {{ s = s + a[i] * (i + 1); }} \
             return s; }}"
        );
        let m = dca::ir::compile(&src).expect("compile");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        assert_eq!(
            report.by_tag("m").expect("m").verdict,
            LoopVerdict::Commutative,
            "case {case}: a[i] = {expr} with n={n}"
        );
    }
}

#[test]
fn generated_reduction_loops_are_commutative() {
    let mut rng = Rng::seed_from_u64(2);
    for case in 0..24 {
        let coef = rng.range_i64(1, 7);
        let n = rng.range_usize(3, 32);
        let op = if rng.flip() { "*" } else { "+" };
        let src = format!(
            "fn main() -> int {{ let s: int = 1; \
             @r: for (let i: int = 0; i < {n}; i = i + 1) {{ \
               s = s {op} (i % 5 + {coef}); }} \
             return s; }}"
        );
        let m = dca::ir::compile(&src).expect("compile");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        assert_eq!(
            report.by_tag("r").expect("r").verdict,
            LoopVerdict::Commutative,
            "case {case}: s = s {op} (i % 5 + {coef}) with n={n}"
        );
    }
}

#[test]
fn prefix_recurrences_are_never_commutative() {
    // a[i] = a[i-1] * c + i: genuinely order-sensitive, consumed by a
    // position-weighted checksum.
    let mut rng = Rng::seed_from_u64(3);
    for case in 0..24 {
        let n = rng.range_usize(4, 24);
        let c = rng.range_i64(2, 5);
        let src = format!(
            "fn main() -> int {{ let a: [int; 32]; a[0] = 1; let s: int = 0; \
             @rec: for (let i: int = 1; i < {n}; i = i + 1) {{ \
               a[i] = a[i - 1] * {c} + i; }} \
             for (let i: int = 0; i < {n}; i = i + 1) {{ s = s + a[i] * (i + 1); }} \
             return s; }}"
        );
        let m = dca::ir::compile(&src).expect("compile");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        assert!(
            matches!(
                report.by_tag("rec").expect("rec").verdict,
                LoopVerdict::NonCommutative(_)
            ),
            "case {case}: n={n} c={c}"
        );
    }
}

#[test]
fn parser_never_panics() {
    // Arbitrary near-token soup must produce Ok or Err, never a panic.
    const CHARSET: &[u8] = b"abcxyz0123(){};:=<>+*-@ \n";
    let mut rng = Rng::seed_from_u64(4);
    for _ in 0..200 {
        let len = rng.range_usize(0, 160);
        let src: String = (0..len)
            .map(|_| CHARSET[rng.range_usize(0, CHARSET.len())] as char)
            .collect();
        let _ = dca::ir::compile(&src);
    }
}

#[test]
fn interpreter_is_deterministic() {
    let p = dca::suite::by_name("ep").expect("ep");
    let m = p.module();
    let mut rng = Rng::seed_from_u64(5);
    for _ in 0..8 {
        let seed = rng.range_i64(0, 1000);
        let args = [Value::Int(4 + seed % 4), Value::Int(8)];
        let a = dca::interp::run_program(&m, &args).expect("run");
        let b = dca::interp::run_program(&m, &args).expect("run");
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.output, b.output);
        assert_eq!(a.steps, b.steps);
    }
}

#[test]
fn simulator_speedup_is_bounded_by_cores_and_work() {
    let mut rng = Rng::seed_from_u64(6);
    for _ in 0..64 {
        let len = rng.range_usize(1, 300);
        let costs: Vec<u64> = (0..len).map(|_| rng.range_u64(1, 500)).collect();
        let cores = rng.range_usize(1, 96);
        let cfg = dca::parallel::SimConfig::with_cores(cores);
        let r = dca::parallel::simulate_invocation(&costs, &cfg);
        let seq: u64 = costs.iter().sum();
        assert_eq!(r.seq_steps, seq);
        assert!(r.speedup() <= cores as f64 + 1e-9);
        // The critical path can never beat the largest single iteration.
        if cores > 1 {
            let max = *costs.iter().max().expect("non-empty");
            assert!(r.par_steps >= max);
        }
    }
}
