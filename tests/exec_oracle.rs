//! Property test for the real-thread executor: generated programs whose
//! loops are parallel-safe by construction must execute at every width
//! with a state fingerprint identical to the sequential oracle's — the
//! executor's own differential validation is run with `float_tolerance:
//! 0.0`, so `exact` means bit-for-bit agreement, including NaN and
//! signed-zero float cases. Order-sensitive constructions must be
//! refused, never silently executed.

use dca::core::{Dca, DcaConfig, LoopVerdict, Obs};
use dca::parallel::{execute_loop, ExecConfig, ExecError, Schedule};
use dca_rng::Rng;

const WIDTHS: [usize; 3] = [1, 2, 4];

/// Loop shapes the executor must handle exactly. Float cases are chosen
/// so that every sequential intermediate is exactly representable (small
/// integral values, NaN-ignoring min, signed-zero sums), making
/// bit-exact cross-width agreement a hard requirement rather than a
/// tolerance judgement.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// `a[i] = f(i)` — disjoint journal-merged writes.
    MapInt,
    /// `x[i] = -0.0` on a strided subset — the merge must preserve the
    /// sign bit of zero verbatim.
    MapNegZero,
    /// `s = s + f(i)` — integer sum, combined in chunk-tree order.
    SumInt,
    /// `s = s + g(i)` with small integral floats — exact under any
    /// association, so the parallel fold must match bitwise.
    SumFloat,
    /// `s = fmin(s, g(i))` with a NaN-seeded accumulator — the chunk
    /// identity must not absorb the NaN, and NaN-ignoring min must
    /// survive the partial/combine split.
    MinNaN,
    /// `h[f(i) % B] += 1` — histogram cells combined per address.
    Histogram,
}

const SHAPES: [Shape; 6] = [
    Shape::MapInt,
    Shape::MapNegZero,
    Shape::SumInt,
    Shape::SumFloat,
    Shape::MinNaN,
    Shape::Histogram,
];

impl Shape {
    fn source(self, n: usize, k: i64) -> String {
        let body = match self {
            Shape::MapInt => format!(
                "let a: [int; 128];\n\
                 @l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                   a[i] = (i * {k} + 11) % 97; }}\n\
                 let t: int = 0;\n\
                 for (let i: int = 0; i < 128; i = i + 1) {{ t = t + a[i] * (i + 1); }}\n\
                 return t;"
            ),
            Shape::MapNegZero => format!(
                "let x: [float; 128];\n\
                 @l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                   if (i % {step} == 0) {{ x[i] = 0.0 - 0.0; }} \
                   else {{ x[i] = i as float + {k}.0; }} }}\n\
                 let t: float = 0.0;\n\
                 for (let i: int = 0; i < 128; i = i + 1) {{ t = t + x[i]; }}\n\
                 return t as int;",
                step = (k % 3) + 2
            ),
            Shape::SumInt => format!(
                "let s: int = {k};\n\
                 @l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                   s = s + (i * i + {k}) % 211; }}\n\
                 return s;"
            ),
            Shape::SumFloat => format!(
                "let s: float = 0.0 - 0.0;\n\
                 @l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                   s = s + ((i * {k}) % 7 - 3) as float; }}\n\
                 return s as int;"
            ),
            Shape::MinNaN => format!(
                "let s: float = 0.0 / 0.0;\n\
                 @l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                   s = fmin(s, ((i * {k}) % 31 - 15) as float); }}\n\
                 return s as int;"
            ),
            Shape::Histogram => format!(
                "let h: [int; 16];\n\
                 @l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
                   h[(i * {k} + 5) % 16] = h[(i * {k} + 5) % 16] + 1; }}\n\
                 let t: int = 0;\n\
                 for (let i: int = 0; i < 16; i = i + 1) {{ t = t + h[i] * (i + 1); }}\n\
                 return t;"
            ),
        };
        format!("fn main() -> int {{\n{body}\n}}")
    }
}

fn tagged_loop(m: &dca::ir::Module, tag: &str) -> dca::ir::LoopRef {
    dca::ir::all_loops(m)
        .into_iter()
        .find(|(_, t)| t.as_deref() == Some(tag))
        .expect("tagged loop exists")
        .0
}

#[test]
fn exec_matches_sequential() {
    let mut rng = Rng::seed_from_u64(0x0E8EC);
    let obs = Obs::disabled();
    let mut executed = 0usize;
    for case in 0..36 {
        let shape = *rng.choose(&SHAPES).expect("non-empty");
        let n = rng.range_usize(5, 96);
        let k = rng.range_i64(1, 17);
        let src = shape.source(n, k);
        let m = dca::ir::compile(&src).expect("generated programs compile");
        let lref = tagged_loop(&m, "l");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        let r = report.by_tag("l").expect("tagged loop analyzed");
        assert_eq!(
            r.verdict,
            LoopVerdict::Commutative,
            "case {case}: {shape:?} n={n} k={k} must be commutative ({src})"
        );
        let schedule = if rng.flip() {
            Schedule::StaticBlock
        } else {
            Schedule::Dynamic {
                chunk: rng.range_usize(1, 9),
            }
        };
        let mut oracle_fps = Vec::new();
        for w in WIDTHS {
            let cfg = ExecConfig {
                threads: w,
                schedule,
                float_tolerance: 0.0,
                ..ExecConfig::default()
            };
            let out = execute_loop(&m, &[], lref, &cfg, &obs).unwrap_or_else(|e| {
                panic!("case {case}: {shape:?} n={n} k={k} w={w} {schedule:?}: {e}\n{src}")
            });
            assert!(
                out.validated && out.exact,
                "case {case}: {shape:?} w={w} must be bit-exact against the oracle"
            );
            assert_eq!(
                Some(out.fingerprint),
                out.oracle_fingerprint,
                "case {case}: exact run must carry the oracle fingerprint"
            );
            oracle_fps.push(out.fingerprint);
        }
        assert!(
            oracle_fps.windows(2).all(|p| p[0] == p[1]),
            "case {case}: {shape:?} fingerprint must not depend on width: {oracle_fps:x?}"
        );
        executed += 1;
    }
    assert_eq!(executed, 36, "every generated case must execute");
}

#[test]
fn order_sensitive_generated_loops_are_refused() {
    // A first-match scan is outcome-commutative only when no candidate
    // matches; with matches present DCA refutes it, and when a sparse
    // parameterization slips a commutative instance through, the
    // executor must still refuse the order-sensitive live-out rather
    // than gamble on the merge.
    let mut rng = Rng::seed_from_u64(0xBADC0DE);
    let obs = Obs::disabled();
    for case in 0..12 {
        let n = rng.range_usize(8, 64);
        let k = rng.range_i64(1, 9);
        let src = format!(
            "fn main() -> int {{ let a: [int; 64]; let last: int = 0 - 1;\n\
             for (let i: int = 0; i < 64; i = i + 1) {{ a[i] = (i * {k}) % 9; }}\n\
             @l: for (let i: int = 0; i < {n}; i = i + 1) {{ \
               if (a[i] > 3) {{ last = i; }} }}\n\
             return last; }}"
        );
        let m = dca::ir::compile(&src).expect("compiles");
        let lref = tagged_loop(&m, "l");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        let r = report.by_tag("l").expect("analyzed");
        if r.verdict != LoopVerdict::Commutative {
            continue; // DCA already refuted it; nothing reaches the executor.
        }
        let cfg = ExecConfig {
            threads: 4,
            ..ExecConfig::default()
        };
        match execute_loop(&m, &[], lref, &cfg, &obs) {
            Err(ExecError::OrderSensitive(vars) | ExecError::Unresolved(vars)) => {
                assert!(
                    vars.iter().any(|v| v == "last"),
                    "case {case}: refusal must name the order-sensitive var: {vars:?}"
                );
            }
            Ok(out) => {
                panic!("case {case} n={n} k={k}: order-sensitive loop executed: {out:?}\n{src}")
            }
            Err(e) => panic!("case {case}: unexpected error class: {e}"),
        }
    }
}
