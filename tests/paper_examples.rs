//! End-to-end integration tests on the paper's own motivating examples:
//! Fig. 1(a), Fig. 1(b) and the Fig. 2 BFS.

use dca::baselines::{
    DependenceProfiling, Detector, DiscoPopStyle, IccStyle, IdiomsStyle, PollyStyle,
};
use dca::core::{Dca, DcaConfig, LoopVerdict};

const FIG1: &str = r#"
    struct Node { val: int, next: *Node }
    let array: [int; 48];

    fn main() -> int {
        @fig1a: for (let i: int = 0; i < 48; i = i + 1) {
            array[i] = array[i] + 1;
        }
        let head: *Node = null;
        for (let i: int = 0; i < 48; i = i + 1) {
            let n: *Node = new Node; n.val = i; n.next = head; head = n;
        }
        let ptr: *Node = head;
        @fig1b: while (ptr != null) {
            ptr.val = ptr.val + 1;
            ptr = ptr.next;
        }
        let s: int = array[3];
        let q: *Node = head;
        while (q != null) { s = s + q.val; q = q.next; }
        print("s", s);
        return s;
    }
"#;

fn loop_by_tag(m: &dca::ir::Module, tag: &str) -> dca::ir::LoopRef {
    dca::ir::all_loops(m)
        .into_iter()
        .find(|(_, t)| t.as_deref() == Some(tag))
        .unwrap_or_else(|| panic!("no loop tagged @{tag}"))
        .0
}

#[test]
fn fig1_both_loops_commutative_under_dca() {
    let m = dca::ir::compile(FIG1).expect("compile");
    let report = Dca::new(DcaConfig::fast())
        .analyze_module(&m)
        .expect("analyze");
    assert_eq!(
        report.by_tag("fig1a").expect("fig1a").verdict,
        LoopVerdict::Commutative
    );
    assert_eq!(
        report.by_tag("fig1b").expect("fig1b").verdict,
        LoopVerdict::Commutative
    );
}

#[test]
fn fig1b_defeats_every_dependence_technique() {
    let m = dca::ir::compile(FIG1).expect("compile");
    let l = loop_by_tag(&m, "fig1b");
    assert!(!DependenceProfiling.detect(&m, &[]).is_parallel(l));
    assert!(!DiscoPopStyle.detect(&m, &[]).is_parallel(l));
    assert!(!IdiomsStyle.detect(&m, &[]).is_parallel(l));
    assert!(!PollyStyle.detect(&m, &[]).is_parallel(l));
    assert!(!IccStyle.detect(&m, &[]).is_parallel(l));
}

#[test]
fn fig1a_detected_by_static_and_dynamic_tools() {
    let m = dca::ir::compile(FIG1).expect("compile");
    let l = loop_by_tag(&m, "fig1a");
    assert!(DependenceProfiling.detect(&m, &[]).is_parallel(l));
    assert!(PollyStyle.detect(&m, &[]).is_parallel(l));
    assert!(IccStyle.detect(&m, &[]).is_parallel(l));
}

#[test]
fn fig2_bfs_top_down_step_is_dca_only() {
    let p = dca::suite::by_name("bfs").expect("bfs in suite");
    let m = p.module();
    let args = p.targs();
    let top_down = p.loop_by_tag(&m, "top_down").expect("top_down");
    let dca_report = dca::baselines::DcaDetector::new(DcaConfig::fast()).detect(&m, &args);
    assert!(
        dca_report.is_parallel(top_down),
        "DCA must detect the Fig. 2 update loop: {:?}",
        dca_report.get(top_down)
    );
    for det in [
        &DependenceProfiling as &dyn Detector,
        &DiscoPopStyle,
        &IdiomsStyle,
        &PollyStyle,
        &IccStyle,
    ] {
        assert!(
            !det.detect(&m, &args).is_parallel(top_down),
            "{} must reject the worklist loop",
            det.technique()
        );
    }
}

#[test]
fn bfs_result_is_a_valid_bfs() {
    // Sanity-check the suite program itself: distances are consistent with
    // one level per frontier swap.
    let p = dca::suite::by_name("bfs").expect("bfs in suite");
    let m = p.module();
    let r = dca::interp::run_program(&m, &p.targs()).expect("run");
    // "reached"/"distsum" pairs are printed per source; all must be
    // positive and each distsum >= reached - 1 (source contributes 0).
    let values: Vec<i64> = r
        .output
        .iter()
        .filter_map(|o| match o {
            dca::interp::OutputItem::Value(dca::interp::Value::Int(v)) => Some(*v),
            _ => None,
        })
        .collect();
    assert!(values.len() >= 4);
    for pair in values.chunks(2) {
        if let [reached, distsum] = pair {
            assert!(*reached > 0);
            assert!(*distsum >= reached - 1);
        }
    }
}
