//! Facade crate for the DCA workspace: a reproduction of *"Loop
//! Parallelization using Dynamic Commutativity Analysis"* (Vasiladiotis,
//! Castañeda Lozano, Cole & Franke, CGO 2021).
//!
//! The workspace implements, from scratch:
//!
//! * a mini-C frontend ([`lang`]) and a CFG-based compiler IR ([`ir`]),
//! * an IR interpreter with snapshot/restore and tracing ([`interp`]),
//! * the static analyses DCA needs ([`analysis`]): liveness, generalized
//!   iterator recognition, affine dependence tests,
//! * DCA itself ([`core`]): the static instrumentation stages and the dynamic
//!   permute-and-verify stage,
//! * five dependence-based baseline detectors ([`baselines`]),
//! * a parallelizing transform plus a deterministic multicore simulator used
//!   to reproduce the paper's speedup figures ([`parallel`]),
//! * the benchmark suite (NPB-like and PLDS programs) ([`suite`]).
//!
//! # Quickstart
//!
//! ```
//! use dca::core::{Dca, DcaConfig};
//!
//! let source = r#"
//!     fn main() -> int {
//!         let a: [int; 64];
//!         for (let i: int = 0; i < 64; i = i + 1) { a[i] = i * 2; }
//!         let sum: int = 0;
//!         for (let i: int = 0; i < 64; i = i + 1) { sum = sum + a[i]; }
//!         return sum;
//!     }
//! "#;
//! let module = dca::ir::compile(source).map_err(|e| e.to_string())?;
//! let report = Dca::new(DcaConfig::fast())
//!     .analyze_module(&module)
//!     .map_err(|e| e.to_string())?;
//! assert_eq!(report.commutative_loops().count(), 2);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub use dca_analysis as analysis;
pub use dca_baselines as baselines;
pub use dca_core as core;
pub use dca_interp as interp;
pub use dca_ir as ir;
pub use dca_lang as lang;
pub use dca_parallel as parallel;
pub use dca_suite as suite;
