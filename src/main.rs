//! The `dca` command-line tool: the "parallelism advisor" front door.
//!
//! ```text
//! dca analyze <file.mc> [--args a,b,...]          per-loop DCA verdicts
//! dca advise  <file.mc> [--args ...] [--cores N]  advisor report with pragmas
//! dca detect  <file.mc> [--args ...]              all six techniques, per loop
//! dca execute <file.mc> [--args ...] [--threads N] run proven loops on real threads
//! dca run     <file.mc> [--args ...]              execute the program
//! dca ir      <file.mc>                           dump the compiled IR
//! ```
//!
//! `execute` analyzes the program, then runs every loop DCA proved
//! commutative across a worker-thread pool
//! ([`dca::parallel::execute_loop`]), differentially validating each
//! merged result against the sequential oracle. A divergence is a
//! non-zero exit. `--threads 0` (the default) resolves via
//! `DCA_EXEC_THREADS`, then the CPU count. `--schedule` picks the
//! iteration schedule (`static`, `dynamic[,chunk]`, or `auto` for
//! profile-driven chunk tuning); the footer reports how many loops the
//! footprint pre-check refused before any thread spawned and the chunk
//! each dynamic loop ran with. `--schedule` also feeds `advise`, whose
//! pragmas then carry the matching `schedule(dynamic, N)` clause.

use dca::baselines::all_detectors;
use dca::core::{CancelToken, Dca, DcaConfig};
use dca::interp::Value;
use dca::parallel::{Schedule, SimConfig};
use std::process::ExitCode;

/// Installs a SIGINT handler that trips the run's [`CancelToken`], so
/// Ctrl-C stops an analysis at the next safe point — the partial report
/// still prints, the run journal is flushed, and a re-run against the
/// same `DCA_JOURNAL` resumes where this one stopped. Unix only; on
/// other platforms Ctrl-C keeps its default process-kill behavior.
#[cfg(unix)]
fn install_ctrl_c(token: &CancelToken) {
    use std::os::raw::c_int;
    use std::sync::OnceLock;
    static TOKEN: OnceLock<CancelToken> = OnceLock::new();
    // Only an atomic store happens in the handler — async-signal-safe.
    extern "C" fn on_sigint(_sig: c_int) {
        if let Some(t) = TOKEN.get() {
            t.cancel();
        }
    }
    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }
    if TOKEN.set(token.clone()).is_ok() {
        const SIGINT: c_int = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
fn install_ctrl_c(_token: &CancelToken) {}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dca <analyze|advise|detect|execute|run|ir> <file.mc> \
         [--args a,b,...] [--cores N] [--inputs a,b/c,d] [--threads N] \
         [--schedule static|dynamic[,N]|auto]"
    );
    ExitCode::FAILURE
}

struct Opts {
    command: String,
    file: String,
    args: Vec<Value>,
    inputs: Vec<Vec<Value>>,
    cores: usize,
    threads: usize,
    schedule: Schedule,
}

/// Parses `--schedule`: `static`, `dynamic` (default chunk),
/// `dynamic,N`, or `auto` (profile-driven chunk tuning).
fn parse_schedule(s: &str) -> Result<Schedule, String> {
    match s {
        "static" => Ok(Schedule::StaticBlock),
        "dynamic" => Ok(Schedule::default_dynamic()),
        "auto" => Ok(Schedule::Auto),
        other => match other.strip_prefix("dynamic,") {
            Some(n) => n
                .parse::<usize>()
                .map(|chunk| Schedule::Dynamic { chunk })
                .map_err(|e| format!("bad dynamic chunk `{n}`: {e}")),
            None => Err(format!(
                "bad schedule `{other}` (want static, dynamic[,N] or auto)"
            )),
        },
    }
}

fn parse_int_list(s: &str) -> Result<Vec<Value>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            t.trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad integer `{t}`: {e}"))
        })
        .collect()
}

fn parse_opts() -> Result<Opts, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let file = argv.next().ok_or("missing input file")?;
    let mut opts = Opts {
        command,
        file,
        args: Vec::new(),
        inputs: Vec::new(),
        cores: 72,
        threads: 0,
        schedule: Schedule::StaticBlock,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--schedule" => {
                let v = argv.next().ok_or("--schedule needs a value")?;
                opts.schedule = parse_schedule(&v)?;
            }
            "--args" => {
                let v = argv.next().ok_or("--args needs a value")?;
                opts.args = parse_int_list(&v)?;
            }
            "--inputs" => {
                let v = argv.next().ok_or("--inputs needs a value")?;
                opts.inputs = v.split('/').map(parse_int_list).collect::<Result<_, _>>()?;
            }
            "--cores" => {
                let v = argv.next().ok_or("--cores needs a value")?;
                opts.cores = v.parse().map_err(|e| format!("bad core count: {e}"))?;
            }
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|e| format!("bad thread count: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// One-line verdict-cache summary after an `analyze` report, shown only
/// when a cache is configured (`DCA_CACHE` or `DcaConfig::cache`).
fn print_cache_footer(stats: Option<&dca::core::CacheStats>) {
    let Some(s) = stats else { return };
    if s.bypassed {
        println!(
            "cache: bypassed ({}{})",
            s.path.display(),
            if s.faults > 0 { ", file damaged" } else { "" }
        );
        return;
    }
    let faults = if s.faults > 0 {
        format!(", {} fault(s)", s.faults)
    } else {
        String::new()
    };
    println!(
        "cache: {} hit(s), {} miss(es), {} stored{faults} ({})",
        s.hits,
        s.misses,
        s.stores,
        s.path.display()
    );
}

/// One-line run-journal summary, mirroring the cache footer; shown only
/// when a journal is configured (`DCA_JOURNAL` or `DcaConfig::journal`).
fn print_journal_footer(stats: Option<&dca::core::RunJournalStats>) {
    let Some(s) = stats else { return };
    if s.bypassed {
        println!(
            "journal: bypassed ({}{})",
            s.path.display(),
            if s.faults > 0 { ", file damaged" } else { "" }
        );
        return;
    }
    let quarantined = if s.quarantined > 0 {
        format!(", {} quarantined", s.quarantined)
    } else {
        String::new()
    };
    let dropped = if s.dropped > 0 {
        format!(", {} dropped", s.dropped)
    } else {
        String::new()
    };
    println!(
        "journal: {} resumed, {} recorded{quarantined}{dropped} ({})",
        s.resumed,
        s.recorded,
        s.path.display()
    );
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let module = match dca::ir::compile(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };

    // Validate workloads against main's signature before anything runs.
    if opts.command != "ir" {
        let Some(main) = module.main() else {
            eprintln!("error: {} has no `main` function", opts.file);
            return ExitCode::FAILURE;
        };
        let expected = module.func(main).params.len();
        // `--inputs` supersedes `--args` for analyze; validate whichever
        // workloads will actually run.
        let workloads: Vec<&[Value]> = if opts.inputs.is_empty() {
            vec![&opts.args]
        } else {
            opts.inputs.iter().map(|v| v.as_slice()).collect()
        };
        for w in workloads {
            if w.len() != expected {
                eprintln!(
                    "error: `main` takes {expected} argument(s), got {} — pass --args a,b,...",
                    w.len()
                );
                return ExitCode::FAILURE;
            }
        }
    }

    match opts.command.as_str() {
        "ir" => {
            print!("{module}");
            ExitCode::SUCCESS
        }
        "run" => match dca::interp::run_program(&module, &opts.args) {
            Ok(r) => {
                for item in &r.output {
                    print!("{item} ");
                }
                println!();
                println!(
                    "returned {} in {} steps",
                    r.ret.map(|v| v.to_string()).unwrap_or_default(),
                    r.steps
                );
                ExitCode::SUCCESS
            }
            Err(t) => {
                eprintln!("trap: {t}");
                ExitCode::FAILURE
            }
        },
        "analyze" => {
            let cancel = CancelToken::new();
            install_ctrl_c(&cancel);
            let dca = Dca::new(DcaConfig {
                cancel: Some(cancel.clone()),
                ..DcaConfig::default()
            });
            let report = if opts.inputs.is_empty() {
                dca.analyze(&module, &opts.args)
            } else {
                dca.analyze_inputs(&module, &opts.inputs)
            };
            match report {
                Ok(r) => {
                    print!("{r}");
                    print_cache_footer(r.cache.as_ref());
                    print_journal_footer(r.journal.as_ref());
                    if cancel.is_cancelled() {
                        eprintln!(
                            "interrupted: partial report; re-run with DCA_JOURNAL \
                             set to resume the remaining loops"
                        );
                        // The conventional SIGINT exit status.
                        return ExitCode::from(130);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "advise" => {
            let report = match Dca::new(DcaConfig::default()).analyze(&module, &opts.args) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cfg = SimConfig {
                schedule: opts.schedule,
                ..SimConfig::with_cores(opts.cores)
            };
            match dca::parallel::advise(&module, &opts.args, &report, &cfg) {
                Ok(advice) => {
                    print!("{}", dca::parallel::render(&advice));
                    let loud: Vec<_> = advice
                        .iter()
                        .filter(|a| a.needs_approval)
                        .filter_map(|a| a.tag.clone())
                        .collect();
                    if !loud.is_empty() {
                        println!(
                            "\nloops needing explicit approval (unexplained carried state): {}",
                            loud.join(", ")
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(t) => {
                    eprintln!("trap during measurement: {t}");
                    ExitCode::FAILURE
                }
            }
        }
        "execute" => {
            let report = match Dca::new(DcaConfig::default()).analyze(&module, &opts.args) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cfg = dca::parallel::ExecConfig {
                threads: opts.threads,
                schedule: opts.schedule,
                ..dca::parallel::ExecConfig::from_dca(&DcaConfig::default())
            };
            let runs = dca::parallel::execute_commutative(
                &module,
                &opts.args,
                &report,
                &cfg,
                &dca::core::Obs::disabled(),
            );
            if runs.is_empty() {
                println!("no commutative loops to execute");
                return ExitCode::SUCCESS;
            }
            let mut failed = false;
            let (mut validated, mut refused, mut prespawn) = (0u64, 0u64, 0u64);
            let mut chunks: Vec<String> = Vec::new();
            for (lref, tag, res) in &runs {
                let name = tag
                    .as_ref()
                    .map(|t| format!("@{t}"))
                    .unwrap_or_else(|| lref.to_string());
                match res {
                    Ok(out) if out.exact => {
                        validated += 1;
                        if let Some(c) = out.chunk {
                            chunks.push(format!("{name}={c}"));
                        }
                        println!(
                            "{name:<16} validated  threads={} trips={} steals={} \
                             combines={} fp={:032x}",
                            out.threads, out.trips, out.steals, out.combine_steps, out.fingerprint
                        );
                    }
                    Ok(out) => {
                        validated += 1;
                        if let Some(c) = out.chunk {
                            chunks.push(format!("{name}={c}"));
                        }
                        println!(
                            "{name:<16} validated (within float tolerance)  threads={} trips={}",
                            out.threads, out.trips
                        );
                    }
                    Err(e @ dca::parallel::ExecError::NotDecomposable { .. }) => {
                        refused += 1;
                        prespawn += 1;
                        println!("{name:<16} refused pre-spawn: {e}");
                    }
                    Err(
                        e @ (dca::parallel::ExecError::Unresolved(_)
                        | dca::parallel::ExecError::OrderSensitive(_)
                        | dca::parallel::ExecError::Unsupported(_)),
                    ) => {
                        refused += 1;
                        println!("{name:<16} refused: {e}");
                    }
                    Err(e) => {
                        println!("{name:<16} FAILED: {e}");
                        failed = true;
                    }
                }
            }
            let chunks = if chunks.is_empty() {
                String::from("-")
            } else {
                chunks.join(" ")
            };
            println!(
                "exec: {validated} validated, {refused} refused \
                 ({prespawn} pre-spawn), chunks: {chunks}"
            );
            if failed {
                eprintln!("error: parallel execution diverged from the sequential oracle");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "detect" => {
            let detectors = all_detectors(DcaConfig::default());
            let reports: Vec<_> = detectors
                .iter()
                .map(|d| (d.technique(), d.detect(&module, &opts.args)))
                .collect();
            print!("{:<16}", "loop");
            for (t, _) in &reports {
                print!(" {t:>9}");
            }
            println!();
            for (lref, tag) in dca::ir::all_loops(&module) {
                let name = tag
                    .map(|t| format!("@{t}"))
                    .unwrap_or_else(|| lref.to_string());
                print!("{name:<16}");
                for (_, r) in &reports {
                    print!(" {:>9}", if r.is_parallel(lref) { "yes" } else { "." });
                }
                println!();
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
