//! DCA configuration: permutation presets, verification scope, budgets,
//! wall-clock deadlines, fault injection, observability options.

use crate::fault::FaultPlan;
use crate::parallel::CancelToken;
use std::path::PathBuf;
use std::time::Duration;

/// Observability options for the engine (see DESIGN.md §11).
///
/// Everything is off by default and adds no measurable overhead while
/// disabled (the `obs_overhead` bench asserts this). Independently of
/// this struct, setting the `DCA_TRACE=<path>` environment variable
/// enables metrics *and* trace-event streaming to `<path>` for any
/// engine run in the process.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsOptions {
    /// Accumulate per-stage counters and span timers and surface them as
    /// [`crate::DcaReport::obs`].
    pub metrics: bool,
    /// Stream JSONL trace events to this file (implies `metrics`).
    pub trace: Option<PathBuf>,
}

impl ObsOptions {
    /// Metrics on, no trace file.
    #[must_use]
    pub fn metrics() -> Self {
        ObsOptions {
            metrics: true,
            trace: None,
        }
    }
}

/// Which iteration permutations the dynamic stage tests (paper §IV-B2).
///
/// Exhaustive testing is exponential, so the paper uses reduced presets —
/// reverse plus a configurable number of random shuffles — accepting a
/// (small, §V-D) chance of missing a violating permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermutationSet {
    /// Reverse order plus `shuffles` uniformly random shuffles.
    Presets {
        /// Number of random shuffles (in addition to the reverse).
        shuffles: u32,
    },
    /// Reverse order only.
    ReverseOnly,
    /// `shuffles` uniformly random shuffles only — no reverse. Useful for
    /// isolating what random permutations alone catch in precision
    /// studies. `shuffles: 0` is an empty preset and is rejected by
    /// [`crate::Dca::analyze`] with [`crate::DcaError::EmptyPermutationSet`].
    Shuffles {
        /// Number of random shuffles.
        shuffles: u32,
    },
    /// All `trip!` permutations, for loops with at most `max_trip`
    /// iterations; loops with longer trips fall back to the presets with
    /// `fallback_shuffles` shuffles. Used by the §V-D precision study.
    Exhaustive {
        /// Maximum trip count to enumerate exhaustively.
        max_trip: usize,
        /// Shuffles to use beyond that.
        fallback_shuffles: u32,
    },
}

impl Default for PermutationSet {
    fn default() -> Self {
        PermutationSet::Presets { shuffles: 3 }
    }
}

/// Where live-out verification happens (paper §IV-B3 and §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyScope {
    /// Continue the program to completion after the permuted loop and
    /// compare the *program outcome* (output stream + return value). This
    /// is §III's definition — "rearranging its iterations preserves the
    /// outcome of the original program" — and the default.
    #[default]
    ProgramEnd,
    /// Compare at the loop exit: live-out scalars plus a canonical digest
    /// of the heap reachable from live-out pointers and globals. Cheaper
    /// but stricter (transient structure differences, such as a permuted
    /// worklist's element order, count as mismatches).
    LoopExit,
}

/// Wall-clock deadlines for the verification engine. Both are off by
/// default; when set they are checked cooperatively every ~1 Ki
/// interpreter steps, so an expired deadline surfaces within one check
/// granule, not instantly.
///
/// Deadline verdicts ([`crate::SkipReason::Deadline`]) depend on host
/// speed and are the one deliberate exception to the engine's
/// bit-for-bit determinism guarantee — enable them for serving-style
/// latency bounds, not for reproducible studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WallLimits {
    /// Deadline for a single program run (golden recording or one
    /// permuted replay). Expiry skips that loop with
    /// [`crate::SkipReason::Deadline`].
    pub replay: Option<Duration>,
    /// Deadline for the whole [`crate::Dca::analyze`] call. Once expired,
    /// every not-yet-finished loop is reported as skipped with
    /// [`crate::SkipReason::Deadline`].
    pub analysis: Option<Duration>,
}

impl WallLimits {
    /// True when no deadline is configured (the hot path skips all
    /// clock reads).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.replay.is_none() && self.analysis.is_none()
    }
}

/// How loop-exit live-out states are compared (DESIGN.md §14).
///
/// Only meaningful under [`VerifyScope::LoopExit`]; program-end
/// verification always compares the concrete outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DigestMode {
    /// Pick the cheapest sound comparator automatically: when
    /// [`DcaConfig::float_tolerance`] is exactly `0`, stream the canonical
    /// heap traversal into a 128-bit fingerprint (tier 1 — no digest
    /// materialization, no per-replay allocation) and keep only a 16-byte
    /// reference hash; otherwise materialize the structural
    /// [`crate::StateDigest`] (tier 2), since a tolerance comparison needs
    /// the actual values. The default.
    #[default]
    Auto,
    /// Always materialize the structural digest, even at zero tolerance.
    /// This exists as the differential oracle for the hashed tier: the
    /// `hash_digest_equals_structural_digest` property test runs both
    /// modes and asserts bit-identical reports.
    Structural,
}

/// Configuration for a [`crate::Dca`] engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DcaConfig {
    /// Permutation preset.
    pub permutations: PermutationSet,
    /// RNG seed for the random shuffles (runs are deterministic).
    pub seed: u64,
    /// Verification scope.
    pub verify_scope: VerifyScope,
    /// Relative tolerance when comparing floats (floating-point reductions
    /// are not associative; the NPB verification routines use relative
    /// error thresholds for the same reason). Bitwise-identical floats —
    /// including NaNs — always match regardless of tolerance; setting
    /// this to `0.0` demands exactly that (canonical-bit equality, where
    /// `-0.0 == +0.0` and all NaNs are one value) and unlocks the hashed
    /// verification tier under [`VerifyScope::LoopExit`].
    pub float_tolerance: f64,
    /// Loop-exit state comparator selection; see [`DigestMode`].
    pub digest: DigestMode,
    /// Which invocation of each loop to test (0 = first), and how many
    /// consecutive invocations starting there.
    pub invocations: u32,
    /// Step budget per program run (golden or replay).
    pub max_steps: u64,
    /// Loops with more recorded iterations than this are skipped.
    pub max_trip: usize,
    /// Worker threads for the verification engine; `0` means the
    /// `DCA_THREADS` environment variable if set, else one per available
    /// CPU. Permutation replays of a loop and independent loops of a
    /// module fan out across this many workers. Verdicts and counters
    /// are identical for every thread count (see DESIGN.md §Threading).
    pub threads: usize,
    /// Wall-clock deadlines (per replay and whole analysis); unlimited by
    /// default.
    pub max_wall: WallLimits,
    /// Deterministic fault injection for chaos testing; `None` (the
    /// default) falls back to the `DCA_FAULT=<spec>` environment
    /// variable, and disabled entirely when that is unset too. See
    /// [`FaultPlan`].
    pub fault: Option<FaultPlan>,
    /// Observability: per-stage metrics and trace-event streaming.
    pub obs: ObsOptions,
    /// Path of the persistent verdict cache (see [`crate::cache`] and
    /// DESIGN.md §15). `None` (the default) falls back to the
    /// `DCA_CACHE=<path>` environment variable, and no caching at all
    /// when that is unset too. The engine bypasses a configured cache —
    /// [`crate::cache::CacheDecision::Bypass`] — whenever fault injection
    /// or wall-clock deadlines are active, since those verdicts are not
    /// functions of the cache key.
    pub cache: Option<PathBuf>,
    /// Path of the write-ahead run journal (see [`crate::journal`] and
    /// DESIGN.md §16). `None` (the default) falls back to the
    /// `DCA_JOURNAL=<path>` environment variable, and no journaling at
    /// all when that is unset too. With a journal configured, every
    /// freshly computed verdict is appended as soon as it lands, and a
    /// re-run of the same analysis replays those records instead of
    /// recomputing — so a run killed mid-flight resumes where it
    /// stopped. Unlike the cache, the journal stays active under fault
    /// injection (that is how quarantine works).
    pub journal: Option<PathBuf>,
    /// Heap budget per interpreter machine, in cells. `None` (the
    /// default) leaves the interpreter's own backstop limit in place; a
    /// configured budget makes a runaway replay degrade to
    /// [`crate::SkipReason::MemoryBudget`] instead of OOM-killing the
    /// process.
    pub max_heap_cells: Option<u64>,
    /// How many times a loop whose analysis hit a transient engine fault
    /// ([`crate::SkipReason::EngineFault`], a contained panic) is re-run
    /// before the fault verdict stands. `0` (the default) disables
    /// retries. Retries are accounted deterministically in the
    /// `engine.retries` counter; a loop that exhausts them is quarantined
    /// in the run journal, so subsequent journaled runs skip it
    /// immediately.
    pub fault_retries: u32,
    /// Cooperative cancellation token. `None` (the default) means the
    /// run cannot be cancelled externally; the CLI installs a token
    /// wired to Ctrl-C. See [`CancelToken`].
    pub cancel: Option<CancelToken>,
    /// Worker threads for the *real-thread loop executor* (the CLI's
    /// `--execute` mode, `dca-parallel::exec`); `0` means the
    /// `DCA_EXEC_THREADS` environment variable if set, else one per
    /// available CPU. Independent of [`DcaConfig::threads`] (the
    /// verification engine's pool): analysis width and execution width
    /// are different knobs.
    pub exec_threads: usize,
    /// Whether every parallel execution is differentially validated
    /// against the sequential oracle (live-out fingerprint comparison,
    /// divergence = hard error). On by default; turning it off trades
    /// the correctness oracle for one sequential run less per loop.
    pub exec_validate: bool,
}

impl Default for DcaConfig {
    fn default() -> Self {
        DcaConfig {
            permutations: PermutationSet::default(),
            seed: 42,
            verify_scope: VerifyScope::ProgramEnd,
            float_tolerance: 1e-8,
            digest: DigestMode::Auto,
            invocations: 1,
            max_steps: Self::DEFAULT_MAX_STEPS,
            max_trip: Self::DEFAULT_MAX_TRIP,
            threads: 0,
            max_wall: WallLimits::default(),
            fault: None,
            obs: ObsOptions::default(),
            cache: None,
            journal: None,
            max_heap_cells: None,
            fault_retries: 0,
            cancel: None,
            exec_threads: 0,
            exec_validate: true,
        }
    }
}

impl DcaConfig {
    /// Default step budget per program run ([`DcaConfig::max_steps`]).
    pub const DEFAULT_MAX_STEPS: u64 = 200_000_000;
    /// Default trip limit per loop invocation ([`DcaConfig::max_trip`]).
    /// Unit tests and bench harnesses that drive `record`/`replay`
    /// directly use this same constant, so a future limit change cannot
    /// silently diverge between test and production paths.
    pub const DEFAULT_MAX_TRIP: usize = 1 << 16;
    /// Step budget used by [`DcaConfig::fast`].
    pub const FAST_MAX_STEPS: u64 = 20_000_000;
    /// Step budget for single-loop replays in unit tests and bench
    /// harnesses — large enough for any fixture in the repo, small enough
    /// to fail fast on an accidental infinite loop.
    pub const TEST_STEP_BUDGET: u64 = 10_000_000;
    /// Default `schedule(dynamic, N)` chunk size when no profile-driven
    /// autotuning is in play. Aliases [`dca_deps::DEFAULT_DYNAMIC_CHUNK`]
    /// — the one authoritative definition every consumer (executor
    /// fallback, advisor pragmas, scaling benches) must agree with.
    pub const DEFAULT_DYNAMIC_CHUNK: usize = dca_deps::DEFAULT_DYNAMIC_CHUNK;

    /// A configuration for quick tests: reverse + 2 shuffles, small budgets.
    pub fn fast() -> Self {
        DcaConfig {
            permutations: PermutationSet::Presets { shuffles: 2 },
            max_steps: Self::FAST_MAX_STEPS,
            ..Default::default()
        }
    }

    /// [`DcaConfig::fast`] with loop-exit scope and bit-exact float
    /// comparison — the configuration the hashed verification tier
    /// targets.
    pub fn exact() -> Self {
        DcaConfig {
            verify_scope: VerifyScope::LoopExit,
            float_tolerance: 0.0,
            ..Self::fast()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = DcaConfig::default();
        assert_eq!(c.permutations, PermutationSet::Presets { shuffles: 3 });
        assert_eq!(c.verify_scope, VerifyScope::ProgramEnd);
        assert!(c.float_tolerance > 0.0);
        assert_eq!(c.digest, DigestMode::Auto);
        let e = DcaConfig::exact();
        assert_eq!(e.verify_scope, VerifyScope::LoopExit);
        assert_eq!(e.float_tolerance, 0.0);
        assert_eq!(c.threads, 0, "auto-detect worker count by default");
        assert_eq!(c.obs, ObsOptions::default(), "observability off by default");
        assert!(!c.obs.metrics);
        assert!(c.max_wall.is_unlimited(), "no deadlines by default");
        assert!(c.fault.is_none(), "no fault injection by default");
        assert!(c.cache.is_none(), "no verdict cache by default");
        assert!(c.journal.is_none(), "no run journal by default");
        assert!(c.max_heap_cells.is_none(), "no heap budget by default");
        assert_eq!(c.fault_retries, 0, "no fault retries by default");
        assert!(c.cancel.is_none(), "no cancellation token by default");
        assert_eq!(c.exec_threads, 0, "auto-detect executor width by default");
        assert!(c.exec_validate, "parallel runs validate by default");
    }

    #[test]
    fn obs_metrics_shorthand() {
        let o = ObsOptions::metrics();
        assert!(o.metrics);
        assert!(o.trace.is_none());
    }
}
