//! Outcome capture and comparison — the "live-out verification" step
//! (paper §IV-B3).
//!
//! Two capture scopes exist (see [`crate::config::VerifyScope`]): the whole
//! program's observable outcome, and a loop-exit state digest built from
//! live-out scalars plus a *canonical* serialization of the reachable heap.
//! Canonicalization numbers objects by first visit during a deterministic
//! traversal from the roots, so heaps that differ only in allocation order
//! (as permuted executions legitimately do) still compare equal.

use dca_interp::{Machine, ObjId, OutputItem, Value};
use std::collections::HashMap;

/// Compares two floats under a relative tolerance (exact for zero/inf/nan).
pub fn float_close(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= rel_tol * scale.max(1.0)
}

fn value_close(a: &Value, b: &Value, rel_tol: f64) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => float_close(*x, *y, rel_tol),
        (x, y) => x == y,
    }
}

/// A program's observable outcome: output stream and return value.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramOutcome {
    /// Everything printed.
    pub output: Vec<OutputItem>,
    /// `main`'s return value.
    pub ret: Option<Value>,
}

impl ProgramOutcome {
    /// Captures the outcome of a finished machine.
    pub fn capture(machine: &Machine<'_>, ret: Option<Value>) -> Self {
        ProgramOutcome {
            output: machine.output().to_vec(),
            ret,
        }
    }

    /// True if two outcomes agree (floats under `rel_tol`).
    pub fn matches(&self, other: &ProgramOutcome, rel_tol: f64) -> bool {
        if self.output.len() != other.output.len() {
            return false;
        }
        let ret_ok = match (&self.ret, &other.ret) {
            (None, None) => true,
            (Some(a), Some(b)) => value_close(a, b, rel_tol),
            _ => false,
        };
        if !ret_ok {
            return false;
        }
        self.output
            .iter()
            .zip(other.output.iter())
            .all(|(a, b)| match (a, b) {
                (OutputItem::Label(x), OutputItem::Label(y)) => x == y,
                (OutputItem::Value(x), OutputItem::Value(y)) => value_close(x, y, rel_tol),
                _ => false,
            })
    }
}

/// One cell of a canonical heap digest.
#[derive(Debug, Clone, PartialEq)]
pub enum CanonValue {
    /// A scalar value.
    Scalar(Value),
    /// A pointer, as the canonical (traversal-order) number of its target.
    Ref(u32),
}

/// A loop-exit state digest: live-out scalar values plus the canonical
/// reachable heap.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDigest {
    /// Values of live-out scalar variables, in a fixed order.
    pub scalars: Vec<CanonValue>,
    /// Canonicalized cells of every reachable object, concatenated in
    /// first-visit order with per-object length markers.
    pub heap: Vec<(u32, Vec<CanonValue>)>,
}

impl StateDigest {
    /// Builds the digest from `roots` (live-out variable values; pointers
    /// among them are traversal roots) plus every global object.
    pub fn capture(machine: &Machine<'_>, roots: &[Value]) -> Self {
        let heap = machine.heap();
        let n_globals = machine.module().globals.len();
        let mut canon: HashMap<ObjId, u32> = HashMap::new();
        let mut order: Vec<ObjId> = Vec::new();
        let mut queue: Vec<ObjId> = Vec::new();
        let visit = |o: ObjId,
                     canon: &mut HashMap<ObjId, u32>,
                     order: &mut Vec<ObjId>,
                     queue: &mut Vec<ObjId>| {
            if let std::collections::hash_map::Entry::Vacant(e) = canon.entry(o) {
                e.insert(order.len() as u32);
                order.push(o);
                queue.push(o);
            }
        };
        // Roots: globals first (fixed order), then live-out pointers.
        for g in 0..n_globals {
            visit(ObjId(g as u32), &mut canon, &mut order, &mut queue);
        }
        for v in roots {
            if let Value::Ptr(o) = v {
                visit(*o, &mut canon, &mut order, &mut queue);
            }
        }
        // BFS in canonical order.
        let mut i = 0;
        while i < queue.len() {
            let o = queue[i];
            i += 1;
            for cell in &heap[o.index()].cells {
                if let Value::Ptr(t) = cell {
                    visit(*t, &mut canon, &mut order, &mut queue);
                }
            }
        }
        let canon_cell = |v: &Value| match v {
            Value::Ptr(o) => CanonValue::Ref(canon[o]),
            other => CanonValue::Scalar(*other),
        };
        let scalars = roots.iter().map(canon_cell).collect();
        let heap_digest = order
            .iter()
            .map(|&o| {
                let cells = heap[o.index()].cells.iter().map(canon_cell).collect();
                (o.0.min(n_globals as u32), cells)
            })
            .collect();
        StateDigest {
            scalars,
            heap: heap_digest,
        }
    }

    /// True if two digests agree (floats under `rel_tol`).
    pub fn matches(&self, other: &StateDigest, rel_tol: f64) -> bool {
        let cv_ok = |a: &CanonValue, b: &CanonValue| match (a, b) {
            (CanonValue::Scalar(x), CanonValue::Scalar(y)) => value_close(x, y, rel_tol),
            (CanonValue::Ref(x), CanonValue::Ref(y)) => x == y,
            _ => false,
        };
        self.scalars.len() == other.scalars.len()
            && self.heap.len() == other.heap.len()
            && self
                .scalars
                .iter()
                .zip(&other.scalars)
                .all(|(a, b)| cv_ok(a, b))
            && self
                .heap
                .iter()
                .zip(&other.heap)
                .all(|((ka, ca), (kb, cb))| {
                    ka == kb && ca.len() == cb.len() && ca.iter().zip(cb).all(|(a, b)| cv_ok(a, b))
                })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_interp::NoHooks;

    #[test]
    fn float_tolerance() {
        assert!(float_close(1.0, 1.0 + 1e-12, 1e-8));
        assert!(!float_close(1.0, 1.1, 1e-8));
        assert!(float_close(0.0, 0.0, 1e-8));
        assert!(!float_close(f64::NAN, f64::NAN, 1e-8));
        assert!(float_close(1e20, 1e20 * (1.0 + 1e-10), 1e-8));
    }

    #[test]
    fn program_outcomes_compare_with_tolerance() {
        let a = ProgramOutcome {
            output: vec![
                OutputItem::Label("x".into()),
                OutputItem::Value(Value::Float(1.0)),
            ],
            ret: Some(Value::Int(3)),
        };
        let mut b = a.clone();
        assert!(a.matches(&b, 1e-8));
        b.output[1] = OutputItem::Value(Value::Float(1.0 + 1e-13));
        assert!(a.matches(&b, 1e-8));
        b.output[1] = OutputItem::Value(Value::Float(2.0));
        assert!(!a.matches(&b, 1e-8));
        b = a.clone();
        b.ret = Some(Value::Int(4));
        assert!(!a.matches(&b, 1e-8));
    }

    fn machine_for(src: &str) -> (dca_ir::Module, Vec<Value>) {
        let m = dca_ir::compile(src).expect("compile");
        (m, vec![])
    }

    #[test]
    fn digest_ignores_allocation_order() {
        // Build the same two-node list with opposite allocation orders; the
        // canonical digest from the head pointer must match.
        let src_fwd = "struct N { v: int, next: *N }\n\
             fn main() -> int { let a: *N = new N; let b: *N = new N; \
             a.v = 1; b.v = 2; a.next = b; b.next = null; \
             if (a.v > 0) { return 1; } return 0; }";
        let src_rev = "struct N { v: int, next: *N }\n\
             fn main() -> int { let b: *N = new N; let a: *N = new N; \
             a.v = 1; b.v = 2; a.next = b; b.next = null; \
             if (a.v > 0) { return 1; } return 0; }";
        let digest = |src: &str| {
            let (m, _) = machine_for(src);
            let mut machine = dca_interp::Machine::new(&m);
            machine
                .push_call(m.main().expect("main"), &[])
                .expect("push");
            machine.run(&mut NoHooks, u64::MAX).expect("run");
            // Roots: the `a` head pointer. Find it via the heap: the object
            // whose v == 1.
            let head = machine
                .heap()
                .iter()
                .position(|o| o.cells.first() == Some(&Value::Int(1)))
                .expect("node a");
            StateDigest::capture(&machine, &[Value::Ptr(ObjId(head as u32))])
        };
        let d1 = digest(src_fwd);
        let d2 = digest(src_rev);
        assert!(d1.matches(&d2, 1e-8));
    }

    #[test]
    fn digest_canonicalizes_cycles() {
        // A two-node ring; digests from either entry node must differ (the
        // root determines traversal order) but be stable across runs, and
        // digesting an isomorphic ring built in the opposite order must
        // match.
        let src_a = "struct N { v: int, next: *N }\n\
             fn main() -> int { let a: *N = new N; let b: *N = new N; \
             a.v = 1; b.v = 2; a.next = b; b.next = a; return a.v; }";
        let src_b = "struct N { v: int, next: *N }\n\
             fn main() -> int { let b: *N = new N; let a: *N = new N; \
             a.v = 1; b.v = 2; a.next = b; b.next = a; return a.v; }";
        let digest = |src: &str| {
            let m = dca_ir::compile(src).expect("compile");
            let mut machine = dca_interp::Machine::new(&m);
            machine
                .push_call(m.main().expect("main"), &[])
                .expect("push");
            machine.run(&mut NoHooks, u64::MAX).expect("run");
            let a = machine
                .heap()
                .iter()
                .position(|o| o.cells.first() == Some(&Value::Int(1)))
                .expect("node a");
            StateDigest::capture(&machine, &[Value::Ptr(ObjId(a as u32))])
        };
        assert!(digest(src_a).matches(&digest(src_b), 1e-8));
    }

    #[test]
    fn digest_floats_compare_with_tolerance() {
        let mk = |x: f64| StateDigest {
            scalars: vec![super::CanonValue::Scalar(Value::Float(x))],
            heap: vec![],
        };
        assert!(mk(1.0).matches(&mk(1.0 + 1e-12), 1e-8));
        assert!(!mk(1.0).matches(&mk(1.001), 1e-8));
    }

    #[test]
    fn digest_detects_value_differences() {
        let (m, _) = machine_for(
            "struct N { v: int, next: *N }\n\
             fn main() -> int { let a: *N = new N; a.v = 1; return 0; }",
        );
        let mut machine = dca_interp::Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        machine.run(&mut NoHooks, u64::MAX).expect("run");
        let node = ObjId(machine.heap().len() as u32 - 1);
        let d1 = StateDigest::capture(&machine, &[Value::Ptr(node)]);
        let d2 = StateDigest::capture(&machine, &[Value::Int(5)]);
        assert!(!d1.matches(&d2, 1e-8));
    }
}
