//! Outcome capture and comparison — the "live-out verification" step
//! (paper §IV-B3).
//!
//! Two capture scopes exist (see [`crate::config::VerifyScope`]): the whole
//! program's observable outcome, and a loop-exit state digest built from
//! live-out scalars plus a *canonical* serialization of the reachable heap.
//! Canonicalization numbers objects by first visit during a deterministic
//! traversal from the roots, so heaps that differ only in allocation order
//! (as permuted executions legitimately do) still compare equal.

use dca_interp::{Machine, ObjId, OutputItem, Value};
use dca_rng::{Block4, Fingerprint};
use std::collections::HashMap;
use std::fmt;

/// The single quiet-NaN payload every NaN canonicalizes to.
const CANON_QNAN_BITS: u64 = 0x7ff8_0000_0000_0000;

/// The canonical bit pattern of a float: every NaN (any sign/payload)
/// maps to one quiet NaN, `-0.0` maps to `+0.0`, and everything else
/// keeps its IEEE-754 bits. Two floats are *canonically equal* — the
/// equality the hashed verification tier, the structural digest and the
/// tolerance comparator's fast path all share — iff their canonical bits
/// are equal.
#[must_use]
pub fn canon_f64_bits(x: f64) -> u64 {
    // Integer-only (branch-free under cmov) so the streaming digest's
    // per-cell loop stays straight-line: a float is NaN iff its
    // magnitude bits exceed the exponent mask, and ±0.0 iff they are 0.
    const SIGN: u64 = 1 << 63;
    const EXP: u64 = 0x7FF0_0000_0000_0000;
    let bits = x.to_bits();
    let mag = bits & !SIGN;
    if mag > EXP {
        CANON_QNAN_BITS
    } else if mag == 0 {
        0 // +0.0; folds -0.0 in.
    } else {
        bits
    }
}

/// Compares two floats under a relative tolerance.
///
/// Canonically-bitwise-equal floats always match, *before* any finiteness
/// or tolerance logic: NaN equals NaN (any payloads), equal infinities
/// match, and `-0.0 == +0.0`. A NaN never matches a non-NaN, and opposite
/// infinities never match. Finite, bitwise-distinct floats fall through
/// to the relative-tolerance comparison.
pub fn float_close(a: f64, b: f64, rel_tol: f64) -> bool {
    if canon_f64_bits(a) == canon_f64_bits(b) {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= rel_tol * scale.max(1.0)
}

fn value_close(a: &Value, b: &Value, rel_tol: f64) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => float_close(*x, *y, rel_tol),
        (x, y) => x == y,
    }
}

/// The first point where a permuted execution's live-out state diverged
/// from the golden reference — carried by
/// [`crate::Violation::OutcomeMismatch`] so reports can say *what*
/// differed, not just that something did.
///
/// Produced by a deterministic walk of both states in canonical order
/// (scalars, then heap objects in first-visit order, then cells), so the
/// reported divergence is identical at every worker-thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// A live-out root variable differs.
    Root {
        /// Source name of the variable.
        name: String,
        /// Its value in the golden reference, rendered.
        golden: String,
        /// Its value in the permuted replay, rendered.
        permuted: String,
    },
    /// The reachable heaps differ in object count.
    ObjectCount {
        /// Objects reachable in the reference.
        golden: usize,
        /// Objects reachable in the permuted replay.
        permuted: usize,
    },
    /// A canonical object differs in identity class or size.
    ObjectShape {
        /// The object's canonical (first-visit) number.
        object: u32,
        /// Its class and size in the reference, rendered.
        golden: String,
        /// Its class and size in the permuted replay, rendered.
        permuted: String,
    },
    /// One cell of a canonical object differs in value.
    Cell {
        /// The object's canonical (first-visit) number.
        object: u32,
        /// The differing cell's index.
        cell: u32,
        /// The cell in the golden reference, rendered.
        golden: String,
        /// The cell in the permuted replay, rendered.
        permuted: String,
    },
    /// The output streams differ in length.
    OutputLen {
        /// Items printed by the golden run.
        golden: usize,
        /// Items printed by the permuted replay.
        permuted: usize,
    },
    /// One printed item differs.
    Output {
        /// The differing item's index in the output stream.
        index: usize,
        /// The item in the golden run, rendered.
        golden: String,
        /// The item in the permuted replay, rendered.
        permuted: String,
    },
    /// The return values differ.
    Ret {
        /// The golden run's return value, rendered.
        golden: String,
        /// The permuted replay's return value, rendered.
        permuted: String,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Root {
                name,
                golden,
                permuted,
            } => write!(f, "live-out `{name}`: golden {golden}, permuted {permuted}"),
            Divergence::ObjectCount { golden, permuted } => {
                write!(f, "reachable objects: golden {golden}, permuted {permuted}")
            }
            Divergence::ObjectShape {
                object,
                golden,
                permuted,
            } => write!(f, "object #{object}: golden {golden}, permuted {permuted}"),
            Divergence::Cell {
                object,
                cell,
                golden,
                permuted,
            } => write!(
                f,
                "object #{object} cell {cell}: golden {golden}, permuted {permuted}"
            ),
            Divergence::OutputLen { golden, permuted } => write!(
                f,
                "output length: golden {golden} item(s), permuted {permuted}"
            ),
            Divergence::Output {
                index,
                golden,
                permuted,
            } => write!(f, "output[{index}]: golden {golden}, permuted {permuted}"),
            Divergence::Ret { golden, permuted } => {
                write!(f, "return value: golden {golden}, permuted {permuted}")
            }
        }
    }
}

/// Renders an optional return value for divergence reports.
fn ret_str(v: &Option<Value>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "(no value)".to_string(),
    }
}

/// A program's observable outcome: output stream and return value.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramOutcome {
    /// Everything printed.
    pub output: Vec<OutputItem>,
    /// `main`'s return value.
    pub ret: Option<Value>,
}

impl ProgramOutcome {
    /// Captures the outcome of a finished machine.
    pub fn capture(machine: &Machine<'_>, ret: Option<Value>) -> Self {
        ProgramOutcome {
            output: machine.output().to_vec(),
            ret,
        }
    }

    /// True if two outcomes agree (floats under `rel_tol`).
    pub fn matches(&self, other: &ProgramOutcome, rel_tol: f64) -> bool {
        self.matches_parts(&other.output, &other.ret, rel_tol)
    }

    /// [`ProgramOutcome::matches`] against a *borrowed* output stream and
    /// return value — the per-replay hot path compares a finished
    /// machine's output in place instead of cloning it into a fresh
    /// `ProgramOutcome` first.
    pub fn matches_parts(&self, output: &[OutputItem], ret: &Option<Value>, rel_tol: f64) -> bool {
        if self.output.len() != output.len() {
            return false;
        }
        let ret_ok = match (&self.ret, ret) {
            (None, None) => true,
            (Some(a), Some(b)) => value_close(a, b, rel_tol),
            _ => false,
        };
        if !ret_ok {
            return false;
        }
        self.output
            .iter()
            .zip(output.iter())
            .all(|(a, b)| match (a, b) {
                (OutputItem::Label(x), OutputItem::Label(y)) => x == y,
                (OutputItem::Value(x), OutputItem::Value(y)) => value_close(x, y, rel_tol),
                _ => false,
            })
    }

    /// The first divergence between this (golden) outcome and a permuted
    /// run's output/return value, in deterministic order: output length,
    /// return value, then output items left to right. `None` when they
    /// match under `rel_tol`.
    pub fn first_divergence(
        &self,
        output: &[OutputItem],
        ret: &Option<Value>,
        rel_tol: f64,
    ) -> Option<Divergence> {
        if self.output.len() != output.len() {
            return Some(Divergence::OutputLen {
                golden: self.output.len(),
                permuted: output.len(),
            });
        }
        let ret_ok = match (&self.ret, ret) {
            (None, None) => true,
            (Some(a), Some(b)) => value_close(a, b, rel_tol),
            _ => false,
        };
        if !ret_ok {
            return Some(Divergence::Ret {
                golden: ret_str(&self.ret),
                permuted: ret_str(ret),
            });
        }
        for (index, (a, b)) in self.output.iter().zip(output.iter()).enumerate() {
            let ok = match (a, b) {
                (OutputItem::Label(x), OutputItem::Label(y)) => x == y,
                (OutputItem::Value(x), OutputItem::Value(y)) => value_close(x, y, rel_tol),
                _ => false,
            };
            if !ok {
                return Some(Divergence::Output {
                    index,
                    golden: a.to_string(),
                    permuted: b.to_string(),
                });
            }
        }
        None
    }
}

/// One cell of a canonical heap digest.
#[derive(Debug, Clone, PartialEq)]
pub enum CanonValue {
    /// A scalar value.
    Scalar(Value),
    /// A pointer, as the canonical (traversal-order) number of its target.
    Ref(u32),
}

impl fmt::Display for CanonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanonValue::Scalar(v) => write!(f, "{v}"),
            CanonValue::Ref(n) => write!(f, "→#{n}"),
        }
    }
}

/// Reusable scratch for the canonical heap traversal: the first-visit
/// numbering map and the BFS order/queue. One lives inside each
/// `ReplayWorker`, cleared (capacity kept) between replays, so steady-
/// state digest capture — hashed or structural — allocates nothing.
#[derive(Debug, Default)]
pub struct DigestScratch {
    canon: HashMap<ObjId, u32>,
    order: Vec<ObjId>,
}

impl DigestScratch {
    /// Fresh, empty scratch.
    #[must_use]
    pub fn new() -> Self {
        DigestScratch::default()
    }

    /// Numbers `o` by first visit and enqueues it for the BFS; no-op for
    /// an already-visited object.
    fn visit(&mut self, o: ObjId) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.canon.entry(o) {
            e.insert(self.order.len() as u32);
            self.order.push(o);
        }
    }

    /// Runs the canonical traversal — roots are the globals (in fixed
    /// declaration order) then the pointers among the live-out values —
    /// leaving the numbering in `canon` and the visit order in `order`.
    fn traverse(&mut self, machine: &Machine<'_>, roots: &[Value]) {
        self.canon.clear();
        self.order.clear();
        for g in 0..machine.globals_len() {
            self.visit(ObjId(g as u32));
        }
        for v in roots {
            if let Value::Ptr(o) = v {
                self.visit(*o);
            }
        }
        // BFS in canonical order; `order` doubles as the work queue (its
        // tail is the frontier).
        let mut i = 0;
        while i < self.order.len() {
            let o = self.order[i];
            i += 1;
            for cell in machine.obj_cells(o) {
                if let Value::Ptr(t) = cell {
                    self.visit(*t);
                }
            }
        }
    }
}

/// Absorption tags for the streaming digest: every cell contributes
/// exactly one payload word to the fingerprint plus a 3-bit tag folded
/// into a side lane, and sections are length-prefixed (the root count,
/// then each self-delimiting heap record's cell count; the object count
/// trails the heap section, since streaming discovers objects as it
/// goes), so a decoder replaying the length words can classify every
/// absorbed word — the stream parses back unambiguously, and two states
/// stream identical words iff their structural digests match under
/// canonical (tolerance-zero) float equality.
mod tag {
    pub const INT: u64 = 1;
    pub const FLOAT: u64 = 2;
    pub const BOOL: u64 = 3;
    pub const REF: u64 = 4;
    pub const NULL: u64 = 5;
}

/// The odd multiplier chaining the tag side-lane (the xorshift*
/// constant, shared with the payload lanes so the hot loop holds one
/// wide constant). Tag words are at most 24 bits, so a structured
/// cancellation — which would need a later tag word to equal an earlier
/// difference times a power of this multiplier, a full-width
/// pseudorandom value — is unconstructible.
const TAG_M: u64 = 0x2545_F491_4F6C_DD1D;

/// Streams tagged cells into a [`Fingerprint`] at one payload word per
/// cell. Each run of cells (the root section, one object's cells) is
/// absorbed in aligned four-word blocks via [`Block4::push4`]; the
/// tags of an eight-cell chunk pack into a 24-bit word chained into a
/// side lane (`tagline`) absorbed as the stream's final word. Block
/// boundaries, padding, and the tag fold order are all pure functions of
/// the encoded section lengths, so the stream remains an unambiguous
/// encoding while the hot loop absorbs half the words the naive
/// `(tag, payload)` pairing would — and keeps every lane in registers.
struct CellStream {
    fp: Fingerprint,
    tagline: u64,
    cells: u64,
}

/// Looks up — or assigns, on first visit — a pointer's canonical
/// number, enqueueing newly discovered objects on `order` (whose tail
/// is the BFS frontier). This is how the streaming tier discovers the
/// reachable heap *during* absorption, without the separate
/// pointer-scanning pass [`DigestScratch::traverse`] makes; processing
/// `order` front to back while appending here reproduces exactly the
/// traversal's first-visit numbering. Out-of-line and cold so the
/// opaque map call stays off the scalar hot path — register allocation
/// keeps the fingerprint lanes live across chunks instead of spilling
/// around a potential call per cell.
#[cold]
#[inline(never)]
fn visit_ref(canon: &mut HashMap<ObjId, u32>, order: &mut Vec<ObjId>, o: ObjId) -> u64 {
    match canon.entry(o) {
        std::collections::hash_map::Entry::Occupied(e) => u64::from(*e.get()),
        std::collections::hash_map::Entry::Vacant(e) => {
            let n = order.len() as u32;
            e.insert(n);
            order.push(o);
            u64::from(n)
        }
    }
}

/// Encodes one canonical value as its 3-bit tag and one payload word:
/// scalars by canonical bits, pointers by their first-visit number
/// (assigned on the spot for objects seen here first — see
/// [`visit_ref`]).
#[inline(always)]
fn enc(canon: &mut HashMap<ObjId, u32>, order: &mut Vec<ObjId>, v: &Value) -> (u64, u64) {
    match v {
        Value::Int(i) => (tag::INT, *i as u64),
        Value::Float(x) => (tag::FLOAT, canon_f64_bits(*x)),
        Value::Bool(b) => (tag::BOOL, u64::from(*b)),
        Value::Ptr(o) => (tag::REF, visit_ref(canon, order, *o)),
        Value::Null => (tag::NULL, 0),
    }
}

/// Absorbs the longest all-[`Value::Int`] prefix of `s` in eight-cell
/// chunks and returns the rest. `#[inline(never)]` is load-bearing: a
/// call-free body lets the register allocator keep every lane, the tag
/// lane, and the cursor in registers — inlined next to the generic
/// chunk path (whose [`canon_ref`] call clobbers caller-saved
/// registers) the lanes get spilled to the stack instead. The
/// entry/exit lane transfer is amortized over the whole run.
#[inline(never)]
fn run_ints<'a>(blk: &mut Block4<'_>, tagline: &mut u64, mut s: &'a [Value]) -> &'a [Value] {
    // Lane state detached by value and block accounting derived from
    // the consumed length, so the loop carries no pointers and no
    // counter — just lanes, tag lane, and cursor, which all fit in
    // registers.
    let mut l = blk.lanes();
    let mut tl = *tagline;
    let before = s.len();
    while let [Value::Int(i0), Value::Int(i1), Value::Int(i2), Value::Int(i3), Value::Int(i4), Value::Int(i5), Value::Int(i6), Value::Int(i7), rest @ ..] =
        s
    {
        l.push4([*i0 as u64, *i1 as u64, *i2 as u64, *i3 as u64]);
        l.push4([*i4 as u64, *i5 as u64, *i6 as u64, *i7 as u64]);
        tl = (tl ^ (tag::INT * 0o1111_1111))
            .wrapping_mul(TAG_M)
            .wrapping_add(1);
        s = rest;
    }
    blk.put_lanes(l, ((before - s.len()) / 4) as u64);
    *tagline = tl;
    s
}

/// Absorbs the longest all-[`Value::Float`] prefix of `s` in eight-cell
/// chunks (canonicalizing each cell's bits) and returns the rest. See
/// [`run_ints`] for why this is a separate never-inlined function.
#[inline(never)]
fn run_floats<'a>(blk: &mut Block4<'_>, tagline: &mut u64, mut s: &'a [Value]) -> &'a [Value] {
    let mut l = blk.lanes();
    let mut tl = *tagline;
    let before = s.len();
    while let [Value::Float(x0), Value::Float(x1), Value::Float(x2), Value::Float(x3), Value::Float(x4), Value::Float(x5), Value::Float(x6), Value::Float(x7), rest @ ..] =
        s
    {
        l.push4([
            canon_f64_bits(*x0),
            canon_f64_bits(*x1),
            canon_f64_bits(*x2),
            canon_f64_bits(*x3),
        ]);
        l.push4([
            canon_f64_bits(*x4),
            canon_f64_bits(*x5),
            canon_f64_bits(*x6),
            canon_f64_bits(*x7),
        ]);
        tl = (tl ^ (tag::FLOAT * 0o1111_1111))
            .wrapping_mul(TAG_M)
            .wrapping_add(1);
        s = rest;
    }
    blk.put_lanes(l, ((before - s.len()) / 4) as u64);
    *tagline = tl;
    s
}

impl CellStream {
    fn new() -> Self {
        CellStream {
            fp: Fingerprint::new(),
            tagline: TAG_M,
            cells: 0,
        }
    }

    /// Absorbs a structural word (section length or object key) as-is.
    #[inline]
    fn word(&mut self, w: u64) {
        self.fp.push(w);
    }

    /// Chains one packed tag word into the side lane.
    #[inline]
    fn fold_tags(&mut self, tw: u64) {
        self.tagline = (self.tagline ^ tw).wrapping_mul(TAG_M).wrapping_add(1);
    }

    /// Absorbs one run of cells: payloads in aligned four-word blocks,
    /// tags packed eight per fold (remainder cells pushed singly, their
    /// tags folded as one final sub-24-bit word — the run length pins
    /// which shape was used).
    fn run(&mut self, canon: &mut HashMap<ObjId, u32>, order: &mut Vec<ObjId>, cells: &[Value]) {
        self.cells += cells.len() as u64;
        // Lane state and tag lane ride in locals (the block absorber by
        // value, the tag word explicitly) so the loops stay in
        // registers. Eight cells per iteration amortizes the serial
        // tag-fold chain and the loop bookkeeping across two lane
        // blocks. Homogeneous runs — the common case, since arrays are
        // typed — spin in *separate* type-specialized loops: a single
        // loop body covering every cell type keeps all paths' constants
        // live at once and spills lanes to the stack, while each split
        // loop register-allocates only what its one type needs. The
        // generic chunk in between guarantees progress on mixed runs
        // and produces the identical stream (same payload words, same
        // packed tags), so splitting is invisible to the digest.
        let mut tagline = self.tagline;
        let mut blk = self.fp.block4();
        let mut s = cells;
        loop {
            s = run_ints(&mut blk, &mut tagline, s);
            s = run_floats(&mut blk, &mut tagline, s);
            let [c0, c1, c2, c3, c4, c5, c6, c7, rest @ ..] = s else {
                break;
            };
            let (t0, w0) = enc(canon, order, c0);
            let (t1, w1) = enc(canon, order, c1);
            let (t2, w2) = enc(canon, order, c2);
            let (t3, w3) = enc(canon, order, c3);
            let (t4, w4) = enc(canon, order, c4);
            let (t5, w5) = enc(canon, order, c5);
            let (t6, w6) = enc(canon, order, c6);
            let (t7, w7) = enc(canon, order, c7);
            blk.push4([w0, w1, w2, w3]);
            blk.push4([w4, w5, w6, w7]);
            let tw = (t0 << 21)
                | (t1 << 18)
                | (t2 << 15)
                | (t3 << 12)
                | (t4 << 9)
                | (t5 << 6)
                | (t6 << 3)
                | t7;
            tagline = (tagline ^ tw).wrapping_mul(TAG_M).wrapping_add(1);
            s = rest;
        }
        blk.finish();
        self.tagline = tagline;
        if !s.is_empty() {
            let mut tw = 0;
            for v in s {
                let (t, w) = enc(canon, order, v);
                self.fp.push(w);
                tw = (tw << 3) | t;
            }
            self.fold_tags(tw);
        }
    }

    /// Absorbs the tag side-lane as the final stream word and returns
    /// the digest plus the cell count.
    fn finish(mut self) -> (u128, u64) {
        let tagline = self.tagline;
        self.fp.push(tagline);
        (self.fp.digest(), self.cells)
    }
}

/// Tier-1 verification: streams the canonical live-out state — the exact
/// traversal [`StateDigest::capture`] materializes — into a 128-bit
/// [`Fingerprint`] instead of building the digest. Returns the digest and
/// the number of values absorbed (scalar roots plus heap cells), the
/// `verify.digest.cells` accounting unit.
///
/// Equality of two returned digests coincides (up to a ~2⁻¹²⁸ accidental
/// collision) with [`StateDigest::matches`] at `rel_tol == 0.0`: floats
/// are absorbed by canonical bits ([`canon_f64_bits`]), which is exactly
/// the tolerance-zero comparator, and the word stream is an unambiguous
/// encoding of the structural digest — root count, then root cells, then
/// per object its key, length, and cells, then the object count as a
/// trailing cross-check, each cell run zero-padded to a four-word block
/// boundary, with the packed tag side-lane as the final word. Heap
/// records are self-delimiting (their cell count is absorbed before
/// their cells) and the fingerprint finalizes the total word count, so
/// equal word streams parse identically even though the object count
/// trails the heap section. The `hash_digest_equals_structural_digest`
/// property test holds the two paths together.
///
/// Unlike [`StateDigest::capture`], which runs a pointer-scanning
/// traversal pass and then walks the cells again to materialize them,
/// this streams each object's cells *once*: pointers discovered during
/// absorption are numbered and enqueued on the fly (`visit_ref`),
/// which yields the identical first-visit numbering because the
/// traversal's BFS queue is the visit order itself. On large heaps the
/// verify cost is one pass at near memory bandwidth, not two.
pub fn hash_live_state(
    machine: &Machine<'_>,
    roots: &[Value],
    scratch: &mut DigestScratch,
) -> (u128, u64) {
    scratch.canon.clear();
    scratch.order.clear();
    for g in 0..machine.globals_len() {
        scratch.visit(ObjId(g as u32));
    }
    for v in roots {
        if let Value::Ptr(o) = v {
            scratch.visit(*o);
        }
    }
    let n_globals = machine.globals_len() as u32;
    let mut s = CellStream::new();
    s.word(roots.len() as u64);
    s.run(&mut scratch.canon, &mut scratch.order, roots);
    let mut i = 0;
    while i < scratch.order.len() {
        let o = scratch.order[i];
        i += 1;
        let obj = machine.obj_cells(o);
        s.word(u64::from(o.0.min(n_globals)));
        s.word(obj.len() as u64);
        s.run(&mut scratch.canon, &mut scratch.order, obj);
    }
    s.word(scratch.order.len() as u64);
    s.finish()
}

/// A loop-exit state digest: live-out scalar values plus the canonical
/// reachable heap.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDigest {
    /// Values of live-out scalar variables, in a fixed order.
    pub scalars: Vec<CanonValue>,
    /// Canonicalized cells of every reachable object, concatenated in
    /// first-visit order with per-object length markers.
    pub heap: Vec<(u32, Vec<CanonValue>)>,
}

impl StateDigest {
    /// Builds the digest from `roots` (live-out variable values; pointers
    /// among them are traversal roots) plus every global object.
    pub fn capture(machine: &Machine<'_>, roots: &[Value]) -> Self {
        StateDigest::capture_with(machine, roots, &mut DigestScratch::new())
    }

    /// [`StateDigest::capture`] with caller-provided traversal scratch —
    /// the tier-2 replay path reuses one [`DigestScratch`] per worker so
    /// repeated captures don't rebuild the canon map from nothing.
    pub fn capture_with(
        machine: &Machine<'_>,
        roots: &[Value],
        scratch: &mut DigestScratch,
    ) -> Self {
        scratch.traverse(machine, roots);
        let n_globals = machine.globals_len() as u32;
        let canon_cell = |v: &Value| match v {
            Value::Ptr(o) => CanonValue::Ref(scratch.canon[o]),
            other => CanonValue::Scalar(*other),
        };
        let scalars = roots.iter().map(canon_cell).collect();
        let heap_digest = scratch
            .order
            .iter()
            .map(|&o| {
                let cells = machine.obj_cells(o).iter().map(canon_cell).collect();
                (o.0.min(n_globals), cells)
            })
            .collect();
        StateDigest {
            scalars,
            heap: heap_digest,
        }
    }

    /// Values the digest holds: scalar roots plus every canonical heap
    /// cell — the same unit [`hash_live_state`] counts, so the
    /// `verify.digest.cells` counter is tier-independent.
    #[must_use]
    pub fn cell_count(&self) -> u64 {
        self.scalars.len() as u64 + self.heap.iter().map(|(_, c)| c.len() as u64).sum::<u64>()
    }

    /// True if two digests agree (floats under `rel_tol`).
    pub fn matches(&self, other: &StateDigest, rel_tol: f64) -> bool {
        let cv_ok = |a: &CanonValue, b: &CanonValue| match (a, b) {
            (CanonValue::Scalar(x), CanonValue::Scalar(y)) => value_close(x, y, rel_tol),
            (CanonValue::Ref(x), CanonValue::Ref(y)) => x == y,
            _ => false,
        };
        self.scalars.len() == other.scalars.len()
            && self.heap.len() == other.heap.len()
            && self
                .scalars
                .iter()
                .zip(&other.scalars)
                .all(|(a, b)| cv_ok(a, b))
            && self
                .heap
                .iter()
                .zip(&other.heap)
                .all(|((ka, ca), (kb, cb))| {
                    ka == kb && ca.len() == cb.len() && ca.iter().zip(cb).all(|(a, b)| cv_ok(a, b))
                })
    }

    /// The first divergence between this (golden) digest and a permuted
    /// one, walking both in canonical order: scalar roots (named via
    /// `root_names`, parallel to [`StateDigest::scalars`]), then object
    /// count, then each object's class/size, then its cells. Returns
    /// `None` when [`StateDigest::matches`] would under the same
    /// `rel_tol`. The walk order is a pure function of the two digests,
    /// so the reported divergence is deterministic.
    pub fn first_divergence(
        &self,
        permuted: &StateDigest,
        rel_tol: f64,
        root_names: &[String],
    ) -> Option<Divergence> {
        let cv_ok = |a: &CanonValue, b: &CanonValue| match (a, b) {
            (CanonValue::Scalar(x), CanonValue::Scalar(y)) => value_close(x, y, rel_tol),
            (CanonValue::Ref(x), CanonValue::Ref(y)) => x == y,
            _ => false,
        };
        if self.scalars.len() != permuted.scalars.len() {
            // Unreachable when both digests come from the same root set
            // (as the engine's always do), but kept total.
            return Some(Divergence::ObjectCount {
                golden: self.scalars.len(),
                permuted: permuted.scalars.len(),
            });
        }
        for (i, (a, b)) in self.scalars.iter().zip(&permuted.scalars).enumerate() {
            if !cv_ok(a, b) {
                return Some(Divergence::Root {
                    name: root_names
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| format!("root{i}")),
                    golden: a.to_string(),
                    permuted: b.to_string(),
                });
            }
        }
        if self.heap.len() != permuted.heap.len() {
            return Some(Divergence::ObjectCount {
                golden: self.heap.len(),
                permuted: permuted.heap.len(),
            });
        }
        for (object, ((ka, ca), (kb, cb))) in self.heap.iter().zip(&permuted.heap).enumerate() {
            let object = object as u32;
            if ka != kb || ca.len() != cb.len() {
                let shape = |k: &u32, c: &Vec<CanonValue>| format!("class {k} × {} cells", c.len());
                return Some(Divergence::ObjectShape {
                    object,
                    golden: shape(ka, ca),
                    permuted: shape(kb, cb),
                });
            }
            for (cell, (a, b)) in ca.iter().zip(cb).enumerate() {
                if !cv_ok(a, b) {
                    return Some(Divergence::Cell {
                        object,
                        cell: cell as u32,
                        golden: a.to_string(),
                        permuted: b.to_string(),
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_interp::NoHooks;

    #[test]
    fn float_tolerance() {
        assert!(float_close(1.0, 1.0 + 1e-12, 1e-8));
        assert!(!float_close(1.0, 1.1, 1e-8));
        assert!(float_close(0.0, 0.0, 1e-8));
        assert!(
            float_close(f64::NAN, f64::NAN, 1e-8),
            "a deterministic NaN live-out must not refute commutativity"
        );
        assert!(float_close(1e20, 1e20 * (1.0 + 1e-10), 1e-8));
    }

    #[test]
    fn float_canonicalization_semantics() {
        // Bitwise-equal floats (incl. NaN, any payload/sign) match even
        // at zero tolerance.
        assert!(float_close(f64::NAN, f64::NAN, 0.0));
        assert!(float_close(-f64::NAN, f64::NAN, 0.0));
        let weird_nan = f64::from_bits(0x7ff8_0000_0000_0001);
        assert!(weird_nan.is_nan());
        assert!(float_close(weird_nan, f64::NAN, 0.0));
        // -0.0 == +0.0.
        assert!(float_close(-0.0, 0.0, 0.0));
        // Equal infinities match; opposite ones, and NaN vs anything
        // else, never do.
        assert!(float_close(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(float_close(f64::NEG_INFINITY, f64::NEG_INFINITY, 0.0));
        assert!(!float_close(f64::INFINITY, f64::NEG_INFINITY, 1e-8));
        assert!(!float_close(f64::NAN, 1.0, 1e-8));
        assert!(!float_close(f64::NAN, f64::INFINITY, 1e-8));
        // Canonical bits agree with all of the above.
        assert_eq!(canon_f64_bits(f64::NAN), canon_f64_bits(weird_nan));
        assert_eq!(canon_f64_bits(-0.0), canon_f64_bits(0.0));
        assert_ne!(
            canon_f64_bits(f64::INFINITY),
            canon_f64_bits(f64::NEG_INFINITY)
        );
        assert_eq!(canon_f64_bits(1.5), (1.5f64).to_bits());
    }

    #[test]
    fn program_outcomes_compare_with_tolerance() {
        let a = ProgramOutcome {
            output: vec![
                OutputItem::Label("x".into()),
                OutputItem::Value(Value::Float(1.0)),
            ],
            ret: Some(Value::Int(3)),
        };
        let mut b = a.clone();
        assert!(a.matches(&b, 1e-8));
        b.output[1] = OutputItem::Value(Value::Float(1.0 + 1e-13));
        assert!(a.matches(&b, 1e-8));
        b.output[1] = OutputItem::Value(Value::Float(2.0));
        assert!(!a.matches(&b, 1e-8));
        b = a.clone();
        b.ret = Some(Value::Int(4));
        assert!(!a.matches(&b, 1e-8));
    }

    fn machine_for(src: &str) -> (dca_ir::Module, Vec<Value>) {
        let m = dca_ir::compile(src).expect("compile");
        (m, vec![])
    }

    #[test]
    fn digest_ignores_allocation_order() {
        // Build the same two-node list with opposite allocation orders; the
        // canonical digest from the head pointer must match.
        let src_fwd = "struct N { v: int, next: *N }\n\
             fn main() -> int { let a: *N = new N; let b: *N = new N; \
             a.v = 1; b.v = 2; a.next = b; b.next = null; \
             if (a.v > 0) { return 1; } return 0; }";
        let src_rev = "struct N { v: int, next: *N }\n\
             fn main() -> int { let b: *N = new N; let a: *N = new N; \
             a.v = 1; b.v = 2; a.next = b; b.next = null; \
             if (a.v > 0) { return 1; } return 0; }";
        let digest = |src: &str| {
            let (m, _) = machine_for(src);
            let mut machine = dca_interp::Machine::new(&m);
            machine
                .push_call(m.main().expect("main"), &[])
                .expect("push");
            machine.run(&mut NoHooks, u64::MAX).expect("run");
            // Roots: the `a` head pointer. Find it via the heap: the object
            // whose v == 1.
            let head = machine
                .heap()
                .iter()
                .position(|o| o.cells.first() == Some(&Value::Int(1)))
                .expect("node a");
            StateDigest::capture(&machine, &[Value::Ptr(ObjId(head as u32))])
        };
        let d1 = digest(src_fwd);
        let d2 = digest(src_rev);
        assert!(d1.matches(&d2, 1e-8));
    }

    #[test]
    fn digest_canonicalizes_cycles() {
        // A two-node ring; digests from either entry node must differ (the
        // root determines traversal order) but be stable across runs, and
        // digesting an isomorphic ring built in the opposite order must
        // match.
        let src_a = "struct N { v: int, next: *N }\n\
             fn main() -> int { let a: *N = new N; let b: *N = new N; \
             a.v = 1; b.v = 2; a.next = b; b.next = a; return a.v; }";
        let src_b = "struct N { v: int, next: *N }\n\
             fn main() -> int { let b: *N = new N; let a: *N = new N; \
             a.v = 1; b.v = 2; a.next = b; b.next = a; return a.v; }";
        let digest = |src: &str| {
            let m = dca_ir::compile(src).expect("compile");
            let mut machine = dca_interp::Machine::new(&m);
            machine
                .push_call(m.main().expect("main"), &[])
                .expect("push");
            machine.run(&mut NoHooks, u64::MAX).expect("run");
            let a = machine
                .heap()
                .iter()
                .position(|o| o.cells.first() == Some(&Value::Int(1)))
                .expect("node a");
            StateDigest::capture(&machine, &[Value::Ptr(ObjId(a as u32))])
        };
        assert!(digest(src_a).matches(&digest(src_b), 1e-8));
    }

    #[test]
    fn digest_floats_compare_with_tolerance() {
        let mk = |x: f64| StateDigest {
            scalars: vec![super::CanonValue::Scalar(Value::Float(x))],
            heap: vec![],
        };
        assert!(mk(1.0).matches(&mk(1.0 + 1e-12), 1e-8));
        assert!(!mk(1.0).matches(&mk(1.001), 1e-8));
    }

    #[test]
    fn hashed_capture_agrees_with_structural_digest() {
        // Two isomorphic heaps (opposite allocation order) must produce
        // the same stream hash; a third with one differing cell must not.
        let run = |src: &str| -> (dca_ir::Module, String) { (machine_for(src).0, src.to_string()) };
        let srcs = [
            "struct N { v: int, next: *N }\n\
             fn main() -> int { let a: *N = new N; let b: *N = new N; \
             a.v = 1; b.v = 2; a.next = b; b.next = null; \
             if (a.v > 0) { return 1; } return 0; }",
            "struct N { v: int, next: *N }\n\
             fn main() -> int { let b: *N = new N; let a: *N = new N; \
             a.v = 1; b.v = 2; a.next = b; b.next = null; \
             if (a.v > 0) { return 1; } return 0; }",
            "struct N { v: int, next: *N }\n\
             fn main() -> int { let a: *N = new N; let b: *N = new N; \
             a.v = 1; b.v = 3; a.next = b; b.next = null; \
             if (a.v > 0) { return 1; } return 0; }",
        ];
        let mut scratch = DigestScratch::new();
        let capture = |m: &dca_ir::Module, scratch: &mut DigestScratch| {
            let mut machine = dca_interp::Machine::new(m);
            machine
                .push_call(m.main().expect("main"), &[])
                .expect("push");
            machine.run(&mut NoHooks, u64::MAX).expect("run");
            let head = machine
                .heap()
                .iter()
                .position(|o| o.cells.first() == Some(&Value::Int(1)))
                .expect("node a");
            let roots = [Value::Ptr(ObjId(head as u32))];
            let (hash, cells) = hash_live_state(&machine, &roots, scratch);
            let digest = StateDigest::capture_with(&machine, &roots, scratch);
            assert_eq!(cells, digest.cell_count(), "cell accounting agrees");
            (hash, digest)
        };
        let results: Vec<_> = srcs
            .iter()
            .map(|s| capture(&run(s).0, &mut scratch))
            .collect();
        assert_eq!(results[0].0, results[1].0, "isomorphic heaps hash equal");
        assert!(results[0].1.matches(&results[1].1, 0.0));
        assert_ne!(results[0].0, results[2].0, "differing cell hashes apart");
        assert!(!results[0].1.matches(&results[2].1, 0.0));
    }

    #[test]
    fn hashed_capture_canonicalizes_nan_and_negative_zero() {
        let mk = |cells: Vec<Value>| -> (u128, StateDigest) {
            let src = "let g: [float; 4];\nfn main() -> int { return 0; }";
            let m = dca_ir::compile(src).expect("compile");
            let mut machine = dca_interp::Machine::new(&m);
            machine
                .push_call(m.main().expect("main"), &[])
                .expect("push");
            machine.run(&mut NoHooks, u64::MAX).expect("run");
            // Write the float cells directly into the global array.
            for (i, v) in cells.iter().enumerate() {
                let addr = dca_interp::Addr {
                    obj: ObjId(0),
                    cell: i as u32,
                };
                machine.poke_cell(addr, *v);
            }
            let mut scratch = DigestScratch::new();
            let (h, _) = hash_live_state(&machine, &[], &mut scratch);
            (h, StateDigest::capture(&machine, &[]))
        };
        let weird_nan = f64::from_bits(0xfff8_0000_0000_0042);
        let (h1, d1) = mk(vec![
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Float(1.0),
            Value::Float(0.0),
        ]);
        let (h2, d2) = mk(vec![
            Value::Float(weird_nan),
            Value::Float(0.0),
            Value::Float(1.0),
            Value::Float(-0.0),
        ]);
        let (h3, d3) = mk(vec![
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Float(2.0),
            Value::Float(0.0),
        ]);
        assert_eq!(h1, h2, "NaN payloads and signed zeros canonicalize");
        assert!(d1.matches(&d2, 0.0));
        assert_ne!(h1, h3);
        assert!(!d1.matches(&d3, 0.0));
        assert_eq!(
            d1.first_divergence(&d3, 0.0, &[]),
            Some(Divergence::Cell {
                object: 0,
                cell: 2,
                golden: "1.0".to_string(),
                permuted: "2.0".to_string(),
            })
        );
    }

    #[test]
    fn first_divergence_walks_in_canonical_order() {
        let mk = |scalars: Vec<CanonValue>, heap: Vec<(u32, Vec<CanonValue>)>| StateDigest {
            scalars,
            heap,
        };
        let golden = mk(
            vec![CanonValue::Scalar(Value::Int(1))],
            vec![(0, vec![CanonValue::Scalar(Value::Int(5))])],
        );
        // Scalar divergence wins over a heap one.
        let both = mk(
            vec![CanonValue::Scalar(Value::Int(2))],
            vec![(0, vec![CanonValue::Scalar(Value::Int(6))])],
        );
        assert_eq!(
            golden.first_divergence(&both, 0.0, &["s".to_string()]),
            Some(Divergence::Root {
                name: "s".to_string(),
                golden: "1".to_string(),
                permuted: "2".to_string(),
            })
        );
        // Shape divergence names the object.
        let shape = mk(
            vec![CanonValue::Scalar(Value::Int(1))],
            vec![(
                0,
                vec![
                    CanonValue::Scalar(Value::Int(5)),
                    CanonValue::Scalar(Value::Int(9)),
                ],
            )],
        );
        assert!(matches!(
            golden.first_divergence(&shape, 0.0, &[]),
            Some(Divergence::ObjectShape { object: 0, .. })
        ));
        // Object-count divergence.
        let fewer = mk(vec![CanonValue::Scalar(Value::Int(1))], vec![]);
        assert_eq!(
            golden.first_divergence(&fewer, 0.0, &[]),
            Some(Divergence::ObjectCount {
                golden: 1,
                permuted: 0,
            })
        );
        // Agreement yields None, consistent with matches().
        assert_eq!(golden.first_divergence(&golden.clone(), 0.0, &[]), None);
        // Display is human-readable.
        let d = golden.first_divergence(&both, 0.0, &[]).expect("diverges");
        assert_eq!(d.to_string(), "live-out `root0`: golden 1, permuted 2");
    }

    #[test]
    fn program_outcome_first_divergence() {
        let golden = ProgramOutcome {
            output: vec![
                OutputItem::Label("x".into()),
                OutputItem::Value(Value::Int(3)),
            ],
            ret: Some(Value::Int(7)),
        };
        assert_eq!(
            golden.first_divergence(&golden.output, &golden.ret, 1e-8),
            None
        );
        assert!(matches!(
            golden.first_divergence(&golden.output[..1], &golden.ret, 1e-8),
            Some(Divergence::OutputLen {
                golden: 2,
                permuted: 1,
            })
        ));
        assert_eq!(
            golden.first_divergence(&golden.output, &Some(Value::Int(8)), 1e-8),
            Some(Divergence::Ret {
                golden: "7".to_string(),
                permuted: "8".to_string(),
            })
        );
        let mut out = golden.output.clone();
        out[1] = OutputItem::Value(Value::Int(4));
        let d = golden
            .first_divergence(&out, &golden.ret, 1e-8)
            .expect("diverges");
        assert!(matches!(d, Divergence::Output { index: 1, .. }));
        assert_eq!(d.to_string(), "output[1]: golden 3, permuted 4");
    }

    #[test]
    fn digest_detects_value_differences() {
        let (m, _) = machine_for(
            "struct N { v: int, next: *N }\n\
             fn main() -> int { let a: *N = new N; a.v = 1; return 0; }",
        );
        let mut machine = dca_interp::Machine::new(&m);
        machine
            .push_call(m.main().expect("main"), &[])
            .expect("push");
        machine.run(&mut NoHooks, u64::MAX).expect("run");
        let node = ObjId(machine.heap().len() as u32 - 1);
        let d1 = StateDigest::capture(&machine, &[Value::Ptr(node)]);
        let d2 = StateDigest::capture(&machine, &[Value::Int(5)]);
        assert!(!d1.matches(&d2, 1e-8));
    }
}
