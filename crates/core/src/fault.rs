//! Deterministic fault injection and panic containment.
//!
//! DCA runs *arbitrary* loop payloads under permuted iteration orders, so
//! the engine must survive whatever those payloads — or its own passes —
//! do: trap, hang, exhaust memory, or trip an internal invariant. This
//! module provides the two halves of that robustness layer:
//!
//! * [`catch_contained`] — a `catch_unwind` wrapper plus a process-wide
//!   panic hook that suppresses the default stderr backtrace while a
//!   contained region is running. A worker panic becomes a classified
//!   verdict ([`crate::SkipReason::EngineFault`]) instead of tearing down
//!   the `thread::scope` and aborting the analysis.
//! * [`FaultPlan`] — a deterministic fault-injection spec (forced panic,
//!   worker stall, synthetic trap at step *k*, allocation failure after
//!   *j* allocs) targeted at one (loop, replay) pair, enabled via
//!   [`crate::DcaConfig::fault`] or the `DCA_FAULT=<spec>` environment
//!   variable. The chaos suite sweeps these sites and asserts the engine
//!   always returns a complete report with un-faulted loops bit-identical
//!   to the fault-free run.
//!
//! # Unwind safety
//!
//! [`catch_contained`] uses `AssertUnwindSafe`. The assertion is real,
//! not hopeful: the one structure that outlives a caught per-replay
//! panic — the worker's reused interpreter
//! [`Machine`](dca_interp::Machine) — is explicitly rewound before its
//! next use (the armed write journal the panicking replay left behind
//! is rolled back, or the machine is fully restored from the immutable
//! golden snapshot if the panic struck before arming; see DESIGN.md
//! §13). The shared structures a worker touches (`StopIndex`, obs
//! counters) are lock-free atomics or poison-tolerant locks.
//!
//! # `DCA_FAULT` spec grammar
//!
//! ```text
//! spec     := kind '@' trigger (',' modifier)*
//! kind     := 'panic' | 'stall' | 'trap' | 'oom' | 'cancel' | 'kill'
//! trigger  := 'replay:' index          (panic, stall, cancel)
//!           | 'step:' number           (trap: synthetic trap after that
//!                                       many replay steps)
//!           | 'alloc:' number          (oom: that many allocations
//!                                       succeed, the next one fails)
//!           | 'save:' number           (kill: abort the verdict-cache
//!                                       save; 0 = after the temp file
//!                                       is written, 1 = mid-write)
//! modifier := 'loop:' number           (loop ordinal; default 0)
//!           | 'replay:' index          (permutation slot; default 0)
//! index    := number | 'rand:' seed    (seed resolved with dca-rng)
//! ```
//!
//! Examples: `panic@replay:1`, `trap@step:64,replay:1`,
//! `oom@alloc:2,loop:1`, `stall@replay:rand:7`, `cancel@replay:1,loop:2`,
//! `kill@save:0`.

use dca_rng::Rng;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;
use std::time::Duration;

/// How long an injected worker stall sleeps. Long enough to perturb
/// worker scheduling, short enough to keep chaos suites fast.
pub const STALL_DURATION: Duration = Duration::from_millis(25);

/// Replay indices drawn by `rand:<seed>` are taken below this bound, so a
/// random spec always lands on a slot that exists under the default
/// presets (reverse + 3 shuffles).
const RAND_REPLAY_BOUND: u64 = 4;

/// What an injected fault does when its targeted replay runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the replay closure (exercises panic containment).
    Panic,
    /// Sleep [`STALL_DURATION`] before the replay (exercises worker
    /// scheduling around a stalled slot).
    Stall,
    /// Synthetic [`dca_interp::Trap::Injected`] after this many replay
    /// steps (exercises the trap classification path).
    Trap {
        /// Replay steps to execute before trapping.
        at_step: u64,
    },
    /// This many heap allocations succeed, the next traps with
    /// [`dca_interp::Trap::OutOfMemory`] (exercises the genuine OOM
    /// path).
    AllocFail {
        /// Allocations that succeed before the failure.
        allocs: u64,
    },
    /// Trip the run's [`crate::parallel::CancelToken`] when the targeted
    /// replay starts (exercises cooperative cancellation from the
    /// deterministic chaos harness; the engine creates an internal token
    /// when the config has none).
    Cancel,
    /// Simulate a process kill mid verdict-cache save: `stage` 0 aborts
    /// after the temp file is fully written but before the rename,
    /// `stage` 1 aborts mid-write leaving a truncated temp file. Either
    /// way the previously saved cache file must survive untouched — the
    /// chaos proof of the tmp+rename protocol's atomicity.
    KillSave {
        /// Where in the save protocol the simulated kill strikes.
        stage: u64,
    },
}

impl FaultKind {
    /// Short label for obs counters: `engine.faults.<label>`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
            FaultKind::Trap { .. } => "trap",
            FaultKind::AllocFail { .. } => "oom",
            FaultKind::Cancel => "cancel",
            FaultKind::KillSave { .. } => "kill",
        }
    }

    /// True when an injected fault of this kind can change the verdict
    /// of the loop it lands in — panics, stalls, traps and allocation
    /// failures all perturb the replay itself. The engine bypasses the
    /// verdict cache for such plans (a perturbed verdict is not a
    /// function of the cache key). [`FaultKind::Cancel`] and
    /// [`FaultKind::KillSave`] strike *around* the verification — every
    /// verdict that completes is the true one — so the cache stays
    /// active under them.
    #[must_use]
    pub fn perturbs_verdicts(&self) -> bool {
        !matches!(self, FaultKind::Cancel | FaultKind::KillSave { .. })
    }
}

/// A deterministic fault-injection plan: one [`FaultKind`] armed for one
/// (loop ordinal, permutation slot) pair.
///
/// Targeting is by *position* — the loop's ordinal in analysis order and
/// the permutation slot index — both of which are deterministic for a
/// given configuration and workload regardless of thread count, so a
/// faulted run perturbs exactly one replay and nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// Which loop (ordinal in analysis order) is targeted.
    pub loop_ordinal: usize,
    /// Which permutation slot of that loop is targeted.
    pub replay: usize,
}

/// A `DCA_FAULT` / [`FaultPlan::parse`] spec error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

fn parse_index(s: &str) -> Result<usize, FaultSpecError> {
    if let Some(seed) = s.strip_prefix("rand:") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| FaultSpecError(format!("bad rand seed `{seed}`")))?;
        Ok(Rng::seed_from_u64(seed).below(RAND_REPLAY_BOUND) as usize)
    } else {
        s.parse()
            .map_err(|_| FaultSpecError(format!("bad index `{s}`")))
    }
}

fn parse_number(s: &str) -> Result<u64, FaultSpecError> {
    s.parse()
        .map_err(|_| FaultSpecError(format!("bad number `{s}`")))
}

impl FaultPlan {
    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] when the spec does not match the
    /// grammar.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let (kind_str, rest) = spec
            .split_once('@')
            .ok_or_else(|| FaultSpecError(format!("missing `@` in `{spec}`")))?;
        let mut parts = rest.split(',');
        // invariant: split always yields at least one element.
        let trigger = parts.next().expect("split yields at least one part");
        let (tkey, tval) = trigger
            .split_once(':')
            .ok_or_else(|| FaultSpecError(format!("missing `:` in trigger `{trigger}`")))?;
        let mut replay: Option<usize> = None;
        let kind = match (kind_str, tkey) {
            ("panic", "replay") => {
                replay = Some(parse_index(tval)?);
                FaultKind::Panic
            }
            ("stall", "replay") => {
                replay = Some(parse_index(tval)?);
                FaultKind::Stall
            }
            ("trap", "step") => FaultKind::Trap {
                at_step: parse_number(tval)?,
            },
            ("oom", "alloc") => FaultKind::AllocFail {
                allocs: parse_number(tval)?,
            },
            ("cancel", "replay") => {
                replay = Some(parse_index(tval)?);
                FaultKind::Cancel
            }
            ("kill", "save") => FaultKind::KillSave {
                stage: parse_number(tval)?,
            },
            _ => {
                return Err(FaultSpecError(format!(
                    "unknown kind/trigger `{kind_str}@{tkey}`"
                )))
            }
        };
        let mut loop_ordinal = 0usize;
        for m in parts {
            let (key, val) = m
                .split_once(':')
                .ok_or_else(|| FaultSpecError(format!("missing `:` in modifier `{m}`")))?;
            match key {
                "loop" => loop_ordinal = parse_index(val)?,
                "replay" => replay = Some(parse_index(val)?),
                _ => return Err(FaultSpecError(format!("unknown modifier `{key}`"))),
            }
        }
        Ok(FaultPlan {
            kind,
            loop_ordinal,
            replay: replay.unwrap_or(0),
        })
    }

    /// The plan from the `DCA_FAULT` environment variable, if set and
    /// valid. An invalid spec is reported to stderr and ignored — a
    /// typo'd chaos variable must not change analysis behavior.
    #[must_use]
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("DCA_FAULT").ok()?;
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("warning: ignoring DCA_FAULT=`{spec}`: {e}");
                None
            }
        }
    }

    /// The fault to inject into permutation slot `replay` of the loop
    /// with analysis ordinal `loop_ordinal`, if this plan targets it.
    #[must_use]
    pub fn for_replay(&self, loop_ordinal: usize, replay: usize) -> Option<FaultKind> {
        (self.loop_ordinal == loop_ordinal && self.replay == replay).then_some(self.kind)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Panic => write!(f, "panic@replay:{}", self.replay)?,
            FaultKind::Stall => write!(f, "stall@replay:{}", self.replay)?,
            FaultKind::Trap { at_step } => write!(f, "trap@step:{at_step},replay:{}", self.replay)?,
            FaultKind::AllocFail { allocs } => {
                write!(f, "oom@alloc:{allocs},replay:{}", self.replay)?
            }
            FaultKind::Cancel => write!(f, "cancel@replay:{}", self.replay)?,
            FaultKind::KillSave { stage } => write!(f, "kill@save:{stage}")?,
        }
        if self.loop_ordinal != 0 {
            write!(f, ",loop:{}", self.loop_ordinal)?;
        }
        Ok(())
    }
}

/// Number of contained regions currently executing, across all threads.
/// While non-zero, the process panic hook stays silent (the panic is
/// about to be caught and classified; the default backtrace would spam
/// stderr once per injected fault).
static CONTAINED_DEPTH: AtomicUsize = AtomicUsize::new(0);
static HOOK_INSTALL: Once = Once::new();

fn install_contained_hook() {
    HOOK_INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CONTAINED_DEPTH.load(Ordering::Relaxed) == 0 {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, converting a panic into `Err(message)` instead of
/// unwinding, with the default stderr backtrace suppressed for the
/// duration. See the module docs for why `AssertUnwindSafe` holds here.
pub fn catch_contained<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_contained_hook();
    CONTAINED_DEPTH.fetch_add(1, Ordering::Relaxed);
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTAINED_DEPTH.fetch_sub(1, Ordering::Relaxed);
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        assert_eq!(
            FaultPlan::parse("panic@replay:1").expect("parse"),
            FaultPlan {
                kind: FaultKind::Panic,
                loop_ordinal: 0,
                replay: 1
            }
        );
        assert_eq!(
            FaultPlan::parse("stall@replay:0,loop:2").expect("parse"),
            FaultPlan {
                kind: FaultKind::Stall,
                loop_ordinal: 2,
                replay: 0
            }
        );
        assert_eq!(
            FaultPlan::parse("trap@step:64,replay:1").expect("parse"),
            FaultPlan {
                kind: FaultKind::Trap { at_step: 64 },
                loop_ordinal: 0,
                replay: 1
            }
        );
        assert_eq!(
            FaultPlan::parse("oom@alloc:2,loop:1,replay:3").expect("parse"),
            FaultPlan {
                kind: FaultKind::AllocFail { allocs: 2 },
                loop_ordinal: 1,
                replay: 3
            }
        );
        assert_eq!(
            FaultPlan::parse("cancel@replay:1,loop:2").expect("parse"),
            FaultPlan {
                kind: FaultKind::Cancel,
                loop_ordinal: 2,
                replay: 1
            }
        );
        assert_eq!(
            FaultPlan::parse("kill@save:1").expect("parse"),
            FaultPlan {
                kind: FaultKind::KillSave { stage: 1 },
                loop_ordinal: 0,
                replay: 0
            }
        );
    }

    #[test]
    fn display_round_trips() {
        for spec in [
            "panic@replay:1",
            "stall@replay:0",
            "trap@step:64,replay:1",
            "oom@alloc:2,replay:3,loop:1",
            "cancel@replay:2,loop:1",
            "kill@save:0",
            "kill@save:1,loop:3",
        ] {
            let plan = FaultPlan::parse(spec).expect("parse");
            let round = FaultPlan::parse(&plan.to_string()).expect("reparse");
            assert_eq!(plan, round, "{spec} must round-trip through Display");
        }
    }

    #[test]
    fn random_indices_are_deterministic_and_bounded() {
        let a = FaultPlan::parse("panic@replay:rand:7").expect("parse");
        let b = FaultPlan::parse("panic@replay:rand:7").expect("parse");
        assert_eq!(a, b, "same seed, same slot");
        assert!((a.replay as u64) < RAND_REPLAY_BOUND);
        // Different seeds eventually pick different slots.
        let picks: std::collections::BTreeSet<usize> = (0..32)
            .map(|s| {
                FaultPlan::parse(&format!("panic@replay:rand:{s}"))
                    .expect("parse")
                    .replay
            })
            .collect();
        assert!(picks.len() > 1, "rand must actually vary with the seed");
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "panic",
            "panic@",
            "panic@step:1",
            "trap@replay:0",
            "oom@alloc:x",
            "panic@replay:1,bogus:2",
            "explode@replay:1",
            "panic@replay:rand:notanumber",
            "cancel@step:1",
            "kill@replay:0",
            "kill@save:x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn targeting_is_positional() {
        let plan = FaultPlan::parse("trap@step:5,replay:2,loop:1").expect("parse");
        assert_eq!(plan.for_replay(1, 2), Some(FaultKind::Trap { at_step: 5 }));
        assert_eq!(plan.for_replay(1, 3), None);
        assert_eq!(plan.for_replay(0, 2), None);
    }

    #[test]
    fn only_replay_perturbing_kinds_bypass_the_cache() {
        assert!(FaultKind::Panic.perturbs_verdicts());
        assert!(FaultKind::Stall.perturbs_verdicts());
        assert!(FaultKind::Trap { at_step: 1 }.perturbs_verdicts());
        assert!(FaultKind::AllocFail { allocs: 0 }.perturbs_verdicts());
        assert!(!FaultKind::Cancel.perturbs_verdicts());
        assert!(!FaultKind::KillSave { stage: 0 }.perturbs_verdicts());
    }

    #[test]
    fn catch_contained_classifies_panics() {
        assert_eq!(catch_contained(|| 41 + 1), Ok(42));
        assert_eq!(
            catch_contained(|| -> i32 { panic!("boom") }),
            Err("boom".to_string())
        );
        assert_eq!(
            catch_contained(|| -> i32 { panic!("ordinal {}", 3) }),
            Err("ordinal 3".to_string())
        );
        // Nested containment unwinds depth correctly.
        let outer = catch_contained(|| {
            let inner = catch_contained(|| -> i32 { panic!("inner") });
            assert_eq!(inner, Err("inner".to_string()));
            7
        });
        assert_eq!(outer, Ok(7));
    }
}
