//! DCA verdicts and the per-module analysis report.

use crate::outcome::Divergence;
use dca_analysis::ExclusionReason;
use dca_interp::Trap;
use dca_ir::LoopRef;
use dca_obs::ObsRollup;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Why a loop failed commutativity testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A permuted execution produced a different outcome than the golden
    /// reference. Carries the first point of divergence in canonical
    /// traversal order when the engine could pinpoint one (`None` only
    /// when the diagnostic pass itself could not complete — e.g. the
    /// identity replay used to rebuild the golden state hit a budget).
    OutcomeMismatch(Option<Divergence>),
    /// A permuted execution trapped (paper §IV-E: permuted execution of
    /// non-commutative loops can behave unpredictably; we detect this
    /// reliably). Carries the concrete fault so reports can say *which*
    /// (out-of-bounds index, division by zero, OOM, …).
    ReplayTrapped(Trap),
    /// A permuted execution exceeded the step budget (e.g. permutation
    /// made a convergence loop diverge).
    ReplayDiverged,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OutcomeMismatch(None) => write!(f, "live-out mismatch"),
            Violation::OutcomeMismatch(Some(d)) => write!(f, "live-out mismatch: {d}"),
            Violation::ReplayTrapped(t) => write!(f, "permuted execution trapped: {t}"),
            Violation::ReplayDiverged => write!(f, "permuted execution diverged"),
        }
    }
}

/// Why a loop could not be dynamically tested at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipReason {
    /// More iterations than the configured trip limit.
    TripLimit,
    /// The golden run itself trapped; carries the concrete fault.
    GoldenTrapped(Trap),
    /// The golden run exceeded the step budget.
    GoldenBudget,
    /// A permuted replay exceeded the step budget. The replay never
    /// finished, so commutativity was neither confirmed nor refuted — a
    /// resource limit, not a [`Violation`].
    ReplayBudget,
    /// A wall-clock deadline ([`crate::config::WallLimits`]) expired
    /// before this loop's verification could finish. Like
    /// [`SkipReason::ReplayBudget`], a resource limit, not a violation.
    Deadline,
    /// The engine itself faulted (a contained panic) while analyzing this
    /// loop; carries the captured panic message. The rest of the analysis
    /// is unaffected — engine faults are contained, classified and
    /// reported, never a crash.
    EngineFault(String),
    /// The run was cancelled (Ctrl-C, a tripped
    /// [`crate::parallel::CancelToken`]) before this loop's verification
    /// could finish. The partial report is still valid; a re-run against
    /// the same `DCA_JOURNAL` resumes exactly here.
    Cancelled,
    /// A replay exceeded the configured heap budget
    /// ([`crate::DcaConfig::max_heap_cells`]). Like
    /// [`SkipReason::ReplayBudget`], a resource limit, not a violation —
    /// the budget exists so a runaway replay degrades to a skip instead
    /// of OOM-killing the whole process.
    MemoryBudget,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::TripLimit => write!(f, "trip count above limit"),
            SkipReason::GoldenTrapped(t) => write!(f, "golden run trapped: {t}"),
            SkipReason::GoldenBudget => write!(f, "golden run exceeded budget"),
            SkipReason::ReplayBudget => write!(f, "permuted replay exceeded budget"),
            SkipReason::Deadline => write!(f, "wall-clock deadline expired"),
            SkipReason::EngineFault(msg) => write!(f, "engine fault contained: {msg}"),
            SkipReason::Cancelled => write!(f, "run cancelled"),
            SkipReason::MemoryBudget => write!(f, "replay exceeded heap budget"),
        }
    }
}

/// DCA's verdict for one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopVerdict {
    /// All tested permutations preserved the outcome: the loop is
    /// (dynamically) commutative, hence potentially parallelizable.
    Commutative,
    /// Some permutation changed the outcome.
    NonCommutative(Violation),
    /// Statically excluded (I/O, empty payload — paper §IV-E).
    Excluded(ExclusionReason),
    /// The input workload never ran this loop with at least two
    /// iterations, so commutativity could not be observed (paper §V-C1's
    /// MG discussion).
    NotExercised,
    /// Dynamically untestable for a resource reason.
    Skipped(SkipReason),
}

impl LoopVerdict {
    /// True if the verdict reports the loop as parallelizable.
    pub fn is_commutative(&self) -> bool {
        matches!(self, LoopVerdict::Commutative)
    }
}

impl fmt::Display for LoopVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopVerdict::Commutative => write!(f, "commutative"),
            LoopVerdict::NonCommutative(v) => write!(f, "non-commutative ({v})"),
            LoopVerdict::Excluded(r) => write!(f, "excluded ({r})"),
            LoopVerdict::NotExercised => write!(f, "not exercised"),
            LoopVerdict::Skipped(r) => write!(f, "skipped ({r})"),
        }
    }
}

/// The full result for one loop.
#[derive(Debug, Clone)]
pub struct LoopResult {
    /// Which loop.
    pub lref: LoopRef,
    /// Its source tag, if any.
    pub tag: Option<String>,
    /// The verdict.
    pub verdict: LoopVerdict,
    /// Trip count observed during the golden run (0 when never recorded).
    pub trips: usize,
    /// How many permutations were executed.
    pub permutations_tested: usize,
    /// Interpreter steps consumed by the verification replays of this
    /// loop (the reference replay, every completed permutation, and the
    /// first terminal one). Deterministic for a given config and workload,
    /// regardless of the worker-thread count.
    pub replay_steps: u64,
    /// Wall-clock time spent analyzing this loop (golden recording plus
    /// replays). Purely informational; varies run to run.
    pub wall: Duration,
    /// True when this verdict was served from the persistent verdict
    /// cache ([`crate::cache`]) instead of being recomputed. Provenance
    /// metadata like [`wall`]: not part of the outcome, so equality
    /// ignores it.
    ///
    /// [`wall`]: LoopResult::wall
    pub cached: bool,
    /// True when this verdict was replayed from the write-ahead run
    /// journal ([`crate::journal`]) of an earlier, interrupted run
    /// instead of being recomputed. Provenance metadata like
    /// [`cached`]: not part of the outcome, so equality ignores it.
    ///
    /// [`cached`]: LoopResult::cached
    pub resumed: bool,
}

/// Equality compares the analysis outcome — verdict, trips, permutation
/// count — and deliberately ignores the performance metadata ([`wall`] is
/// never reproducible; `replay_steps` is, but is not part of the verdict).
///
/// [`wall`]: LoopResult::wall
impl PartialEq for LoopResult {
    fn eq(&self, other: &Self) -> bool {
        self.lref == other.lref
            && self.tag == other.tag
            && self.verdict == other.verdict
            && self.trips == other.trips
            && self.permutations_tested == other.permutations_tested
    }
}

/// The report of one whole-module analysis.
#[derive(Debug, Clone, Default)]
pub struct DcaReport {
    results: Vec<LoopResult>,
    index: HashMap<LoopRef, usize>,
    /// Wall-clock time of the whole analysis.
    pub wall: Duration,
    /// Worker threads the engine actually used (after resolving the
    /// `threads: 0` auto-detect).
    pub threads: usize,
    /// Pipeline observability rollup — per-stage span timings and
    /// counters — when the engine ran with
    /// [`crate::config::ObsOptions::metrics`] (or `DCA_TRACE`) enabled;
    /// `None` otherwise. Counter values and span counts are
    /// deterministic for a given configuration and workload, identical
    /// at every worker-thread count; span durations are wall time.
    pub obs: Option<ObsRollup>,
    /// Verdict-cache statistics for this analysis — `Some` whenever a
    /// cache path was configured (via [`crate::DcaConfig::cache`] or
    /// `DCA_CACHE`), even if the engine had to bypass it. `None` when no
    /// cache was configured.
    pub cache: Option<crate::cache::CacheStats>,
    /// Run-journal statistics for this analysis — `Some` whenever a
    /// journal path was configured (via [`crate::DcaConfig::journal`] or
    /// `DCA_JOURNAL`), even if the engine had to bypass it. `None` when
    /// no journal was configured.
    pub journal: Option<crate::journal::RunJournalStats>,
}

impl DcaReport {
    /// An empty report that will record `threads` worker threads.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        DcaReport {
            threads,
            ..DcaReport::default()
        }
    }

    /// Adds one loop's result.
    pub fn push(&mut self, r: LoopResult) {
        self.index.insert(r.lref, self.results.len());
        self.results.push(r);
    }

    /// All results, in analysis order.
    pub fn iter(&self) -> impl Iterator<Item = &LoopResult> {
        self.results.iter()
    }

    /// Number of loops analyzed (including excluded/skipped).
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when no loops were found.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The result for a specific loop.
    pub fn get(&self, l: LoopRef) -> Option<&LoopResult> {
        self.index.get(&l).map(|&i| &self.results[i])
    }

    /// The result for the loop tagged `tag`.
    pub fn by_tag(&self, tag: &str) -> Option<&LoopResult> {
        self.results.iter().find(|r| r.tag.as_deref() == Some(tag))
    }

    /// Loops found commutative.
    pub fn commutative_loops(&self) -> impl Iterator<Item = &LoopResult> {
        self.results.iter().filter(|r| r.verdict.is_commutative())
    }

    /// Count of commutative loops.
    pub fn commutative_count(&self) -> usize {
        self.commutative_loops().count()
    }

    /// Total interpreter steps consumed by verification replays.
    pub fn replay_steps(&self) -> u64 {
        self.results.iter().map(|r| r.replay_steps).sum()
    }

    /// Count of loops whose verdict came from the persistent cache.
    pub fn cached_count(&self) -> usize {
        self.results.iter().filter(|r| r.cached).count()
    }

    /// Count of loops whose verdict was replayed from the run journal of
    /// an earlier, interrupted run.
    pub fn resumed_count(&self) -> usize {
        self.results.iter().filter(|r| r.resumed).count()
    }
}

impl fmt::Display for DcaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DCA report: {}/{} loops commutative",
            self.commutative_count(),
            self.len()
        )?;
        for r in &self.results {
            let tag = r
                .tag
                .as_deref()
                .map(|t| format!(" @{t}"))
                .unwrap_or_default();
            let cached = if r.cached {
                " [cached]"
            } else if r.resumed {
                " [resumed]"
            } else {
                ""
            };
            writeln!(
                f,
                "  {}{tag}: {} (trips={}, perms={}){cached}",
                r.lref, r.verdict, r.trips, r.permutations_tested
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_ir::{FuncId, LoopId};

    fn lref(f: u32, l: u32) -> LoopRef {
        LoopRef {
            func: FuncId(f),
            loop_id: LoopId(l),
        }
    }

    #[test]
    fn report_lookup_and_counts() {
        let mut rep = DcaReport::default();
        rep.push(LoopResult {
            lref: lref(0, 0),
            tag: Some("a".into()),
            verdict: LoopVerdict::Commutative,
            trips: 8,
            permutations_tested: 4,
            replay_steps: 100,
            wall: Duration::from_millis(1),
            cached: false,
            resumed: false,
        });
        rep.push(LoopResult {
            lref: lref(0, 1),
            tag: None,
            verdict: LoopVerdict::NonCommutative(Violation::OutcomeMismatch(None)),
            trips: 8,
            permutations_tested: 1,
            replay_steps: 50,
            wall: Duration::from_millis(2),
            cached: false,
            resumed: false,
        });
        assert_eq!(rep.len(), 2);
        assert_eq!(rep.commutative_count(), 1);
        assert_eq!(rep.replay_steps(), 150);
        assert!(rep.by_tag("a").expect("tag a").verdict.is_commutative());
        assert!(rep.get(lref(0, 1)).is_some());
        assert!(rep.get(lref(1, 0)).is_none());
    }

    #[test]
    fn verdict_display() {
        assert_eq!(LoopVerdict::Commutative.to_string(), "commutative");
        assert_eq!(
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(None)).to_string(),
            "non-commutative (live-out mismatch)"
        );
        assert_eq!(
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(Some(Divergence::Ret {
                golden: "1".into(),
                permuted: "2".into(),
            })))
            .to_string(),
            "non-commutative (live-out mismatch: return value: golden 1, permuted 2)"
        );
        assert_eq!(LoopVerdict::NotExercised.to_string(), "not exercised");
        assert_eq!(
            LoopVerdict::Skipped(SkipReason::ReplayBudget).to_string(),
            "skipped (permuted replay exceeded budget)"
        );
    }

    #[test]
    fn verdicts_carry_concrete_faults() {
        // Reports name the concrete trap, not just "trapped".
        assert_eq!(
            LoopVerdict::NonCommutative(Violation::ReplayTrapped(Trap::OutOfBounds {
                len: 8,
                index: -1
            }))
            .to_string(),
            "non-commutative (permuted execution trapped: \
             index -1 out of bounds for object of 8 cells)"
        );
        assert_eq!(
            LoopVerdict::Skipped(SkipReason::GoldenTrapped(Trap::DivByZero)).to_string(),
            "skipped (golden run trapped: division by zero)"
        );
        assert_eq!(
            LoopVerdict::Skipped(SkipReason::Deadline).to_string(),
            "skipped (wall-clock deadline expired)"
        );
        assert_eq!(
            LoopVerdict::Skipped(SkipReason::EngineFault("boom".into())).to_string(),
            "skipped (engine fault contained: boom)"
        );
        assert_eq!(
            LoopVerdict::Skipped(SkipReason::Cancelled).to_string(),
            "skipped (run cancelled)"
        );
        assert_eq!(
            LoopVerdict::Skipped(SkipReason::MemoryBudget).to_string(),
            "skipped (replay exceeded heap budget)"
        );
    }

    #[test]
    fn equality_ignores_performance_metadata() {
        let a = LoopResult {
            lref: lref(0, 0),
            tag: None,
            verdict: LoopVerdict::Commutative,
            trips: 4,
            permutations_tested: 3,
            replay_steps: 1_000,
            wall: Duration::from_millis(7),
            cached: false,
            resumed: false,
        };
        let b = LoopResult {
            replay_steps: 999,
            wall: Duration::ZERO,
            cached: true,
            resumed: true,
            ..a.clone()
        };
        assert_eq!(
            a, b,
            "wall/replay_steps/cached/resumed are not part of the outcome"
        );
        let c = LoopResult {
            permutations_tested: 4,
            ..a.clone()
        };
        assert_ne!(a, c);
    }
}
