//! Work scheduling for the parallel verification engine.
//!
//! The dynamic stage of DCA is embarrassingly parallel at two levels:
//! every permuted replay of one loop starts from the same immutable golden
//! snapshot, and every loop of a module is verified independently. This
//! module provides the two scheduling primitives the engine builds on —
//! both implemented with [`std::thread::scope`], so borrowed inputs (the
//! module, the snapshot) are shared without cloning or `Arc`.
//!
//! # Determinism
//!
//! Parallel execution must be *observationally identical* to sequential
//! execution: same verdicts, same `permutations_tested`, same
//! `replay_steps`. [`parallel_map`] guarantees this trivially (results are
//! returned in item order). [`parallel_scan`] reproduces sequential
//! early-exit semantics with a [`StopIndex`]: workers claim indices in
//! increasing order from a shared atomic counter, a terminal outcome at
//! index *t* lowers the stop index to *t* via `fetch_min`, and workers
//! stop claiming indices beyond the current stop. Because a worker never
//! abandons an index it has claimed and the stop index only decreases,
//! every index at or below the *final* stop is guaranteed to be fully
//! processed — so a post-join fold over the slots sees exactly the prefix
//! the sequential engine would have executed, and the first terminal
//! outcome it finds is the same one.
//!
//! # Fault containment contract
//!
//! Both primitives *propagate* worker panics (`resume_unwind` after the
//! join): if `f` unwinds, the whole call unwinds, and with multiple
//! in-flight workers the unpredictable teardown order can abort the
//! process. The engine therefore never passes a closure that can panic:
//! every per-loop analysis and every per-replay check is wrapped in
//! [`crate::fault::catch_contained`] *inside* `f`, converting a panic
//! into a classified result ([`crate::SkipReason::EngineFault`]) before
//! this module ever sees it. The `resume_unwind` here is the backstop
//! for bugs in the scheduling code itself, not a supported path.

use dca_obs::{Obs, TraceVal};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between a controller (a CLI
/// Ctrl-C handler, a supervising thread) and the analysis it governs.
///
/// Cancellation is *advisory*: setting the token never interrupts a
/// worker mid-step. The engine polls it at its safe points — before
/// starting a loop, before golden recording, and every
/// [`crate::replay::GOVERN_GRANULE`] interpreter steps inside a governed
/// replay — and winds the run down into a valid partial
/// [`crate::DcaReport`] with [`crate::SkipReason::Cancelled`] for every
/// loop it did not finish.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone observes the same
/// flag. The single store/load is atomic and lock-free, so a clone may
/// safely be triggered from a signal handler.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; there is no way to un-cancel.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Tokens compare by identity (same underlying flag), mirroring what a
/// [`crate::DcaConfig`] equality check needs: two configs are
/// interchangeable only if cancelling one run would cancel the other.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

/// Resolves a [`crate::DcaConfig::threads`] request to a concrete worker
/// count: `0` means the `DCA_THREADS` environment variable if it is set
/// to a positive integer, else one worker per CPU the process can use;
/// any other value is taken as-is.
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("DCA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Per-worker accounting for a `worker` trace event. Only maintained when
/// the observer has a trace sink; a `None` start means "don't measure".
struct WorkerStats {
    started: Option<Instant>,
    busy: Duration,
    items: u64,
}

impl WorkerStats {
    fn begin(obs: &Obs) -> Self {
        WorkerStats {
            started: if obs.has_trace() {
                Some(Instant::now())
            } else {
                None
            },
            busy: Duration::ZERO,
            items: 0,
        }
    }

    fn item_start(&self) -> Option<Instant> {
        self.started.map(|_| Instant::now())
    }

    fn item_end(&mut self, t: Option<Instant>) {
        if let Some(t) = t {
            self.busy += t.elapsed();
            self.items += 1;
        }
    }

    /// Emits the `worker` event: lifetime (`span_us`), time spent inside
    /// the work closure (`busy_us`), and the difference (`wait_us` — claim
    /// overhead plus time parked behind the scope join).
    fn finish(self, obs: &Obs, pool: &str, worker: usize) {
        let Some(started) = self.started else { return };
        let span = started.elapsed();
        let wait = span.saturating_sub(self.busy);
        obs.trace_event(
            "worker",
            &[
                ("pool", TraceVal::Str(pool)),
                ("worker", TraceVal::U64(worker as u64)),
                ("items", TraceVal::U64(self.items)),
                ("span_us", TraceVal::U64(span.as_micros() as u64)),
                ("busy_us", TraceVal::U64(self.busy.as_micros() as u64)),
                ("wait_us", TraceVal::U64(wait.as_micros() as u64)),
            ],
        );
    }
}

/// The lowest index at which a terminal outcome (violation, exhausted
/// budget) has been observed; [`usize::MAX`] while there is none.
///
/// Monotonically decreasing: [`StopIndex::stop_at`] uses `fetch_min`, so
/// concurrent terminals race benignly and the minimum — the one sequential
/// execution would have hit first — always wins.
#[derive(Debug)]
pub struct StopIndex(AtomicUsize);

impl StopIndex {
    /// A stop index with no terminal outcome recorded yet.
    #[must_use]
    pub fn new() -> Self {
        StopIndex(AtomicUsize::new(usize::MAX))
    }

    /// Records a terminal outcome at `index` (keeps the minimum).
    pub fn stop_at(&self, index: usize) {
        self.0.fetch_min(index, Ordering::SeqCst);
    }

    /// The lowest terminal index seen so far, or [`usize::MAX`].
    #[must_use]
    pub fn current(&self) -> usize {
        self.0.load(Ordering::SeqCst)
    }
}

impl Default for StopIndex {
    fn default() -> Self {
        StopIndex::new()
    }
}

/// Applies `f` to every item on up to `threads` workers and returns the
/// results **in item order**. `f(i, &items[i])` must be pure up to its
/// return value; items are claimed dynamically, so uneven per-item cost
/// balances itself.
///
/// When `obs` has a trace sink, each worker of the multi-threaded path
/// emits one `worker` event tagged with `pool` on exit (see DESIGN.md
/// §11); with tracing off the workers never read the clock.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn parallel_map<T, R, F>(
    threads: usize,
    items: &[T],
    obs: &Obs,
    pool: &'static str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (next, f) = (&next, &f);
    let buckets: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut stats = WorkerStats::begin(obs);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let t = stats.item_start();
                        local.push((i, f(i, item)));
                        stats.item_end(t);
                    }
                    stats.finish(obs, pool, w);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index was claimed exactly once"))
        .collect()
}

/// Applies `f` to a prefix of `items` on up to `threads` workers,
/// honouring early exit: `f` signals a terminal outcome by calling
/// [`StopIndex::stop_at`] with its own index, and no index beyond the
/// current stop is *started* afterwards.
///
/// Returns one slot per item; slot `i` is `Some` iff `f(i, _)` ran to
/// completion. Every slot at or below the final [`StopIndex::current`] is
/// guaranteed `Some` (see the module docs for why), which is exactly what
/// a deterministic fold over the sequential prefix needs. Slots past the
/// stop may or may not be filled — workers that had already claimed them
/// finish them — and callers must ignore them.
///
/// When `obs` has a trace sink, each worker of the multi-threaded path
/// emits one `worker` event tagged with `pool` on exit, and a
/// `stop_observed` event when it abandons a claim because the claim is
/// past the current stop index — the scheduling-dependent race the
/// deterministic fold hides. With tracing off the workers never read the
/// clock.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn parallel_scan<T, R, F>(
    threads: usize,
    items: &[T],
    stop: &StopIndex,
    obs: &Obs,
    pool: &'static str,
    f: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_scan_with(threads, items, stop, obs, pool, || (), |(), i, t| f(i, t))
}

/// [`parallel_scan`] with **worker-local state**: `init()` runs once per
/// worker (once total on the sequential path) and the resulting value is
/// threaded mutably through every item that worker processes. This is how
/// the engine amortizes expensive per-worker setup — one interpreter
/// `Machine` restored from the golden snapshot serves all of a worker's
/// replays, each rewound by journal rollback instead of rebuilt.
///
/// Determinism caveat for callers: *which* items share a worker's state
/// depends on scheduling, so `f`'s **result for item `i` must not depend
/// on the state's history** — only on `i`, `items[i]`, and state that `f`
/// itself re-establishes (e.g. a machine rewound to the snapshot point
/// before use).
///
/// # Panics
///
/// Propagates a panic from any worker.
#[allow(clippy::many_single_char_names)]
pub fn parallel_scan_with<S, T, R, I, F>(
    threads: usize,
    items: &[T],
    stop: &StopIndex,
    obs: &Obs,
    pool: &'static str,
    init: I,
    f: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        let mut state = init();
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, item) in items.iter().enumerate() {
            if i > stop.current() {
                break;
            }
            slots[i] = Some(f(&mut state, i, item));
        }
        return slots;
    }
    let next = AtomicUsize::new(0);
    let (next, init, f) = (&next, &init, &f);
    let buckets: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut stats = WorkerStats::begin(obs);
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        // `stop.current()` only decreases and claims only
                        // increase, so once a claim is past the stop every
                        // later claim is too: breaking is safe, and an
                        // index below the final stop is never skipped.
                        if i >= items.len() {
                            break;
                        }
                        let cur = stop.current();
                        if i > cur {
                            if obs.has_trace() {
                                obs.trace_event(
                                    "stop_observed",
                                    &[
                                        ("pool", TraceVal::Str(pool)),
                                        ("worker", TraceVal::U64(w as u64)),
                                        ("claim", TraceVal::U64(i as u64)),
                                        ("stop", TraceVal::U64(cur as u64)),
                                    ],
                                );
                            }
                            break;
                        }
                        let t = stats.item_start();
                        local.push((i, f(&mut state, i, &items[i])));
                        stats.item_end(t);
                    }
                    stats.finish(obs, pool, w);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
}

/// Splits a worker budget between the loop level and the permutation
/// level: `(outer, inner)` with `outer * inner <= threads` (as close to
/// equality as integer division allows). `outer` is capped by the number
/// of loops so no worker budget is stranded on an empty outer slot.
#[must_use]
pub fn split_threads(threads: usize, outer_items: usize) -> (usize, usize) {
    let outer = threads.clamp(1, outer_items.max(1));
    let inner = (threads / outer).max(1);
    (outer, inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
        assert_eq!(effective_threads(1), 1);
    }

    #[test]
    fn map_preserves_order_at_any_width() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 7, 64] {
            let out = parallel_map(threads, &items, &Obs::disabled(), "test", |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &empty, &Obs::disabled(), "test", |_, &x| x).is_empty());
        assert_eq!(
            parallel_map(8, &[5u32], &Obs::disabled(), "test", |_, &x| x + 1),
            vec![6]
        );
    }

    #[test]
    fn scan_fills_every_slot_up_to_the_final_stop() {
        // Terminal at index 23: everything at or below must be Some.
        let items: Vec<usize> = (0..200).collect();
        for threads in [1, 2, 8] {
            let stop = StopIndex::new();
            let slots = parallel_scan(threads, &items, &stop, &Obs::disabled(), "test", |i, &x| {
                if x == 23 {
                    stop.stop_at(i);
                }
                x
            });
            assert_eq!(stop.current(), 23, "threads={threads}");
            for (i, s) in slots.iter().enumerate().take(24) {
                assert_eq!(s, &Some(i), "threads={threads} slot {i}");
            }
        }
    }

    #[test]
    fn scan_keeps_the_minimum_terminal() {
        // Terminals at 10 and 40 — the fold must see 10 whichever worker
        // ran first.
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4] {
            let stop = StopIndex::new();
            parallel_scan(threads, &items, &stop, &Obs::disabled(), "test", |i, &x| {
                if x == 10 || x == 40 {
                    stop.stop_at(i);
                }
            });
            assert_eq!(stop.current(), 10, "threads={threads}");
        }
    }

    #[test]
    fn scan_without_terminal_processes_everything() {
        let items: Vec<u64> = (0..50).collect();
        let stop = StopIndex::new();
        let slots = parallel_scan(4, &items, &stop, &Obs::disabled(), "test", |_, &x| x + 1);
        assert_eq!(stop.current(), usize::MAX);
        assert!(slots.iter().all(Option::is_some));
    }

    #[test]
    fn sequential_scan_stops_after_terminal() {
        // With one worker nothing past the terminal index may run.
        let ran_past = AtomicBool::new(false);
        let items: Vec<usize> = (0..100).collect();
        let stop = StopIndex::new();
        parallel_scan(1, &items, &stop, &Obs::disabled(), "test", |i, _| {
            if i == 5 {
                stop.stop_at(i);
            }
            if i > 5 {
                ran_past.store(true, Ordering::SeqCst);
            }
        });
        assert!(!ran_past.load(Ordering::SeqCst));
    }

    #[test]
    fn stateful_scan_inits_once_per_worker_and_reuses_state() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 8] {
            let inits = AtomicUsize::new(0);
            let stop = StopIndex::new();
            let slots = parallel_scan_with(
                threads,
                &items,
                &stop,
                &Obs::disabled(),
                "test",
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    0usize // items this worker has processed so far
                },
                |seen, i, &x| {
                    *seen += 1;
                    (i, x * 2, *seen)
                },
            );
            // Workers are capped by item count, so at most `threads`
            // states were built (exactly one sequentially).
            let built = inits.load(Ordering::SeqCst);
            assert!((1..=threads).contains(&built), "threads={threads}");
            // Results are per-item correct regardless of which worker's
            // state they rode on, and state genuinely accumulated: the
            // per-worker counters across all items sum to 1+2+..k per
            // worker, so their max is at least ceil(items/workers).
            let mut max_seen = 0;
            for (i, s) in slots.iter().enumerate() {
                let (si, sx, seen) = s.expect("no terminal: all slots filled");
                assert_eq!((si, sx), (i, i * 2));
                max_seen = max_seen.max(seen);
            }
            assert!(max_seen >= items.len().div_ceil(built));
        }
    }

    #[test]
    fn cancel_token_is_shared_by_clones_and_compares_by_identity() {
        let a = CancelToken::new();
        let b = a.clone();
        let c = CancelToken::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled(), "clones observe the same flag");
        assert!(!c.is_cancelled(), "independent tokens are independent");
        a.cancel();
        assert!(a.is_cancelled(), "cancel is idempotent");
    }

    #[test]
    fn split_threads_never_oversubscribes() {
        for threads in 1..=16 {
            for items in 0..=8 {
                let (outer, inner) = split_threads(threads, items);
                assert!(outer >= 1 && inner >= 1);
                assert!(outer * inner <= threads.max(1), "{threads} over {items}");
                assert!(outer <= items.max(1));
            }
        }
        assert_eq!(split_threads(8, 2), (2, 4));
        assert_eq!(split_threads(8, 100), (8, 1));
        assert_eq!(split_threads(1, 4), (1, 1));
    }
}
