//! Permutation schedule generation (paper §IV-B1/2).
//!
//! The original order is always executed first (it *is* the golden run);
//! the schedules produced here are the additional orders tested: the
//! reverse, a configurable number of seeded random shuffles, or — for the
//! §V-D precision study — every permutation of small trip counts.

use crate::config::PermutationSet;
use dca_rng::{mix64, Rng};
use std::collections::HashSet;

/// Derives the shuffle seed for one `(function, loop, invocation)` test
/// from the engine's base seed.
///
/// The components are combined with the splitmix64 finalizer rather than
/// added: a plain `base + func + loop + invocation` sum collides for e.g.
/// `(loop 1, invocation 0)` vs `(loop 0, invocation 1)`, giving different
/// loops *correlated* shuffle schedules and quietly shrinking the set of
/// distinct permutations a module-wide analysis exercises.
#[must_use]
pub fn derive_seed(base: u64, func: u32, loop_id: u32, invocation: u32) -> u64 {
    let mut h = mix64(base ^ 0xD6E8_FEB8_6659_FD93);
    h = mix64(h ^ u64::from(func));
    h = mix64(h ^ u64::from(loop_id));
    h = mix64(h ^ u64::from(invocation));
    h
}

/// Generates the iteration orders to test for a loop with `trip`
/// iterations. The identity permutation is never included (the golden run
/// covers it); duplicates are removed.
pub fn schedules(set: &PermutationSet, trip: usize, seed: u64) -> Vec<Vec<usize>> {
    let identity: Vec<usize> = (0..trip).collect();
    let mut out: Vec<Vec<usize>> = Vec::new();
    // First-occurrence order with O(1) membership: the naive
    // `out.contains(&p)` scan is O(k²·trip) once `shuffles` grows large.
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    let mut push = |p: Vec<usize>, out: &mut Vec<Vec<usize>>| {
        if p != identity && seen.insert(p.clone()) {
            out.push(p);
        }
    };
    match set {
        PermutationSet::ReverseOnly => {
            push((0..trip).rev().collect(), &mut out);
        }
        PermutationSet::Presets { shuffles } => {
            push((0..trip).rev().collect(), &mut out);
            let mut rng = Rng::seed_from_u64(seed);
            for _ in 0..*shuffles {
                let mut p = identity.clone();
                rng.shuffle(&mut p);
                push(p, &mut out);
            }
        }
        PermutationSet::Shuffles { shuffles } => {
            let mut rng = Rng::seed_from_u64(seed);
            for _ in 0..*shuffles {
                let mut p = identity.clone();
                rng.shuffle(&mut p);
                push(p, &mut out);
            }
        }
        PermutationSet::Exhaustive {
            max_trip,
            fallback_shuffles,
        } => {
            if trip <= *max_trip {
                // Routed through the same dedup as every other arm:
                // Heap's algorithm happens to visit each permutation
                // once, but the "duplicates are removed" contract must
                // not depend on that implementation detail.
                let mut p = identity.clone();
                heaps(&mut p, trip, &mut |perm| {
                    push(perm.to_vec(), &mut out);
                });
            } else {
                return schedules(
                    &PermutationSet::Presets {
                        shuffles: *fallback_shuffles,
                    },
                    trip,
                    seed,
                );
            }
        }
    }
    out
}

/// Heap's algorithm: visits every permutation of `p[..n]`.
fn heaps(p: &mut [usize], n: usize, visit: &mut impl FnMut(&[usize])) {
    if n <= 1 {
        visit(p);
        return;
    }
    for i in 0..n - 1 {
        heaps(p, n - 1, visit);
        if n.is_multiple_of(2) {
            p.swap(i, n - 1);
        } else {
            p.swap(0, n - 1);
        }
    }
    heaps(p, n - 1, visit);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(p: &[usize]) -> bool {
        let mut seen = vec![false; p.len()];
        for &x in p {
            if x >= p.len() || seen[x] {
                return false;
            }
            seen[x] = true;
        }
        true
    }

    #[test]
    fn presets_contain_reverse_and_shuffles() {
        let s = schedules(&PermutationSet::Presets { shuffles: 3 }, 10, 42);
        assert!(!s.is_empty());
        assert_eq!(s[0], (0..10).rev().collect::<Vec<_>>());
        for p in &s {
            assert!(is_permutation(p));
            assert_ne!(p, &(0..10).collect::<Vec<_>>(), "identity excluded");
        }
    }

    #[test]
    fn shuffles_only_excludes_reverse_and_matches_preset_rng() {
        let s = schedules(&PermutationSet::Shuffles { shuffles: 3 }, 10, 42);
        for p in &s {
            assert!(is_permutation(p));
            assert_ne!(p, &(0..10).collect::<Vec<_>>(), "identity excluded");
        }
        // Same seed, same RNG stream as the Presets shuffles — only the
        // leading reverse differs.
        let presets = schedules(&PermutationSet::Presets { shuffles: 3 }, 10, 42);
        assert_eq!(s, presets[1..].to_vec());
        // Zero shuffles is a genuinely empty schedule set.
        assert!(schedules(&PermutationSet::Shuffles { shuffles: 0 }, 10, 42).is_empty());
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let a = schedules(&PermutationSet::Presets { shuffles: 3 }, 16, 7);
        let b = schedules(&PermutationSet::Presets { shuffles: 3 }, 16, 7);
        let c = schedules(&PermutationSet::Presets { shuffles: 3 }, 16, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exhaustive_enumerates_all_but_identity() {
        let s = schedules(
            &PermutationSet::Exhaustive {
                max_trip: 5,
                fallback_shuffles: 2,
            },
            4,
            0,
        );
        assert_eq!(s.len(), 24 - 1);
        let mut dedup = s.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len(), "no duplicates");
    }

    #[test]
    fn exhaustive_falls_back_beyond_limit() {
        let s = schedules(
            &PermutationSet::Exhaustive {
                max_trip: 5,
                fallback_shuffles: 2,
            },
            100,
            0,
        );
        assert!(s.len() <= 3);
        for p in &s {
            assert!(is_permutation(p));
        }
    }

    #[test]
    fn derived_seeds_are_distinct_across_components() {
        // The additive scheme this replaces collided exactly here:
        // (loop 1, invocation 0) vs (loop 0, invocation 1).
        assert_ne!(derive_seed(42, 0, 1, 0), derive_seed(42, 0, 0, 1));
        assert_ne!(derive_seed(42, 1, 0, 0), derive_seed(42, 0, 1, 0));
        assert_ne!(derive_seed(42, 1, 0, 0), derive_seed(42, 0, 0, 1));
        // No collisions anywhere on a dense grid, for several base seeds.
        for base in [0u64, 1, 42, u64::MAX] {
            let mut seen = std::collections::HashSet::new();
            for func in 0..8u32 {
                for loop_id in 0..8u32 {
                    for inv in 0..8u32 {
                        assert!(
                            seen.insert(derive_seed(base, func, loop_id, inv)),
                            "seed collision at base={base} f={func} l={loop_id} i={inv}"
                        );
                    }
                }
            }
        }
        // And the base seed itself matters.
        assert_ne!(derive_seed(1, 2, 3, 4), derive_seed(2, 2, 3, 4));
    }

    #[test]
    fn large_shuffle_counts_dedup_quickly_and_correctly() {
        // Trip 3 has only 5 non-identity permutations, so 5000 shuffles
        // are almost all duplicates: with the old O(k²·trip) `contains`
        // scan this regression test is where it would crawl; with hashed
        // dedup it is instant and the result is exactly the distinct set.
        let s = schedules(&PermutationSet::Presets { shuffles: 5000 }, 3, 42);
        assert!(s.len() <= 5);
        let mut sorted = s.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), s.len(), "no duplicates survive");
        assert_eq!(s[0], vec![2, 1, 0], "reverse still leads");
        // Dedup preserves first-occurrence order: a small shuffle count
        // must be a prefix of a larger one under the same seed.
        let small = schedules(&PermutationSet::Presets { shuffles: 40 }, 3, 42);
        assert_eq!(&s[..small.len()], &small[..]);
        // A large trip count keeps every shuffle distinct (no collisions
        // in practice) and the hashed path preserves them all.
        let big = schedules(&PermutationSet::Shuffles { shuffles: 200 }, 32, 7);
        assert_eq!(big.len(), 200);
        for p in &big {
            assert!(is_permutation(p));
        }
    }

    #[test]
    fn tiny_trips_degenerate_gracefully() {
        assert!(schedules(&PermutationSet::default(), 0, 0).is_empty());
        assert!(schedules(&PermutationSet::default(), 1, 0).is_empty());
        let two = schedules(&PermutationSet::default(), 2, 0);
        assert_eq!(two, vec![vec![1, 0]]);
    }
}
