//! Write-ahead run journal: crash-safe resume for `engine::analyze`
//! (DESIGN.md §16).
//!
//! The verdict cache (DESIGN.md §15) makes *completed* runs cheap to
//! repeat; it says nothing about a run that dies halfway. The journal
//! closes that gap: before a loop is verified the engine appends a
//! `start` record, and as soon as its verdict folds out it appends a
//! `verdict` record — one line each, flushed immediately, so the file on
//! disk is never more than one loop behind the computation. A re-run
//! against the same `DCA_JOURNAL` replays those records and serves the
//! already-decided loops without recording or replaying anything,
//! producing a final report bit-identical to an uninterrupted run.
//!
//! # Relationship to the verdict cache
//!
//! The journal is keyed by the *same* 128-bit per-loop keys as the cache
//! ([`crate::cache::KeyBuilder`]), so one journal file serves any number
//! of programs and workloads without rotation, and a key collision
//! across config changes is as impossible here as there. The two differ
//! in coverage and lifetime:
//!
//! * the cache persists only verdicts that are pure functions of the key
//!   and lives forever; the journal additionally carries
//!   [`SkipReason::EngineFault`] quarantine records — a loop that
//!   exhausted its fault retries is *quarantined*: subsequent runs skip
//!   it immediately instead of re-tripping the same contained panic;
//! * the journal keeps recording under verdict-perturbing fault
//!   injection (that is how quarantine records land), while the cache
//!   bypasses such runs wholesale.
//!
//! [`SkipReason::Cancelled`] and [`SkipReason::Deadline`] verdicts are
//! never journaled — a cancelled loop must re-run on resume, and a
//! deadline skip is a property of the host's speed, not of the loop.
//!
//! # Integrity
//!
//! The file is line-oriented JSON: a header line naming [`SCHEMA`], then
//! one self-contained record per line, each carrying a fingerprint
//! checksum over its own fields. A process killed mid-append leaves at
//! worst one torn final line; on open, torn or garbled lines are dropped
//! (counted, never a panic or a wrong verdict) and the file is rewritten
//! compacted through a sibling temp file and rename. A header from a
//! different schema orphans every record: the journal rotates to a fresh
//! file. I/O failure at any point degrades to a bypassed journal that
//! serves nothing and writes nothing.

use crate::cache::{decode_verdict, encode_verdict, CachedVerdict};
use crate::report::{LoopVerdict, SkipReason};
use dca_obs::{parse_json, Json};
use dca_rng::Fingerprint;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Schema identifier of the on-disk journal format. A file with a
/// different schema is rotated (its records orphaned), never
/// misinterpreted.
pub const SCHEMA: &str = "dca-journal/1";

/// One decided loop recovered from (or written to) the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The loop's `func:loop` reference, for display on resume.
    pub lref: String,
    /// The verdict and its deterministic counters.
    pub cached: CachedVerdict,
    /// True when this entry is a retry-exhausted quarantine record:
    /// subsequent runs skip the loop immediately.
    pub quarantined: bool,
}

/// Journal statistics for one analysis run, surfaced as
/// [`crate::DcaReport::journal`] and printed by the CLI footer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunJournalStats {
    /// The journal file consulted (or that would have been).
    pub path: PathBuf,
    /// True when the journal was unusable this run (I/O failure).
    pub bypassed: bool,
    /// Loops served from the journal instead of being re-verified.
    pub resumed: u64,
    /// Verdict records appended this run.
    pub recorded: u64,
    /// Quarantined loops known to the journal (loaded plus added).
    pub quarantined: u64,
    /// Torn or garbled lines dropped while loading.
    pub dropped: u64,
    /// Append failures absorbed after open.
    pub faults: u64,
}

/// An open run journal: the decided loops loaded from disk plus an
/// append handle for this run's records. Lookups are read-only and
/// thread-safe by `&self`; appends serialize on an internal mutex and
/// are line-atomic, so records written from the parallel verification
/// workers interleave without tearing.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    bypassed: bool,
    entries: BTreeMap<u128, JournalEntry>,
    dropped: u64,
    quarantined_loaded: u64,
    writer: Option<Mutex<File>>,
    /// Set on the first append failure: later appends are skipped so one
    /// full disk does not produce a fault per loop.
    dead: AtomicBool,
    recorded: AtomicU64,
    quarantined_added: AtomicU64,
    faults: AtomicU64,
}

impl RunJournal {
    /// Opens (or creates) the journal at `path`, replaying its records.
    /// Damage degrades, never errors: torn lines are dropped and the
    /// file rewritten compacted; a wrong-schema header rotates the file;
    /// I/O failure yields a bypassed journal. Never panics.
    #[must_use]
    pub fn open(path: &Path) -> Self {
        let mut j = RunJournal {
            path: path.to_path_buf(),
            bypassed: false,
            entries: BTreeMap::new(),
            dropped: 0,
            quarantined_loaded: 0,
            writer: None,
            dead: AtomicBool::new(false),
            recorded: AtomicU64::new(0),
            quarantined_added: AtomicU64::new(0),
            faults: AtomicU64::new(0),
        };
        if path.exists() {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let (entries, dropped) = parse_file(&text);
                    j.entries = entries;
                    j.dropped = dropped;
                }
                Err(_) => {
                    j.bypassed = true;
                    j.faults = AtomicU64::new(1);
                    return j;
                }
            }
        }
        j.quarantined_loaded = j.entries.values().filter(|e| e.quarantined).count() as u64;
        // Rewrite compacted (header plus one line per surviving verdict)
        // through a temp file and rename, then reopen for appending.
        // Stale `start` lines from an interrupted run are dropped here:
        // their loops re-run and re-announce themselves.
        let mut doc = header_line();
        for (key, e) in &j.entries {
            if let Some(line) = encode_verdict_line(*key, e) {
                doc.push_str(&line);
            }
        }
        let tmp = path.with_extension("tmp");
        let rewritten = std::fs::write(&tmp, &doc).and_then(|()| std::fs::rename(&tmp, path));
        if rewritten.is_err() {
            j.bypassed = true;
            j.faults.fetch_add(1, Ordering::SeqCst);
            return j;
        }
        match OpenOptions::new().append(true).open(path) {
            Ok(f) => j.writer = Some(Mutex::new(f)),
            Err(_) => {
                j.bypassed = true;
                j.faults.fetch_add(1, Ordering::SeqCst);
            }
        }
        j
    }

    /// The journal file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True when the journal is unusable this run.
    #[must_use]
    pub fn is_bypassed(&self) -> bool {
        self.bypassed
    }

    /// Number of decided loops loaded from disk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no decided loops were loaded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consults the journal for one loop key. `Some` means the loop was
    /// decided by an earlier (interrupted) run and its verdict can be
    /// served without re-verification.
    #[must_use]
    pub fn decide(&self, key: u128) -> Option<JournalEntry> {
        if self.bypassed {
            return None;
        }
        self.entries.get(&key).cloned()
    }

    /// Appends a write-ahead `start` record announcing that the loop
    /// keyed by `key` is about to be verified. Purely informational on
    /// resume (an unmatched start means the kill landed mid-loop and the
    /// loop simply re-runs), but it timestamps progress in the file for
    /// operators tailing it.
    pub fn record_start(&self, key: u128, lref: &str) {
        self.append(&encode_start_line(key, lref));
    }

    /// Appends a `verdict` record for the loop keyed by `key`. Returns
    /// whether the verdict was journalable: [`SkipReason::Cancelled`]
    /// and [`SkipReason::Deadline`] are refused (they must re-run on
    /// resume), everything else — including the quarantine-carrying
    /// [`SkipReason::EngineFault`] — is recorded.
    pub fn record_verdict(
        &self,
        key: u128,
        lref: &str,
        v: &CachedVerdict,
        quarantined: bool,
    ) -> bool {
        let e = JournalEntry {
            lref: lref.to_string(),
            cached: v.clone(),
            quarantined,
        };
        let Some(line) = encode_verdict_line(key, &e) else {
            return false;
        };
        if self.bypassed || self.dead.load(Ordering::SeqCst) {
            return false;
        }
        self.append(&line);
        self.recorded.fetch_add(1, Ordering::SeqCst);
        if quarantined {
            self.quarantined_added.fetch_add(1, Ordering::SeqCst);
        }
        true
    }

    /// This run's statistics. `resumed` is filled by the engine from the
    /// folded result vector (the journal cannot know which of its
    /// entries were actually consulted).
    #[must_use]
    pub fn stats(&self) -> RunJournalStats {
        RunJournalStats {
            path: self.path.clone(),
            bypassed: self.bypassed,
            resumed: 0,
            recorded: self.recorded.load(Ordering::SeqCst),
            quarantined: self.quarantined_loaded + self.quarantined_added.load(Ordering::SeqCst),
            dropped: self.dropped,
            faults: self.faults.load(Ordering::SeqCst),
        }
    }

    /// Appends one line (terminated by the caller) and flushes it, so a
    /// kill immediately after tears at most the line being written.
    fn append(&self, line: &str) {
        if self.bypassed || self.dead.load(Ordering::SeqCst) {
            return;
        }
        let Some(w) = &self.writer else { return };
        let mut f = w.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let res = f.write_all(line.as_bytes()).and_then(|()| f.flush());
        if res.is_err() {
            self.faults.fetch_add(1, Ordering::SeqCst);
            self.dead.store(true, Ordering::SeqCst);
        }
    }
}

fn header_line() -> String {
    let mut m = BTreeMap::new();
    m.insert("schema".to_string(), Json::Str(SCHEMA.to_string()));
    m.insert(
        "tool".to_string(),
        Json::Str(format!("dca {}", env!("CARGO_PKG_VERSION"))),
    );
    let mut s = Json::Obj(m).to_string();
    s.push('\n');
    s
}

/// Parses every record line of a journal document. Returns the decided
/// loops plus the count of dropped (torn, garbled or checksum-rejected)
/// lines. A missing or wrong-schema header orphans everything: all
/// record lines count as dropped and the caller rotates the file.
fn parse_file(text: &str) -> (BTreeMap<u128, JournalEntry>, u64) {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_ok = lines.next().is_some_and(|h| {
        parse_json(h).is_ok_and(|j| {
            j.as_object()
                .and_then(|m| m.get("schema"))
                .and_then(Json::as_str)
                == Some(SCHEMA)
        })
    });
    let mut out = BTreeMap::new();
    let mut dropped = 0u64;
    for line in lines {
        if !header_ok {
            dropped += 1;
            continue;
        }
        match decode_line(line) {
            Some(Record::Verdict(key, e)) => {
                out.insert(key, e);
            }
            Some(Record::Start) => {}
            None => dropped += 1,
        }
    }
    (out, dropped)
}

enum Record {
    Start,
    Verdict(u128, JournalEntry),
}

fn decode_line(line: &str) -> Option<Record> {
    let j = parse_json(line).ok()?;
    let m = j.as_object()?;
    let key = u128::from_str_radix(m.get("key")?.as_str()?, 16).ok()?;
    let check = u128::from_str_radix(m.get("check")?.as_str()?, 16).ok()?;
    let lref = m.get("lref")?.as_str()?.to_string();
    match m.get("rec")?.as_str()? {
        "start" => (start_check(key, &lref) == check).then_some(Record::Start),
        "verdict" => {
            let tag = match m.get("tag")? {
                Json::Null => None,
                Json::Str(s) => Some(s.clone()),
                _ => return None,
            };
            let verdict = decode_journal_verdict(m.get("verdict")?)?;
            let e = JournalEntry {
                lref,
                cached: CachedVerdict {
                    tag,
                    verdict,
                    trips: m.get("trips")?.as_u64()? as usize,
                    permutations_tested: m.get("perms")?.as_u64()? as usize,
                    replay_steps: m.get("replay_steps")?.as_u64()?,
                },
                quarantined: m.get("quarantined")?.as_bool()?,
            };
            // Checksum over the canonical re-encoding, as the cache does.
            let canon = encode_journal_verdict(&e.cached.verdict)?.to_string();
            (verdict_check(key, &e, &canon) == check).then_some(Record::Verdict(key, e))
        }
        _ => None,
    }
}

fn encode_start_line(key: u128, lref: &str) -> String {
    let mut m = BTreeMap::new();
    m.insert("rec".to_string(), Json::Str("start".to_string()));
    m.insert("key".to_string(), Json::Str(format!("{key:032x}")));
    m.insert("lref".to_string(), Json::Str(lref.to_string()));
    m.insert(
        "check".to_string(),
        Json::Str(format!("{:032x}", start_check(key, lref))),
    );
    let mut s = Json::Obj(m).to_string();
    s.push('\n');
    s
}

/// `None` when the verdict is not journalable (cancelled / deadline).
fn encode_verdict_line(key: u128, e: &JournalEntry) -> Option<String> {
    let verdict = encode_journal_verdict(&e.cached.verdict)?;
    let verdict_text = verdict.to_string();
    let mut m = BTreeMap::new();
    m.insert("rec".to_string(), Json::Str("verdict".to_string()));
    m.insert("key".to_string(), Json::Str(format!("{key:032x}")));
    m.insert("lref".to_string(), Json::Str(e.lref.clone()));
    m.insert(
        "tag".to_string(),
        match &e.cached.tag {
            Some(t) => Json::Str(t.clone()),
            None => Json::Null,
        },
    );
    m.insert("verdict".to_string(), verdict);
    m.insert("trips".to_string(), Json::Num(e.cached.trips as f64));
    m.insert(
        "perms".to_string(),
        Json::Num(e.cached.permutations_tested as f64),
    );
    m.insert(
        "replay_steps".to_string(),
        Json::Num(e.cached.replay_steps as f64),
    );
    m.insert("quarantined".to_string(), Json::Bool(e.quarantined));
    m.insert(
        "check".to_string(),
        Json::Str(format!("{:032x}", verdict_check(key, e, &verdict_text))),
    );
    let mut s = Json::Obj(m).to_string();
    s.push('\n');
    Some(s)
}

fn start_check(key: u128, lref: &str) -> u128 {
    let mut fp = Fingerprint::new();
    fp.push_str(SCHEMA);
    fp.push_str("start");
    fp.push(key as u64);
    fp.push((key >> 64) as u64);
    fp.push_str(lref);
    fp.digest()
}

fn verdict_check(key: u128, e: &JournalEntry, verdict_json: &str) -> u128 {
    let mut fp = Fingerprint::new();
    fp.push_str(SCHEMA);
    fp.push_str("verdict");
    fp.push(key as u64);
    fp.push((key >> 64) as u64);
    fp.push_str(&e.lref);
    match &e.cached.tag {
        Some(t) => {
            fp.push(1);
            fp.push_str(t);
        }
        None => fp.push(0),
    }
    fp.push_str(verdict_json);
    fp.push(e.cached.trips as u64);
    fp.push(e.cached.permutations_tested as u64);
    fp.push(e.cached.replay_steps);
    fp.push(u64::from(e.quarantined));
    fp.digest()
}

// The journal's verdict codec is the cache's, widened by one kind:
// `engine_fault` carries a quarantine's contained-panic message, which
// the cache deliberately refuses to persist.

fn encode_journal_verdict(v: &LoopVerdict) -> Option<Json> {
    if let LoopVerdict::Skipped(SkipReason::EngineFault(msg)) = v {
        let mut m = BTreeMap::new();
        m.insert("kind".to_string(), Json::Str("engine_fault".to_string()));
        m.insert("msg".to_string(), Json::Str(msg.clone()));
        return Some(Json::Obj(m));
    }
    encode_verdict(v)
}

fn decode_journal_verdict(j: &Json) -> Option<LoopVerdict> {
    let kind = j
        .as_object()
        .and_then(|m| m.get("kind"))
        .and_then(Json::as_str);
    if kind == Some("engine_fault") {
        let msg = j.as_object()?.get("msg")?.as_str()?.to_string();
        return Some(LoopVerdict::Skipped(SkipReason::EngineFault(msg)));
    }
    decode_verdict(j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Violation;

    fn tmpdir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dca-journal-unit-{label}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn cached(verdict: LoopVerdict) -> CachedVerdict {
        CachedVerdict {
            tag: Some("t".into()),
            verdict,
            trips: 4,
            permutations_tested: 3,
            replay_steps: 123,
        }
    }

    #[test]
    fn verdicts_round_trip_across_reopen() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("run.journal");
        let j = RunJournal::open(&path);
        assert!(!j.is_bypassed());
        assert!(j.is_empty());
        j.record_start(1, "main:l0");
        assert!(j.record_verdict(1, "main:l0", &cached(LoopVerdict::Commutative), false));
        j.record_start(2, "main:l1");
        assert!(j.record_verdict(
            2,
            "main:l1",
            &cached(LoopVerdict::NonCommutative(Violation::ReplayDiverged)),
            false,
        ));
        // An in-flight loop: start without a verdict.
        j.record_start(3, "main:l2");
        assert_eq!(j.stats().recorded, 2);
        let back = RunJournal::open(&path);
        assert_eq!(back.len(), 2);
        assert_eq!(back.stats().dropped, 0);
        let e = back.decide(1).expect("decided");
        assert_eq!(e.lref, "main:l0");
        assert_eq!(e.cached, cached(LoopVerdict::Commutative));
        assert!(!e.quarantined);
        assert!(back.decide(3).is_none(), "start records decide nothing");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_records_survive_and_flag() {
        let dir = tmpdir("quarantine");
        let path = dir.join("run.journal");
        let j = RunJournal::open(&path);
        let fault = cached(LoopVerdict::Skipped(SkipReason::EngineFault(
            "injected panic".into(),
        )));
        assert!(j.record_verdict(7, "f:l0", &fault, true));
        assert_eq!(j.stats().quarantined, 1);
        let back = RunJournal::open(&path);
        let e = back.decide(7).expect("decided");
        assert!(e.quarantined);
        assert_eq!(e.cached.verdict, fault.verdict);
        assert_eq!(back.stats().quarantined, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancelled_and_deadline_verdicts_are_refused() {
        let dir = tmpdir("refused");
        let path = dir.join("run.journal");
        let j = RunJournal::open(&path);
        for v in [
            LoopVerdict::Skipped(SkipReason::Cancelled),
            LoopVerdict::Skipped(SkipReason::Deadline),
        ] {
            assert!(
                !j.record_verdict(9, "f:l0", &cached(v.clone()), false),
                "{v:?}"
            );
        }
        assert_eq!(j.stats().recorded, 0);
        assert!(RunJournal::open(&path).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_lines_are_dropped_and_compacted_away() {
        let dir = tmpdir("torn");
        let path = dir.join("run.journal");
        let j = RunJournal::open(&path);
        assert!(j.record_verdict(1, "main:l0", &cached(LoopVerdict::Commutative), false));
        drop(j);
        // Simulate a kill mid-append: a torn half-line at the tail.
        let text = std::fs::read_to_string(&path).expect("read");
        let torn = format!("{text}{{\"rec\": \"verdict\", \"key\": \"00");
        std::fs::write(&path, &torn).expect("write");
        let back = RunJournal::open(&path);
        assert!(!back.is_bypassed());
        assert_eq!(back.stats().dropped, 1);
        assert_eq!(back.decide(1).expect("survives").lref, "main:l0");
        // The compacting rewrite removed the torn line from disk.
        let compacted = std::fs::read_to_string(&path).expect("read");
        assert!(!compacted.contains("\"key\": \"00\n"));
        assert_eq!(RunJournal::open(&path).stats().dropped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_lines_fail_their_checksum() {
        let dir = tmpdir("tamper");
        let path = dir.join("run.journal");
        let j = RunJournal::open(&path);
        assert!(j.record_verdict(1, "main:l0", &cached(LoopVerdict::Commutative), false));
        drop(j);
        let text = std::fs::read_to_string(&path).expect("read");
        let tampered = text.replace("\"commutative\"", "\"not_exercised\"");
        assert_ne!(text, tampered);
        std::fs::write(&path, &tampered).expect("write");
        let back = RunJournal::open(&path);
        assert_eq!(back.stats().dropped, 1);
        assert!(back.decide(1).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_schema_header_rotates_the_file() {
        let dir = tmpdir("rotate");
        let path = dir.join("run.journal");
        std::fs::write(
            &path,
            "{\"schema\": \"dca-journal/999\"}\n{\"rec\": \"verdict\"}\n",
        )
        .expect("write");
        let j = RunJournal::open(&path);
        assert!(!j.is_bypassed());
        assert!(j.is_empty());
        assert_eq!(j.stats().dropped, 1, "orphaned records count as dropped");
        assert!(j.record_verdict(1, "main:l0", &cached(LoopVerdict::Commutative), false));
        drop(j);
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("{\"schema\": \"dca-journal/1\""));
        assert!(!text.contains("dca-journal/999"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_path_degrades_to_bypass() {
        let dir = tmpdir("bypass");
        // A directory cannot be read as a journal file.
        let j = RunJournal::open(&dir);
        assert!(j.is_bypassed());
        assert_eq!(j.stats().faults, 1);
        assert!(j.decide(1).is_none());
        assert!(!j.record_verdict(1, "main:l0", &cached(LoopVerdict::Commutative), false));
        assert_eq!(j.stats().recorded, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
