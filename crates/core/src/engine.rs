//! The DCA engine: orchestrates the static stage, golden recording,
//! permuted replay and live-out verification for every loop of a module
//! (paper Fig. 3).

use crate::cache::{CacheDecision, CacheStats, CachedVerdict, KeyBuilder, VerdictCache};
use crate::config::{DcaConfig, DigestMode, PermutationSet, VerifyScope};
use crate::fault::{catch_contained, FaultKind, FaultPlan, STALL_DURATION};
use crate::journal::{RunJournal, RunJournalStats};
use crate::outcome::{hash_live_state, DigestScratch, StateDigest};
use crate::parallel::{
    effective_threads, parallel_map, parallel_scan_with, split_threads, CancelToken, StopIndex,
};
use crate::perm::{derive_seed, schedules};
use crate::record::{record_golden_governed, GoldenRecord, RecordError};
use crate::replay::{run_replay_governed, ReplayController, ReplayEnd, ReplayGovernor};
use crate::report::{DcaReport, LoopResult, LoopVerdict, SkipReason, Violation};
use dca_analysis::{exclusion, EffectMap, IteratorSlice, Liveness};
use dca_interp::{JournalStats, Limits, Machine, OpCounts, Trap, Value};
use dca_ir::{FuncId, FuncView, Loop, LoopRef, Module, Ty, VarId};
use dca_obs::{Obs, TraceVal};
use std::fmt;
use std::time::{Duration, Instant};

/// Builds the observer for one engine run: the `DCA_TRACE=<path>`
/// environment variable wins (metrics + trace to that path), then
/// [`crate::config::ObsOptions::trace`], then
/// [`crate::config::ObsOptions::metrics`]; otherwise disabled. An
/// unwritable trace path degrades to metrics-only rather than failing
/// the analysis.
fn make_obs(config: &DcaConfig) -> Obs {
    let env_trace = std::env::var_os("DCA_TRACE").map(std::path::PathBuf::from);
    if let Some(path) = env_trace.as_deref().or(config.obs.trace.as_deref()) {
        return Obs::with_trace(path).unwrap_or_else(|_| Obs::enabled());
    }
    if config.obs.metrics {
        Obs::enabled()
    } else {
        Obs::disabled()
    }
}

/// The verdict-cache path in effect for one engine run: the
/// `DCA_CACHE=<path>` environment variable wins (mirroring `DCA_TRACE`),
/// then [`crate::DcaConfig::cache`]; `None` disables caching.
fn resolve_cache_path(config: &DcaConfig) -> Option<std::path::PathBuf> {
    std::env::var_os("DCA_CACHE")
        .map(std::path::PathBuf::from)
        .or_else(|| config.cache.clone())
}

/// The run-journal path in effect: the `DCA_JOURNAL=<path>` environment
/// variable wins (mirroring `DCA_CACHE`), then
/// [`crate::DcaConfig::journal`]; `None` disables the journal.
fn resolve_journal_path(config: &DcaConfig) -> Option<std::path::PathBuf> {
    std::env::var_os("DCA_JOURNAL")
        .map(std::path::PathBuf::from)
        .or_else(|| config.journal.clone())
}

/// Adds an interpreter's heap-op totals to the `interp.heap.*` counters.
fn record_machine_ops(obs: &Obs, ops: &OpCounts) {
    obs.count("interp.heap.allocs", ops.heap_allocs);
    obs.count("interp.heap.cells_allocated", ops.heap_cells_allocated);
    obs.count("interp.heap.reads", ops.heap_reads);
    obs.count("interp.heap.writes", ops.heap_writes);
}

/// How one loop's permutation verification ended.
#[derive(Debug, Clone, PartialEq)]
enum VerifyEnd {
    /// Every permutation preserved the outcome.
    Complete,
    /// Some permutation refuted commutativity.
    Violated(Violation),
    /// A replay ran out of step budget before finishing — neither a
    /// confirmation nor a refutation.
    Budget,
    /// A wall-clock deadline expired mid-replay — a resource limit like
    /// [`VerifyEnd::Budget`], never a violation.
    Deadline,
    /// A replay worker panicked; the panic was contained and carries its
    /// message. Conclusion-free like a budget limit.
    Fault(String),
    /// The run's [`CancelToken`] was tripped mid-verification — a stop
    /// request like [`VerifyEnd::Deadline`], never a violation.
    Cancelled,
    /// A replay exceeded the configured heap budget
    /// ([`DcaConfig::max_heap_cells`]) — a resource limit like
    /// [`VerifyEnd::Budget`], never a violation.
    MemBudget,
}

/// The outcome of verifying one permutation set, with the counters the
/// report carries. `tested` counts the permutations verified successfully
/// *before* the first terminal outcome (all of them on
/// [`VerifyEnd::Complete`]); `replay_steps` sums the interpreter steps of
/// the reference replay, those permutations, and the terminal one — a sum
/// that is identical for every worker-thread count.
#[derive(Debug, Clone, PartialEq)]
struct VerifySummary {
    end: VerifyEnd,
    tested: usize,
    replay_steps: u64,
}

/// One permuted replay's result, before the deterministic fold.
///
/// Besides the verdict, it carries everything the fold attributes to obs
/// — per-replay snapshot-restore, replay and verify durations, and the
/// interpreter's heap-op deltas. Recording these from the *fold* (over
/// the sequential prefix) rather than from the workers keeps counter
/// values and span counts identical at every thread count, and fixes the
/// restore-time attribution: the time a worker spends rebuilding its
/// [`Machine`] from the golden snapshot lands in a dedicated
/// `stage.restore` span instead of silently inflating (sequential) or
/// vanishing from (parallel) the replay timing.
struct PermOutcome {
    end: VerifyEnd,
    steps: u64,
    restore: Duration,
    replay: Duration,
    verify: Duration,
    ops: OpCounts,
    /// Journal-rollback deltas for this replay (`journal.*` counters).
    /// Per-slot deltas are a function of the replay alone — every replay
    /// starts from the same snapshot state — so they ride the fold as
    /// thread-count-invariantly as the heap-op deltas.
    journal: JournalStats,
    /// The fault injected into this replay, if any (fault-injection
    /// harness). Counted from the fold so `engine.faults.*` is as
    /// thread-count-invariant as everything else.
    injected: Option<FaultKind>,
    /// Digest-capture work of this replay's verify step (`verify.digest.*`
    /// counters), also recorded from the fold.
    digest: DigestStats,
}

/// Digest-capture work done by one verify step, split by tier. `cells`
/// counts canonical values absorbed — scalar roots plus reachable heap
/// cells — the same unit for both tiers, so the counter tracks state
/// size independently of which comparator ran.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct DigestStats {
    /// Fingerprint captures (tier 1).
    hashed: u64,
    /// Materialized [`StateDigest`] captures (tier 2 / diagnostics).
    structural: u64,
    /// Canonical values absorbed across both tiers.
    cells: u64,
}

impl DigestStats {
    fn plus(&self, o: &DigestStats) -> DigestStats {
        DigestStats {
            hashed: self.hashed + o.hashed,
            structural: self.structural + o.structural,
            cells: self.cells + o.cells,
        }
    }
}

/// Per-worker state for the permutation scan: one interpreter machine
/// serves every replay the worker claims, restored from the shared
/// golden snapshot once and rewound by journal rollback between replays.
struct ReplayWorker<'m> {
    machine: Machine<'m>,
    /// True iff `machine` sits exactly at the golden snapshot with no
    /// journal armed — the steady state between replays. False on first
    /// use and after a contained panic left the machine dirty.
    clean: bool,
    /// Traversal scratch (canon map + BFS order) reused across this
    /// worker's digest captures, so steady-state verification allocates
    /// nothing per replay.
    scratch: DigestScratch,
    /// Reusable buffer for the digest-root values, refilled per replay.
    roots: Vec<Value>,
}

/// The obs counter charged for one injected fault kind.
fn fault_counter(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Panic => "engine.faults.panic",
        FaultKind::Stall => "engine.faults.stall",
        FaultKind::Trap { .. } => "engine.faults.trap",
        FaultKind::AllocFail { .. } => "engine.faults.oom",
        FaultKind::Cancel => "engine.faults.cancel",
        FaultKind::KillSave { .. } => "engine.faults.kill",
    }
}

/// Obs-relevant totals folded from the sequential prefix of one
/// permutation verification, plus the reference replay.
#[derive(Default)]
struct FoldTotals {
    replays: u64,
    steps: u64,
    restore: Duration,
    replay: Duration,
    verify: Duration,
    ops: OpCounts,
    journal: JournalStats,
    digest: DigestStats,
    /// `(counter, slot)` per injected fault in the folded prefix.
    faults: Vec<(&'static str, usize)>,
}

impl FoldTotals {
    fn add(&mut self, slot: usize, o: &PermOutcome) {
        self.replays += 1;
        self.steps += o.steps;
        self.restore += o.restore;
        self.replay += o.replay;
        self.verify += o.verify;
        self.ops = self.ops.plus(&o.ops);
        self.journal = self.journal.plus(&o.journal);
        self.digest = self.digest.plus(&o.digest);
        if let Some(kind) = o.injected {
            self.faults.push((fault_counter(kind), slot));
        }
    }

    /// Attributes the folded totals to obs spans and counters.
    fn record(&self, obs: &Obs, ordinal: usize) {
        obs.record_span("stage.restore", self.restore, self.replays);
        obs.record_span("stage.replay", self.replay, self.replays);
        obs.record_span("stage.verify", self.verify, self.replays);
        obs.count("engine.replays", self.replays);
        obs.count("journal.rollbacks", self.journal.rollbacks);
        obs.count("journal.cells_undone", self.journal.cells_undone);
        obs.count("journal.objs_discarded", self.journal.objs_discarded);
        obs.count("verify.digest.hashed", self.digest.hashed);
        obs.count("verify.digest.structural", self.digest.structural);
        obs.count("verify.digest.cells", self.digest.cells);
        record_machine_ops(obs, &self.ops);
        for &(counter, slot) in &self.faults {
            obs.count(counter, 1);
            if obs.has_trace() {
                obs.trace_event(
                    "fault",
                    &[
                        ("counter", TraceVal::Str(counter)),
                        ("loop", TraceVal::U64(ordinal as u64)),
                        ("replay", TraceVal::U64(slot as u64)),
                    ],
                );
            }
        }
    }
}

/// Errors that prevent analysis from starting at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DcaError {
    /// The module has no `main` function to execute.
    NoMain,
    /// The workload supplies the wrong number of entry arguments for
    /// `main`.
    EntryArity {
        /// Parameters `main` declares.
        expected: usize,
        /// Arguments the workload supplied.
        given: usize,
    },
    /// An entry argument's value does not fit the corresponding `main`
    /// parameter's declared type.
    EntryArgType {
        /// Zero-based argument position.
        index: usize,
        /// The parameter's source name.
        param: String,
        /// The declared type, rendered.
        expected: String,
        /// The supplied value's type, rendered.
        given: String,
    },
    /// The configured permutation preset generates no permutations at all
    /// (e.g. [`PermutationSet::Shuffles`] with zero shuffles), so no loop
    /// could ever be tested — almost certainly a configuration mistake.
    EmptyPermutationSet,
}

impl fmt::Display for DcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcaError::NoMain => write!(f, "module has no `main` function"),
            DcaError::EntryArity { expected, given } => write!(
                f,
                "`main` expects {expected} argument(s), the workload supplies {given}"
            ),
            DcaError::EntryArgType {
                index,
                param,
                expected,
                given,
            } => write!(
                f,
                "entry argument {index} (`{param}`) has type {given}, expected {expected}"
            ),
            DcaError::EmptyPermutationSet => {
                write!(f, "permutation preset generates no permutations")
            }
        }
    }
}

impl std::error::Error for DcaError {}

/// Renders a [`Ty`] the way source code spells it.
fn ty_name(ty: &Ty) -> String {
    match ty {
        Ty::Int => "int".into(),
        Ty::Float => "float".into(),
        Ty::Bool => "bool".into(),
        Ty::Unit => "unit".into(),
        Ty::Ptr(inner) => format!("*{}", ty_name(inner)),
        Ty::Array(inner, n) => format!("[{}; {n}]", ty_name(inner)),
        Ty::Struct(i) => format!("struct#{i}"),
        Ty::NullPtr => "null".into(),
    }
}

/// The rendered type of a workload value.
fn value_ty_name(v: &Value) -> &'static str {
    match v {
        Value::Int(_) => "int",
        Value::Float(_) => "float",
        Value::Bool(_) => "bool",
        Value::Ptr(_) => "pointer",
        Value::Null => "null",
    }
}

/// True when a workload value can initialize a parameter of type `ty`
/// (`null` fits any pointer).
fn value_fits(v: &Value, ty: &Ty) -> bool {
    matches!(
        (v, ty),
        (Value::Int(_), Ty::Int)
            | (Value::Float(_), Ty::Float)
            | (Value::Bool(_), Ty::Bool)
            | (Value::Ptr(_), Ty::Ptr(_))
            | (Value::Null, Ty::Ptr(_))
    )
}

/// The Dynamic Commutativity Analysis engine.
///
/// # Example
///
/// ```
/// use dca_core::{Dca, DcaConfig};
///
/// let module = dca_ir::compile(
///     "fn main() -> int {
///          let a: [int; 32]; let s: int = 0;
///          @fill: for (let i: int = 0; i < 32; i = i + 1) { a[i] = i * 2; }
///          @sum: for (let i: int = 0; i < 32; i = i + 1) { s = s + a[i]; }
///          return s;
///      }",
/// ).map_err(|e| e.to_string())?;
/// let report = Dca::new(DcaConfig::fast()).analyze_module(&module)
///     .map_err(|e| e.to_string())?;
/// assert!(report.by_tag("fill").expect("fill").verdict.is_commutative());
/// assert!(report.by_tag("sum").expect("sum").verdict.is_commutative());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dca {
    config: DcaConfig,
}

/// Per-loop context threaded from the public entry points into the loop
/// tester: the loop's ordinal in analysis order (fault targeting), the
/// resolved fault plan, and the whole-analysis deadline.
#[derive(Clone, Copy)]
struct LoopCtx<'p> {
    /// The loop's position in analysis order (deterministic).
    ordinal: usize,
    /// The resolved fault-injection plan, if any.
    fault: Option<&'p FaultPlan>,
    /// Absolute deadline for the whole analysis call.
    analysis_deadline: Option<Instant>,
    /// The run's cancellation token, checked cooperatively at stage
    /// boundaries and replay granules.
    cancel: Option<&'p CancelToken>,
}

impl Dca {
    /// Creates an engine with the given configuration.
    pub fn new(config: DcaConfig) -> Self {
        Dca { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DcaConfig {
        &self.config
    }

    /// Validates the entry point, the workload arguments against `main`'s
    /// signature, and the permutation preset. Every public entry point
    /// runs this before any execution.
    fn validate_entry(&self, module: &Module, args: &[Value]) -> Result<FuncId, DcaError> {
        let main = module.main().ok_or(DcaError::NoMain)?;
        if let PermutationSet::Shuffles { shuffles: 0 } = self.config.permutations {
            return Err(DcaError::EmptyPermutationSet);
        }
        let f = module.func(main);
        if args.len() != f.params.len() {
            return Err(DcaError::EntryArity {
                expected: f.params.len(),
                given: args.len(),
            });
        }
        for (index, (&p, v)) in f.params.iter().zip(args).enumerate() {
            let ty = &f.var(p).ty;
            if !value_fits(v, ty) {
                return Err(DcaError::EntryArgType {
                    index,
                    param: f.var(p).name.clone(),
                    expected: ty_name(ty),
                    given: value_ty_name(v).to_string(),
                });
            }
        }
        Ok(main)
    }

    /// The fault plan in effect: explicit configuration first, the
    /// `DCA_FAULT` environment variable as the fallback.
    fn resolve_fault(&self) -> Option<FaultPlan> {
        self.config.fault.clone().or_else(FaultPlan::from_env)
    }

    /// A fresh interpreter honoring the configured replay heap budget:
    /// with [`DcaConfig::max_heap_cells`] set, a runaway allocation traps
    /// as [`Trap::OutOfMemory`] inside the interpreter — mapped to
    /// [`SkipReason::MemoryBudget`] — instead of exhausting host memory.
    fn new_machine<'m>(&self, module: &'m Module) -> Machine<'m> {
        match self.config.max_heap_cells {
            None => Machine::new(module),
            Some(cells) => Machine::with_limits(
                module,
                Limits {
                    max_heap_cells: cells,
                    ..Limits::default()
                },
            ),
        }
    }

    /// The internally-created cancellation token for a
    /// [`FaultKind::Cancel`] plan when the caller supplied none — the
    /// fault needs a token to trip.
    fn internal_cancel(&self, fault: Option<&FaultPlan>) -> Option<CancelToken> {
        (self.config.cancel.is_none() && fault.is_some_and(|p| matches!(p.kind, FaultKind::Cancel)))
            .then(CancelToken::new)
    }

    /// The whole-analysis deadline for a call starting now.
    fn analysis_deadline(&self) -> Option<Instant> {
        self.config.max_wall.analysis.map(|d| Instant::now() + d)
    }

    /// The deadline for one program run starting now: the per-replay limit
    /// combined with the analysis deadline (whichever is sooner). Reads
    /// the clock only when a per-replay limit is configured.
    fn run_deadline(&self, analysis: Option<Instant>) -> Option<Instant> {
        let per_run = self.config.max_wall.replay.map(|d| Instant::now() + d);
        match (per_run, analysis) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Analyzes every loop of `module`, running `main()` with no
    /// arguments.
    ///
    /// # Errors
    ///
    /// Returns [`DcaError::NoMain`] if the module has no entry point.
    pub fn analyze_module(&self, module: &Module) -> Result<DcaReport, DcaError> {
        self.analyze(module, &[])
    }

    /// Analyzes every loop of `module`, running `main(args)` as the
    /// workload.
    ///
    /// # Errors
    ///
    /// Returns [`DcaError::NoMain`] if the module has no entry point.
    pub fn analyze(&self, module: &Module, args: &[Value]) -> Result<DcaReport, DcaError> {
        let obs = make_obs(&self.config);
        let start = Instant::now();
        let whole = obs.span_start();
        let main = self.validate_entry(module, args)?;
        let fault = self.resolve_fault();
        let analysis_deadline = self.analysis_deadline();
        let effects = EffectMap::new_with_obs(module, &obs);
        // Collect every loop of the module in deterministic (function,
        // loop) order; this is both the work list and the report order.
        let mut items: Vec<LoopRef> = Vec::new();
        for (i, _) in module.funcs.iter().enumerate() {
            let fid = FuncId(i as u32);
            let view = FuncView::new(module, fid);
            for l in view.loops.iter() {
                items.push(LoopRef {
                    func: fid,
                    loop_id: l.id,
                });
            }
        }
        // The run's cancellation token: the caller's, or an internal one
        // a `cancel@…` fault plan can trip.
        let internal_cancel = self.internal_cancel(fault.as_ref());
        let cancel = self.config.cancel.as_ref().or(internal_cancel.as_ref());
        // Open the verdict cache, if one is configured. Runs with
        // verdict-perturbing fault injection or wall deadlines bypass it
        // wholesale — their verdicts are not functions of the cache key —
        // and a damaged file bypasses itself inside `open`.
        let perturbing = fault.as_ref().is_some_and(|p| p.kind.perturbs_verdicts());
        let cache: Option<VerdictCache> = resolve_cache_path(&self.config).map(|path| {
            if perturbing || !self.config.max_wall.is_unlimited() {
                VerdictCache::bypass(&path)
            } else {
                VerdictCache::open(&path)
            }
        });
        // Open the run journal, if one is configured. Unlike the cache it
        // stays active under fault injection — that is how quarantine
        // records land — but under a perturbing plan it only *serves*
        // quarantine entries and only *records* quarantine verdicts.
        let journal: Option<RunJournal> =
            resolve_journal_path(&self.config).map(|p| RunJournal::open(&p));
        // Per-loop keys, index-aligned with `items` and shared by the
        // cache and the journal, so consulting either inside the parallel
        // fan-out is a read-only map lookup.
        let need_keys = cache.as_ref().is_some_and(|c| !c.is_bypassed())
            || journal.as_ref().is_some_and(|j| !j.is_bypassed());
        let keys: Vec<u128> = if need_keys {
            let kb_t = obs.span_start();
            let keys = KeyBuilder::new(&self.config, args, module).all_loop_keys(module);
            obs.span_end("cache.keying", kb_t);
            keys
        } else {
            Vec::new()
        };
        // Split the worker budget: independent loops fan out across
        // `outer` workers, and each loop's permutation replays across
        // `inner` — so a module with one hot loop still uses every core.
        let threads = effective_threads(self.config.threads);
        let (outer, inner) = split_threads(threads, items.len());
        let outcomes = parallel_map(outer, &items, &obs, "loops", |i, lref| {
            // A tripped token means stop at the next safe point: loops
            // not yet started are skipped outright, and the partial
            // report stays valid.
            if cancel.is_some_and(|c| c.is_cancelled()) {
                let tag = FuncView::new(module, lref.func)
                    .loops
                    .get(lref.loop_id)
                    .tag
                    .clone();
                return (
                    LoopResult {
                        lref: *lref,
                        tag,
                        verdict: LoopVerdict::Skipped(SkipReason::Cancelled),
                        trips: 0,
                        permutations_tested: 0,
                        replay_steps: 0,
                        wall: Duration::ZERO,
                        cached: false,
                        resumed: false,
                    },
                    0u64,
                );
            }
            let key = keys.get(i).copied();
            // Journal consultation comes first: an interrupted run's
            // decided loops are served exactly as recorded, including
            // skips the cache refuses to persist.
            if let (Some(j), Some(key)) = (&journal, key) {
                if let Some(e) = j.decide(key) {
                    if e.quarantined || !perturbing {
                        return (
                            LoopResult {
                                lref: *lref,
                                tag: e.cached.tag,
                                verdict: e.cached.verdict,
                                trips: e.cached.trips,
                                permutations_tested: e.cached.permutations_tested,
                                replay_steps: e.cached.replay_steps,
                                wall: Duration::ZERO,
                                cached: false,
                                resumed: true,
                            },
                            0u64,
                        );
                    }
                }
            }
            // Cache consultation happens before any recording or replay:
            // a hit serves the stored verdict outright.
            if let (Some(vc), Some(key)) = (&cache, key) {
                if let CacheDecision::Hit(hit) = vc.decide(key) {
                    return (
                        LoopResult {
                            lref: *lref,
                            tag: hit.tag,
                            verdict: hit.verdict,
                            trips: hit.trips,
                            permutations_tested: hit.permutations_tested,
                            replay_steps: hit.replay_steps,
                            wall: Duration::ZERO,
                            cached: true,
                            resumed: false,
                        },
                        0u64,
                    );
                }
            }
            let ctx = LoopCtx {
                ordinal: i,
                fault: fault.as_ref(),
                analysis_deadline,
                cancel,
            };
            // Write-ahead: announce the loop before verifying it, so an
            // operator tailing the journal sees what was in flight when a
            // kill lands.
            if let (Some(j), Some(key)) = (&journal, key) {
                j.record_start(key, &lref.to_string());
            }
            // Contain per-loop engine faults: a panic anywhere in this
            // loop's analysis becomes a classified `EngineFault` skip and
            // the remaining loops keep analyzing, instead of the panic
            // poisoning the worker scope and aborting the whole report.
            // Transient faults are retried up to `fault_retries` times;
            // the retry count rides the result tuple so the post-fold
            // accounting stays deterministic.
            let mut retries = 0u64;
            let result = loop {
                let r = catch_contained(|| {
                    let view = FuncView::new(module, lref.func);
                    let live = Liveness::new_with_obs(&view, &obs);
                    let l = view.loops.get(lref.loop_id);
                    self.test_loop_inner(
                        module, main, args, &effects, &view, &live, l, inner, &obs, ctx,
                    )
                })
                .unwrap_or_else(|msg| engine_fault_result(*lref, msg));
                let faulted = matches!(r.verdict, LoopVerdict::Skipped(SkipReason::EngineFault(_)));
                if faulted && retries < u64::from(self.config.fault_retries) {
                    retries += 1;
                    continue;
                }
                break r;
            };
            // Journal the verdict as soon as it exists — the file on disk
            // is never more than one in-flight loop behind. A verdict
            // still `EngineFault` after the retry budget is a quarantine
            // record: subsequent runs skip the loop immediately.
            if let (Some(j), Some(key)) = (&journal, key) {
                let quarantine = matches!(
                    result.verdict,
                    LoopVerdict::Skipped(SkipReason::EngineFault(_))
                );
                if quarantine || !perturbing {
                    let v = CachedVerdict {
                        tag: result.tag.clone(),
                        verdict: result.verdict.clone(),
                        trips: result.trips,
                        permutations_tested: result.permutations_tested,
                        replay_steps: result.replay_steps,
                    };
                    j.record_verdict(key, &result.lref.to_string(), &v, quarantine);
                }
            }
            (result, retries)
        });
        let mut retries_total = 0u64;
        let results: Vec<LoopResult> = outcomes
            .into_iter()
            .map(|(r, n)| {
                retries_total += n;
                r
            })
            .collect();
        obs.count("engine.retries", retries_total);
        // Verdict tallies come from the ordered result vector, not the
        // workers, so they are deterministic like everything else here.
        obs.count("engine.loops", results.len() as u64);
        for r in &results {
            let name = match &r.verdict {
                LoopVerdict::Commutative => "engine.verdict.commutative",
                LoopVerdict::NonCommutative(_) => "engine.verdict.non_commutative",
                LoopVerdict::Excluded(_) => "engine.verdict.excluded",
                LoopVerdict::NotExercised => "engine.verdict.not_exercised",
                LoopVerdict::Skipped(_) => "engine.verdict.skipped",
            };
            obs.count(name, 1);
            obs.count("engine.permutations_tested", r.permutations_tested as u64);
            obs.count("engine.replay_steps", r.replay_steps);
        }
        obs.count(
            "engine.mem_budget",
            results
                .iter()
                .filter(|r| matches!(r.verdict, LoopVerdict::Skipped(SkipReason::MemoryBudget)))
                .count() as u64,
        );
        // Cache accounting and write-back, all from the ordered result
        // vector after the fold — `cache.{hits,misses,stores}` and
        // `engine.cache_fault` are as thread-count-invariant as the
        // verdict tallies above. Journal-served results take the miss
        // path, so a resumed run backfills the cache it never got to
        // write before the interrupt.
        let cache_stats = cache.map(|mut vc| {
            let mut stats = CacheStats {
                path: vc.path().to_path_buf(),
                bypassed: vc.is_bypassed(),
                faults: vc.load_faults(),
                ..CacheStats::default()
            };
            if !vc.is_bypassed() {
                for (i, r) in results.iter().enumerate() {
                    if r.cached {
                        stats.hits += 1;
                    } else {
                        stats.misses += 1;
                        let v = CachedVerdict {
                            tag: r.tag.clone(),
                            verdict: r.verdict.clone(),
                            trips: r.trips,
                            permutations_tested: r.permutations_tested,
                            replay_steps: r.replay_steps,
                        };
                        if vc.store(keys[i], &v) {
                            stats.stores += 1;
                        }
                    }
                }
                if vc.save_faulted(fault.as_ref()).is_err() {
                    stats.faults += 1;
                }
            }
            obs.count("cache.hits", stats.hits);
            obs.count("cache.misses", stats.misses);
            obs.count("cache.stores", stats.stores);
            obs.count("engine.cache_fault", stats.faults);
            stats
        });
        // Journal accounting, same post-fold discipline.
        let journal_stats = journal.map(|j| {
            let mut s = j.stats();
            s.resumed = results.iter().filter(|r| r.resumed).count() as u64;
            obs.count("journal.resumed", s.resumed);
            obs.count("journal.recorded", s.recorded);
            obs.count("journal.dropped", s.dropped);
            obs.count("engine.journal_fault", s.faults);
            s
        });
        let mut report = DcaReport::with_threads(threads);
        for result in results {
            report.push(result);
        }
        report.wall = start.elapsed();
        report.cache = cache_stats;
        report.journal = journal_stats;
        obs.span_end("engine.analyze", whole);
        report.obs = obs.rollup();
        Ok(report)
    }

    /// Analyzes the module under **several workloads** and combines the
    /// verdicts — the paper's §V-D future-work direction ("applying
    /// combined tests for multiple inputs"). A loop is commutative only if
    /// no input refutes it and at least one input exercises it; a single
    /// non-commutative observation wins over any number of commutative
    /// ones.
    ///
    /// # Errors
    ///
    /// Returns [`DcaError::NoMain`] if the module has no entry point.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn analyze_inputs(
        &self,
        module: &Module,
        inputs: &[Vec<Value>],
    ) -> Result<DcaReport, DcaError> {
        assert!(!inputs.is_empty(), "at least one workload is required");
        let mut combined: Option<DcaReport> = None;
        for args in inputs {
            let report = self.analyze(module, args)?;
            combined = Some(match combined {
                None => report,
                Some(prev) => merge_reports(prev, report),
            });
        }
        Ok(combined.expect("inputs is non-empty"))
    }

    /// Tests a single loop (by reference) and returns its result.
    ///
    /// # Errors
    ///
    /// Returns [`DcaError::NoMain`] if the module has no entry point.
    ///
    /// # Panics
    ///
    /// Panics if `lref` does not name a loop of `module`.
    pub fn test_loop(
        &self,
        module: &Module,
        lref: LoopRef,
        args: &[Value],
    ) -> Result<LoopResult, DcaError> {
        let obs = make_obs(&self.config);
        let main = self.validate_entry(module, args)?;
        let fault = self.resolve_fault();
        let internal_cancel = self.internal_cancel(fault.as_ref());
        let ctx = LoopCtx {
            ordinal: 0,
            fault: fault.as_ref(),
            analysis_deadline: self.analysis_deadline(),
            cancel: self.config.cancel.as_ref().or(internal_cancel.as_ref()),
        };
        let effects = EffectMap::new_with_obs(module, &obs);
        let view = FuncView::new(module, lref.func);
        let live = Liveness::new_with_obs(&view, &obs);
        let l = view.loops.get(lref.loop_id);
        let threads = effective_threads(self.config.threads);
        let result = catch_contained(|| {
            self.test_loop_inner(
                module, main, args, &effects, &view, &live, l, threads, &obs, ctx,
            )
        })
        .unwrap_or_else(|msg| engine_fault_result(lref, msg));
        obs.flush();
        Ok(result)
    }

    /// Tests each of the first `k` *eligible* invocations (trip ≥ 2) of
    /// one loop separately — a prototype of the context sensitivity the
    /// paper leaves as future work (§IV-E: "Loop candidates can exhibit
    /// commutativity in some execution contexts, but not in others"). The
    /// vector is shorter than `k` when the workload provides fewer
    /// eligible invocations.
    ///
    /// # Errors
    ///
    /// Returns [`DcaError::NoMain`] if the module has no entry point.
    ///
    /// # Panics
    ///
    /// Panics if `lref` does not name a loop of `module`.
    pub fn test_invocations(
        &self,
        module: &Module,
        lref: LoopRef,
        args: &[Value],
        k: u32,
    ) -> Result<Vec<LoopResult>, DcaError> {
        let obs = make_obs(&self.config);
        let main = self.validate_entry(module, args)?;
        let fault = self.resolve_fault();
        let internal_cancel = self.internal_cancel(fault.as_ref());
        let ctx = LoopCtx {
            ordinal: 0,
            fault: fault.as_ref(),
            analysis_deadline: self.analysis_deadline(),
            cancel: self.config.cancel.as_ref().or(internal_cancel.as_ref()),
        };
        let effects = EffectMap::new_with_obs(module, &obs);
        let view = FuncView::new(module, lref.func);
        let live = Liveness::new_with_obs(&view, &obs);
        let l = view.loops.get(lref.loop_id);
        let threads = effective_threads(self.config.threads);
        let slice = IteratorSlice::compute_with_obs(&view, l, &effects, &obs);
        let base = LoopResult {
            lref,
            tag: l.tag.clone(),
            verdict: LoopVerdict::NotExercised,
            trips: 0,
            permutations_tested: 0,
            replay_steps: 0,
            wall: std::time::Duration::ZERO,
            cached: false,
            resumed: false,
        };
        if let Some(reason) = exclusion(&view, l, &slice, &effects.io_funcs()) {
            return Ok(vec![LoopResult {
                verdict: LoopVerdict::Excluded(reason),
                ..base
            }]);
        }
        let mut out = Vec::new();
        for invocation in 0..k {
            let inv_start = Instant::now();
            let rec_t = obs.span_start();
            let mut machine = self.new_machine(module);
            let rec = record_golden_governed(
                &mut machine,
                main,
                args,
                view.id,
                l,
                &slice,
                invocation,
                self.config.max_trip,
                self.config.max_steps,
                2,
                self.run_deadline(ctx.analysis_deadline),
                ctx.cancel,
            );
            obs.span_end("stage.record", rec_t);
            obs.count("engine.golden_runs", 1);
            record_machine_ops(&obs, &machine.op_counts());
            let golden = match rec {
                Ok(g) => g,
                Err(RecordError::NotExercised) => break,
                Err(RecordError::TripLimit) => {
                    out.push(LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::TripLimit),
                        ..base.clone()
                    });
                    break;
                }
                Err(RecordError::Trapped(Trap::OutOfMemory))
                    if self.config.max_heap_cells.is_some() =>
                {
                    out.push(LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::MemoryBudget),
                        ..base.clone()
                    });
                    break;
                }
                Err(RecordError::Trapped(t)) => {
                    out.push(LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::GoldenTrapped(t)),
                        ..base.clone()
                    });
                    break;
                }
                Err(RecordError::BudgetExhausted) => {
                    out.push(LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::GoldenBudget),
                        ..base.clone()
                    });
                    break;
                }
                Err(RecordError::DeadlineExpired) => {
                    out.push(LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::Deadline),
                        ..base.clone()
                    });
                    break;
                }
                Err(RecordError::Cancelled) => {
                    out.push(LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::Cancelled),
                        ..base.clone()
                    });
                    break;
                }
            };
            let trip = golden.iters.len();
            let seed = derive_seed(self.config.seed, lref.func.0, lref.loop_id.0, invocation);
            let perms = schedules(&self.config.permutations, trip, seed);
            let summary = self.verify_permutations(
                module, &view, &live, l, &slice, &golden, &perms, threads, &obs, ctx,
            );
            let verdict = match summary.end {
                VerifyEnd::Complete => LoopVerdict::Commutative,
                VerifyEnd::Violated(violation) => LoopVerdict::NonCommutative(violation),
                VerifyEnd::Budget => LoopVerdict::Skipped(SkipReason::ReplayBudget),
                VerifyEnd::Deadline => LoopVerdict::Skipped(SkipReason::Deadline),
                VerifyEnd::Fault(msg) => LoopVerdict::Skipped(SkipReason::EngineFault(msg)),
                VerifyEnd::Cancelled => LoopVerdict::Skipped(SkipReason::Cancelled),
                VerifyEnd::MemBudget => LoopVerdict::Skipped(SkipReason::MemoryBudget),
            };
            out.push(LoopResult {
                verdict,
                trips: trip,
                permutations_tested: summary.tested,
                replay_steps: summary.replay_steps,
                wall: inv_start.elapsed(),
                ..base.clone()
            });
        }
        obs.flush();
        Ok(out)
    }

    /// Tests one loop with `threads` workers for its permutation replays;
    /// stamps the wall-clock time spent on the result.
    #[allow(clippy::too_many_arguments)]
    fn test_loop_inner(
        &self,
        module: &Module,
        main: FuncId,
        args: &[Value],
        effects: &EffectMap,
        view: &FuncView<'_>,
        live: &Liveness,
        l: &Loop,
        threads: usize,
        obs: &Obs,
        ctx: LoopCtx<'_>,
    ) -> LoopResult {
        let start = Instant::now();
        let mut result = self.test_loop_untimed(
            module, main, args, effects, view, live, l, threads, obs, ctx,
        );
        result.wall = start.elapsed();
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn test_loop_untimed(
        &self,
        module: &Module,
        main: FuncId,
        args: &[Value],
        effects: &EffectMap,
        view: &FuncView<'_>,
        live: &Liveness,
        l: &Loop,
        threads: usize,
        obs: &Obs,
        ctx: LoopCtx<'_>,
    ) -> LoopResult {
        let lref = LoopRef {
            func: view.id,
            loop_id: l.id,
        };
        let base = LoopResult {
            lref,
            tag: l.tag.clone(),
            verdict: LoopVerdict::NotExercised,
            trips: 0,
            permutations_tested: 0,
            replay_steps: 0,
            wall: std::time::Duration::ZERO,
            cached: false,
            resumed: false,
        };
        // An analysis deadline that has already expired skips the loop up
        // front — the report stays complete, each remaining loop just
        // costs one clock read.
        if let Some(d) = ctx.analysis_deadline {
            if Instant::now() >= d {
                return LoopResult {
                    verdict: LoopVerdict::Skipped(SkipReason::Deadline),
                    ..base
                };
            }
        }
        // A tripped cancel token likewise skips up front, keeping the
        // partial report valid.
        if ctx.cancel.is_some_and(CancelToken::is_cancelled) {
            return LoopResult {
                verdict: LoopVerdict::Skipped(SkipReason::Cancelled),
                ..base
            };
        }
        // ---- static stage (paper §IV-A): separation + exclusion.
        let static_t = obs.span_start();
        let slice = IteratorSlice::compute_with_obs(view, l, effects, obs);
        let excluded = exclusion(view, l, &slice, &effects.io_funcs());
        obs.span_end("stage.static", static_t);
        if let Some(reason) = excluded {
            return LoopResult {
                verdict: LoopVerdict::Excluded(reason),
                ..base
            };
        }
        // ---- dynamic stage: aggregate over the tested invocations.
        let mut trips_seen = 0;
        let mut perms_total = 0;
        let mut steps_total = 0u64;
        let mut exercised = false;
        for invocation in 0..self.config.invocations {
            let rec_t = obs.span_start();
            let mut machine = self.new_machine(module);
            let rec = record_golden_governed(
                &mut machine,
                main,
                args,
                view.id,
                l,
                &slice,
                invocation,
                self.config.max_trip,
                self.config.max_steps,
                2,
                self.run_deadline(ctx.analysis_deadline),
                ctx.cancel,
            );
            obs.span_end("stage.record", rec_t);
            obs.count("engine.golden_runs", 1);
            record_machine_ops(obs, &machine.op_counts());
            let golden = match rec {
                Ok(g) => g,
                Err(RecordError::NotExercised) => break,
                Err(RecordError::TripLimit) => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::TripLimit),
                        ..base
                    }
                }
                Err(RecordError::Trapped(Trap::OutOfMemory))
                    if self.config.max_heap_cells.is_some() =>
                {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::MemoryBudget),
                        ..base
                    }
                }
                Err(RecordError::Trapped(t)) => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::GoldenTrapped(t)),
                        ..base
                    }
                }
                Err(RecordError::BudgetExhausted) => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::GoldenBudget),
                        ..base
                    }
                }
                Err(RecordError::DeadlineExpired) => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::Deadline),
                        ..base
                    }
                }
                Err(RecordError::Cancelled) => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::Cancelled),
                        ..base
                    }
                }
            };
            let trip = golden.iters.len();
            trips_seen = trips_seen.max(trip);
            if trip < 2 {
                // Nothing to permute in this invocation.
                continue;
            }
            exercised = true;
            let seed = derive_seed(self.config.seed, lref.func.0, lref.loop_id.0, invocation);
            let perms = schedules(&self.config.permutations, trip, seed);
            let summary = self.verify_permutations(
                module, view, live, l, &slice, &golden, &perms, threads, obs, ctx,
            );
            perms_total += summary.tested;
            steps_total += summary.replay_steps;
            match summary.end {
                VerifyEnd::Complete => {}
                VerifyEnd::Violated(violation) => {
                    return LoopResult {
                        verdict: LoopVerdict::NonCommutative(violation),
                        trips: trip,
                        permutations_tested: perms_total,
                        replay_steps: steps_total,
                        ..base
                    }
                }
                VerifyEnd::Budget => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::ReplayBudget),
                        trips: trip,
                        permutations_tested: perms_total,
                        replay_steps: steps_total,
                        ..base
                    }
                }
                VerifyEnd::Deadline => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::Deadline),
                        trips: trip,
                        permutations_tested: perms_total,
                        replay_steps: steps_total,
                        ..base
                    }
                }
                VerifyEnd::Fault(msg) => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::EngineFault(msg)),
                        trips: trip,
                        permutations_tested: perms_total,
                        replay_steps: steps_total,
                        ..base
                    }
                }
                VerifyEnd::Cancelled => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::Cancelled),
                        trips: trip,
                        permutations_tested: perms_total,
                        replay_steps: steps_total,
                        ..base
                    }
                }
                VerifyEnd::MemBudget => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::MemoryBudget),
                        trips: trip,
                        permutations_tested: perms_total,
                        replay_steps: steps_total,
                        ..base
                    }
                }
            }
        }
        if !exercised {
            return LoopResult {
                trips: trips_seen,
                ..base
            };
        }
        LoopResult {
            verdict: LoopVerdict::Commutative,
            trips: trips_seen,
            permutations_tested: perms_total,
            replay_steps: steps_total,
            ..base
        }
    }

    /// Verifies every permutation against the golden reference, fanning
    /// the replays out across up to `threads` workers.
    ///
    /// Each worker owns a private [`Machine`] restored from the shared
    /// golden snapshot, so replays share no mutable state. Early exit is
    /// deterministic: a [`StopIndex`] records the *lowest* index with a
    /// terminal outcome, every index below it is guaranteed processed, and
    /// the fold below reads exactly the prefix the sequential engine would
    /// have executed — verdicts and counters are identical for every
    /// thread count.
    #[allow(clippy::too_many_arguments)]
    fn verify_permutations(
        &self,
        module: &Module,
        view: &FuncView<'_>,
        live: &Liveness,
        l: &Loop,
        slice: &IteratorSlice,
        golden: &GoldenRecord,
        perms: &[Vec<usize>],
        threads: usize,
        obs: &Obs,
        ctx: LoopCtx<'_>,
    ) -> VerifySummary {
        // Per-replay timing only happens when obs is live; disabled runs
        // never read the clock here.
        let timing = obs.is_enabled();
        let t_start = move || if timing { Some(Instant::now()) } else { None };
        let t_since = |t: Option<Instant>| t.map_or(Duration::ZERO, |t| t.elapsed());
        let stop_at_exit = self.config.verify_scope == VerifyScope::LoopExit;
        // Tier 1 (hashed) applies when a tolerance of exactly zero makes
        // canonical-bit equality the comparator — then the traversal can
        // stream into a fingerprint instead of materializing a digest.
        let hashed = stop_at_exit
            && self.config.float_tolerance == 0.0
            && self.config.digest == DigestMode::Auto;
        let roots = stop_at_exit.then(|| digest_roots(view, live, l));
        let governed = !self.config.max_wall.is_unlimited();
        let mut reference_steps = 0u64;
        // Under the loop-exit scope the reference state comes from an
        // identity replay (identical by construction to the golden run up
        // to the exit point).
        let reference = if stop_at_exit {
            let identity: Vec<usize> = (0..golden.iters.len()).collect();
            let t_restore = t_start();
            let mut machine = self.new_machine(module);
            machine.restore(&golden.snapshot);
            obs.record_span("stage.restore", t_since(t_restore), 1);
            let before = machine.steps();
            let mut ctl = ReplayController::new(view.id, view.func, l, slice, golden, &identity);
            let t_replay = t_start();
            let gov = ReplayGovernor {
                deadline: if governed {
                    self.run_deadline(ctx.analysis_deadline)
                } else {
                    None
                },
                cancel: ctx.cancel,
                trap_at_step: None,
            };
            let end = run_replay_governed(&mut machine, &mut ctl, true, self.config.max_steps, gov);
            obs.record_span("stage.replay", t_since(t_replay), 1);
            reference_steps = machine.steps() - before;
            obs.count("engine.replays", 1);
            record_machine_ops(obs, &machine.op_counts());
            match end {
                ReplayEnd::LoopExited => {}
                // `Finished` without a loop exit means the frame unwound
                // before the loop completed: there is no state to digest.
                ReplayEnd::Finished(_) => {
                    return VerifySummary {
                        end: VerifyEnd::Violated(Violation::ReplayDiverged),
                        tested: 0,
                        replay_steps: reference_steps,
                    }
                }
                ReplayEnd::BudgetExhausted => {
                    return VerifySummary {
                        end: VerifyEnd::Budget,
                        tested: 0,
                        replay_steps: reference_steps,
                    }
                }
                ReplayEnd::Trapped(Trap::OutOfMemory) if self.config.max_heap_cells.is_some() => {
                    return VerifySummary {
                        end: VerifyEnd::MemBudget,
                        tested: 0,
                        replay_steps: reference_steps,
                    }
                }
                ReplayEnd::Trapped(t) => {
                    return VerifySummary {
                        end: VerifyEnd::Violated(Violation::ReplayTrapped(t)),
                        tested: 0,
                        replay_steps: reference_steps,
                    }
                }
                ReplayEnd::DeadlineExpired => {
                    return VerifySummary {
                        end: VerifyEnd::Deadline,
                        tested: 0,
                        replay_steps: reference_steps,
                    }
                }
                ReplayEnd::Cancelled => {
                    return VerifySummary {
                        end: VerifyEnd::Cancelled,
                        tested: 0,
                        replay_steps: reference_steps,
                    }
                }
            }
            let t_digest = t_start();
            let dr = roots.as_ref().expect("loop-exit scope");
            let mut scratch = DigestScratch::new();
            let mut vals = Vec::with_capacity(dr.vars.len());
            read_roots(&machine, &dr.vars, &mut vals);
            let r = if hashed {
                let (h, cells) = hash_live_state(&machine, &vals, &mut scratch);
                obs.count("verify.digest.hashed", 1);
                obs.count("verify.digest.cells", cells);
                Reference::Hash(h)
            } else {
                let d = StateDigest::capture_with(&machine, &vals, &mut scratch);
                obs.count("verify.digest.structural", 1);
                obs.count("verify.digest.cells", d.cell_count());
                Reference::Digest(d)
            };
            obs.record_span("stage.verify", t_since(t_digest), 1);
            Some(r)
        } else {
            None
        };
        let check_one = |w: &mut ReplayWorker<'_>, slot: usize, perm: &Vec<usize>| -> PermOutcome {
            // Deterministic fault targeting: the (loop ordinal, slot)
            // pair is position-based, so the same replay is hit at every
            // thread count. `KillSave` targets the cache save, not a
            // replay — its positional match here is incidental.
            let injected = ctx
                .fault
                .and_then(|p| p.for_replay(ctx.ordinal, slot))
                .filter(|k| !matches!(k, FaultKind::KillSave { .. }));
            if matches!(injected, Some(FaultKind::Stall)) {
                std::thread::sleep(STALL_DURATION);
            }
            if matches!(injected, Some(FaultKind::Cancel)) {
                // Trip the run's token exactly where a user interrupt
                // would land mid-verification; the governor observes it
                // at the next granule boundary.
                if let Some(c) = ctx.cancel {
                    c.cancel();
                }
            }
            // Rewind the worker's machine to the golden snapshot. The
            // normal steady state is `clean` (the previous replay rolled
            // its journal back), so this costs nothing; the exceptions
            // are first use (full restore from the shared snapshot) and
            // recovery after a contained panic (roll back the armed
            // journal the panicking replay left behind, or full-restore
            // if it died before arming / mid-rewind).
            let t_restore = t_start();
            if !w.clean {
                if w.machine.journal_armed() {
                    w.machine.rollback();
                } else {
                    w.machine.restore(&golden.snapshot);
                }
            }
            w.clean = false;
            w.machine.clear_alloc_fault();
            w.machine.begin_journal();
            if let Some(FaultKind::AllocFail { allocs }) = injected {
                w.machine.fail_alloc_after(allocs);
            }
            let restore_prep = t_since(t_restore);
            let ops_before = w.machine.op_counts();
            let journal_before = w.machine.journal_stats();
            let before = w.machine.steps();
            let mut ctl = ReplayController::new(view.id, view.func, l, slice, golden, perm);
            let t_replay = t_start();
            if matches!(injected, Some(FaultKind::Panic)) {
                // The surrounding catch converts this into a classified
                // `EngineFault` skip — exactly what a real engine bug in a
                // replay worker would produce. Firing after
                // `begin_journal` also exercises the armed-journal
                // recovery path above.
                panic!("injected fault: panic in replay slot {slot}");
            }
            let gov = ReplayGovernor {
                deadline: if governed {
                    self.run_deadline(ctx.analysis_deadline)
                } else {
                    None
                },
                cancel: ctx.cancel,
                trap_at_step: match injected {
                    Some(FaultKind::Trap { at_step }) => Some(at_step),
                    _ => None,
                },
            };
            let end = run_replay_governed(
                &mut w.machine,
                &mut ctl,
                stop_at_exit,
                self.config.max_steps,
                gov,
            );
            let replay = t_since(t_replay);
            let steps = w.machine.steps() - before;
            let t_verify = t_start();
            let mut digest = DigestStats::default();
            let end = match (&self.config.verify_scope, end) {
                (VerifyScope::ProgramEnd, ReplayEnd::Finished(ret)) => {
                    // Compare against the machine's own output buffer —
                    // no per-replay outcome materialization.
                    if golden.outcome.matches_parts(
                        w.machine.output(),
                        &ret,
                        self.config.float_tolerance,
                    ) {
                        VerifyEnd::Complete
                    } else {
                        VerifyEnd::Violated(Violation::OutcomeMismatch(
                            golden.outcome.first_divergence(
                                w.machine.output(),
                                &ret,
                                self.config.float_tolerance,
                            ),
                        ))
                    }
                }
                (VerifyScope::LoopExit, ReplayEnd::LoopExited) => {
                    let dr = roots.as_ref().expect("loop-exit scope");
                    read_roots(&w.machine, &dr.vars, &mut w.roots);
                    match reference.as_ref().expect("captured above") {
                        Reference::Hash(expected) => {
                            let (h, cells) = hash_live_state(&w.machine, &w.roots, &mut w.scratch);
                            digest.hashed += 1;
                            digest.cells += cells;
                            if h == *expected {
                                VerifyEnd::Complete
                            } else {
                                // Tier-2 diagnostics: the 16-byte reference
                                // can say *that* the states differ but not
                                // *where*. Materialize the permuted
                                // structural digest, rewind, rebuild the
                                // golden loop-exit state via an identity
                                // replay, and diff the two. Only the
                                // terminal replay pays this; `steps` was
                                // measured before the verify step, so the
                                // diagnostic replay never perturbs
                                // `replay_steps`.
                                let permuted =
                                    StateDigest::capture_with(&w.machine, &w.roots, &mut w.scratch);
                                digest.structural += 1;
                                digest.cells += permuted.cell_count();
                                w.machine.rollback();
                                w.machine.clear_alloc_fault();
                                w.machine.begin_journal();
                                let identity: Vec<usize> = (0..golden.iters.len()).collect();
                                let mut ictl = ReplayController::new(
                                    view.id, view.func, l, slice, golden, &identity,
                                );
                                let igov = ReplayGovernor {
                                    deadline: if governed {
                                        self.run_deadline(ctx.analysis_deadline)
                                    } else {
                                        None
                                    },
                                    cancel: ctx.cancel,
                                    trap_at_step: None,
                                };
                                let iend = run_replay_governed(
                                    &mut w.machine,
                                    &mut ictl,
                                    true,
                                    self.config.max_steps,
                                    igov,
                                );
                                let div = if matches!(iend, ReplayEnd::LoopExited) {
                                    read_roots(&w.machine, &dr.vars, &mut w.roots);
                                    let golden_digest = StateDigest::capture_with(
                                        &w.machine,
                                        &w.roots,
                                        &mut w.scratch,
                                    );
                                    digest.structural += 1;
                                    digest.cells += golden_digest.cell_count();
                                    golden_digest.first_divergence(&permuted, 0.0, &dr.names)
                                } else {
                                    // The diagnostic replay itself hit a
                                    // budget/deadline: report the mismatch
                                    // without a pinpointed divergence.
                                    None
                                };
                                VerifyEnd::Violated(Violation::OutcomeMismatch(div))
                            }
                        }
                        Reference::Digest(reference) => {
                            let d = StateDigest::capture_with(&w.machine, &w.roots, &mut w.scratch);
                            digest.structural += 1;
                            digest.cells += d.cell_count();
                            if reference.matches(&d, self.config.float_tolerance) {
                                VerifyEnd::Complete
                            } else {
                                VerifyEnd::Violated(Violation::OutcomeMismatch(
                                    reference.first_divergence(
                                        &d,
                                        self.config.float_tolerance,
                                        &dr.names,
                                    ),
                                ))
                            }
                        }
                    }
                }
                (VerifyScope::LoopExit, ReplayEnd::Finished(_)) => {
                    // The frame unwound before the loop exit was observed:
                    // nothing safe to digest — conservative refutation.
                    VerifyEnd::Violated(Violation::ReplayDiverged)
                }
                // A heap-budget overflow is a resource limit like the step
                // budget below — unless this slot carries an injected
                // `AllocFail`, whose out-of-memory trap must keep counting
                // as a contained violation.
                (_, ReplayEnd::Trapped(Trap::OutOfMemory))
                    if self.config.max_heap_cells.is_some()
                        && !matches!(injected, Some(FaultKind::AllocFail { .. })) =>
                {
                    VerifyEnd::MemBudget
                }
                (_, ReplayEnd::Trapped(t)) => VerifyEnd::Violated(Violation::ReplayTrapped(t)),
                // An exhausted replay budget is a resource limit, not
                // evidence of non-commutativity: the callers map it to
                // `Skipped(ReplayBudget)`, never to a violation.
                (_, ReplayEnd::BudgetExhausted) => VerifyEnd::Budget,
                (_, ReplayEnd::DeadlineExpired) => VerifyEnd::Deadline,
                (_, ReplayEnd::Cancelled) => VerifyEnd::Cancelled,
                (VerifyScope::ProgramEnd, ReplayEnd::LoopExited) => {
                    unreachable!("ProgramEnd replays never stop at loop exit")
                }
            };
            let verify = t_since(t_verify);
            // Undo this replay's writes so the machine is snapshot-clean
            // for the worker's next claim. Rollback is restore work, so
            // its time lands in the `stage.restore` span.
            let t_rollback = t_start();
            w.machine.rollback();
            w.clean = true;
            let restore = restore_prep + t_since(t_rollback);
            PermOutcome {
                end,
                steps,
                restore,
                replay,
                verify,
                ops: w.machine.op_counts().since(&ops_before),
                journal: w.machine.journal_stats().since(&journal_before),
                injected,
                digest,
            }
        };
        let stop = StopIndex::new();
        let slots = parallel_scan_with(
            threads,
            perms,
            &stop,
            obs,
            "perms",
            // One interpreter per worker for the whole scan: restored
            // from the shared snapshot once, then rewound by journal
            // rollback between replays (O(writes), not O(heap)).
            || ReplayWorker {
                machine: self.new_machine(module),
                clean: false,
                scratch: DigestScratch::new(),
                roots: Vec::new(),
            },
            |w, i, perm| {
                // Contain per-replay faults: a panicking replay — injected
                // or a genuine engine bug — yields a classified outcome for
                // its slot; the deterministic fold below decides what the
                // prefix means, and no other replay is disturbed. The
                // worker machine survives the panic in a dirty state and
                // is rewound before its next use (see `check_one`).
                let out =
                    catch_contained(|| check_one(w, i, perm)).unwrap_or_else(|msg| PermOutcome {
                        end: VerifyEnd::Fault(msg),
                        steps: 0,
                        restore: Duration::ZERO,
                        replay: Duration::ZERO,
                        verify: Duration::ZERO,
                        ops: OpCounts::default(),
                        journal: JournalStats::default(),
                        injected: ctx
                            .fault
                            .and_then(|p| p.for_replay(ctx.ordinal, i))
                            .filter(|k| !matches!(k, FaultKind::KillSave { .. })),
                        digest: DigestStats::default(),
                    });
                if out.end != VerifyEnd::Complete {
                    stop.stop_at(i);
                }
                out
            },
        );
        // Deterministic fold over the sequential prefix. Workers may have
        // completed slots past the first terminal index before observing
        // the stop; those are ignored, exactly as sequential execution
        // would never have run them. Obs spans and counters are recorded
        // from that same prefix, so they are as thread-count-invariant as
        // the verdicts; work past the stop shows up only as a
        // `wasted_replays` trace event.
        let terminal = stop.current();
        let prefix_end = if terminal == usize::MAX {
            perms.len()
        } else {
            terminal + 1
        };
        let mut totals = FoldTotals::default();
        for (i, s) in slots[..prefix_end].iter().enumerate() {
            totals.add(i, s.as_ref().expect("filled up to the final stop"));
        }
        totals.record(obs, ctx.ordinal);
        if obs.has_trace() && terminal != usize::MAX {
            let wasted = slots[prefix_end..].iter().flatten().count();
            if wasted > 0 {
                obs.trace_event(
                    "wasted_replays",
                    &[
                        ("count", TraceVal::U64(wasted as u64)),
                        ("stop", TraceVal::U64(terminal as u64)),
                    ],
                );
            }
        }
        let replay_steps = totals.steps + reference_steps;
        if terminal == usize::MAX {
            return VerifySummary {
                end: VerifyEnd::Complete,
                tested: perms.len(),
                replay_steps,
            };
        }
        let end = slots[terminal]
            .as_ref()
            .expect("the stop-setter filled its slot")
            .end
            .clone();
        debug_assert!(
            end != VerifyEnd::Complete,
            "stop implies a terminal outcome"
        );
        VerifySummary {
            end,
            tested: terminal,
            replay_steps,
        }
    }
}

/// The loop-exit reference state captured from the identity replay: a
/// 16-byte fingerprint under the hashed tier, the materialized
/// structural digest otherwise.
enum Reference {
    Hash(u128),
    Digest(StateDigest),
}

/// The digest-root set for the loop-exit scope. Roots are *all*
/// variables live at any exit target — not just loop-defined ones — so
/// arrays allocated before the loop but filled inside it (their pointer
/// is live-in and live-out) contribute their contents; globals are
/// always included by the traversal itself. Computed once per
/// verification (`names` parallels `vars`, for divergence reports);
/// workers only re-read the values.
///
/// Public because the real-thread executor (`dca-parallel::exec`)
/// validates its merged state over exactly this root set — the two
/// comparators must agree on what "loop-exit live-out state" means.
pub struct DigestRoots {
    /// The root variables, deduplicated, in `VarId` order.
    pub vars: Vec<VarId>,
    /// Source names parallel to `vars`, for divergence reports.
    pub names: Vec<String>,
}

/// Computes the loop-exit digest-root set for `l`: the loop's live-out
/// variables plus everything live into any of its exit targets. See
/// [`DigestRoots`].
pub fn digest_roots(view: &FuncView<'_>, live: &Liveness, l: &Loop) -> DigestRoots {
    let mut vars: std::collections::BTreeSet<VarId> = live.loop_live_outs(l).into_iter().collect();
    for t in l.exit_targets() {
        vars.extend(live.live_in(t).iter().copied());
    }
    let vars: Vec<VarId> = vars.into_iter().collect();
    let names = vars
        .iter()
        .map(|&v| view.func.var(v).name.clone())
        .collect();
    DigestRoots { vars, names }
}

/// Refills `buf` with the current values of the digest-root variables.
pub fn read_roots(machine: &Machine<'_>, vars: &[VarId], buf: &mut Vec<Value>) {
    buf.clear();
    buf.extend(vars.iter().map(|&v| machine.read_var(v)));
}

/// The placeholder result for a loop whose analysis panicked: the panic
/// was contained, its message classified, and the rest of the module's
/// report is unaffected. The tag is left empty — resolving it would
/// re-enter the code that just faulted.
fn engine_fault_result(lref: LoopRef, msg: String) -> LoopResult {
    LoopResult {
        lref,
        tag: None,
        verdict: LoopVerdict::Skipped(SkipReason::EngineFault(msg)),
        trips: 0,
        permutations_tested: 0,
        replay_steps: 0,
        wall: Duration::ZERO,
        cached: false,
        resumed: false,
    }
}

/// Combines the per-loop results of two workloads: a refutation
/// (non-commutative) dominates; otherwise any commutative observation
/// upgrades "not exercised"; exclusions and skips are stable across
/// inputs.
fn merge_reports(a: DcaReport, b: DcaReport) -> DcaReport {
    let mut out = DcaReport::with_threads(a.threads.max(b.threads));
    out.wall = a.wall + b.wall;
    out.obs = match (a.obs.clone(), &b.obs) {
        (Some(mut ra), Some(rb)) => {
            ra.merge(rb);
            Some(ra)
        }
        (ra, rb) => ra.or_else(|| rb.clone()),
    };
    for ra in a.iter() {
        let rb = b.get(ra.lref).expect("same module, same loops");
        let verdict = match (&ra.verdict, &rb.verdict) {
            (LoopVerdict::NonCommutative(v), _) => LoopVerdict::NonCommutative(v.clone()),
            (_, LoopVerdict::NonCommutative(v)) => LoopVerdict::NonCommutative(v.clone()),
            (LoopVerdict::Commutative, _) | (_, LoopVerdict::Commutative) => {
                LoopVerdict::Commutative
            }
            (LoopVerdict::Excluded(r), _) => LoopVerdict::Excluded(*r),
            (LoopVerdict::Skipped(s), _) | (_, LoopVerdict::Skipped(s)) => {
                LoopVerdict::Skipped(s.clone())
            }
            (LoopVerdict::NotExercised, LoopVerdict::NotExercised) => LoopVerdict::NotExercised,
            (LoopVerdict::NotExercised, other) => other.clone(),
        };
        out.push(crate::report::LoopResult {
            lref: ra.lref,
            tag: ra.tag.clone(),
            verdict,
            trips: ra.trips.max(rb.trips),
            permutations_tested: ra.permutations_tested + rb.permutations_tested,
            replay_steps: ra.replay_steps + rb.replay_steps,
            wall: ra.wall + rb.wall,
            cached: ra.cached && rb.cached,
            resumed: ra.resumed && rb.resumed,
        });
    }
    out.journal = match (a.journal.clone(), b.journal.clone()) {
        (Some(ja), Some(jb)) => Some(RunJournalStats {
            path: ja.path,
            bypassed: ja.bypassed || jb.bypassed,
            resumed: ja.resumed + jb.resumed,
            recorded: ja.recorded + jb.recorded,
            quarantined: ja.quarantined.max(jb.quarantined),
            dropped: ja.dropped + jb.dropped,
            faults: ja.faults + jb.faults,
        }),
        (ja, jb) => ja.or(jb),
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PermutationSet;

    fn analyze(src: &str) -> DcaReport {
        let m = dca_ir::compile(src).expect("compile");
        Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze")
    }

    fn verdict(report: &DcaReport, tag: &str) -> LoopVerdict {
        report.by_tag(tag).expect("tagged loop").verdict.clone()
    }

    #[test]
    fn paper_fig1a_array_map_is_commutative() {
        let r = analyze(
            "let array: [int; 32];\n\
             fn main() -> int { \
             @map: for (let i: int = 0; i < 32; i = i + 1) { array[i] = array[i] + 1; } \
             return array[7]; }",
        );
        assert_eq!(verdict(&r, "map"), LoopVerdict::Commutative);
    }

    #[test]
    fn paper_fig1b_pointer_map_is_commutative() {
        // The PLDS twin of Fig. 1(a): dependence analysis fails on the
        // `ptr = ptr->next` cross-iteration dependence, DCA does not.
        let r = analyze(
            "struct Node { val: int, next: *Node }\n\
             fn main() -> int {\n\
               let head: *Node = null;\n\
               for (let i: int = 0; i < 16; i = i + 1) {\n\
                 let n: *Node = new Node; n.val = i; n.next = head; head = n;\n\
               }\n\
               let ptr: *Node = head;\n\
               @map: while (ptr != null) { ptr.val = ptr.val + 1; ptr = ptr.next; }\n\
               let s: int = 0; let q: *Node = head;\n\
               while (q != null) { s = s + q.val; q = q.next; }\n\
               return s;\n\
             }",
        );
        assert_eq!(verdict(&r, "map"), LoopVerdict::Commutative);
    }

    #[test]
    fn recurrence_is_non_commutative() {
        let r = analyze(
            "fn main() -> int { let a: [int; 16]; a[0] = 1; let s: int = 0; \
             @rec: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] * 2; } \
             for (let i: int = 0; i < 16; i = i + 1) { s = s + a[i]; } return s; }",
        );
        assert!(matches!(
            verdict(&r, "rec"),
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(_))
        ));
    }

    #[test]
    fn reduction_is_commutative() {
        let r = analyze(
            "fn main() -> int { let s: int = 0; \
             @red: for (let i: int = 0; i < 20; i = i + 1) { s = s + i * i; } \
             return s; }",
        );
        assert_eq!(verdict(&r, "red"), LoopVerdict::Commutative);
    }

    #[test]
    fn io_loop_is_excluded() {
        let r = analyze(
            "fn main() { \
             @io: for (let i: int = 0; i < 4; i = i + 1) { print(i); } }",
        );
        assert!(matches!(verdict(&r, "io"), LoopVerdict::Excluded(_)));
    }

    #[test]
    fn unexercised_loop_reported() {
        let r = analyze(
            "fn main() { let s: int = 0; let n: int = 0; \
             @dead: for (let i: int = 0; i < n; i = i + 1) { s = s + 1; } }",
        );
        assert_eq!(verdict(&r, "dead"), LoopVerdict::NotExercised);
    }

    #[test]
    fn first_match_search_is_non_commutative() {
        let r = analyze(
            "fn main() -> int { let a: [int; 16]; let first: int = 0 - 1; \
             for (let i: int = 0; i < 16; i = i + 1) { a[i] = i * 7 % 16; } \
             @find: for (let i: int = 0; i < 16; i = i + 1) { \
               if (a[i] > 9 && first < 0) { first = i; } } \
             return first; }",
        );
        assert!(matches!(
            verdict(&r, "find"),
            LoopVerdict::NonCommutative(_)
        ));
    }

    #[test]
    fn loop_exit_scope_detects_map_commutativity() {
        let m = dca_ir::compile(
            "fn main() -> int { let a: [int; 16]; \
             @map: for (let i: int = 0; i < 16; i = i + 1) { a[i] = i * 2; } \
             return a[3]; }",
        )
        .expect("compile");
        let cfg = DcaConfig {
            verify_scope: VerifyScope::LoopExit,
            ..DcaConfig::fast()
        };
        let r = Dca::new(cfg).analyze_module(&m).expect("analyze");
        assert_eq!(
            r.by_tag("map").expect("map").verdict,
            LoopVerdict::Commutative
        );
    }

    #[test]
    fn exhaustive_permutations_agree_with_presets_on_small_loops() {
        let src = "fn main() -> int { let s: int = 0; \
             @red: for (let i: int = 0; i < 5; i = i + 1) { s = s + i; } return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let cfg = DcaConfig {
            permutations: PermutationSet::Exhaustive {
                max_trip: 6,
                fallback_shuffles: 2,
            },
            ..DcaConfig::fast()
        };
        let r = Dca::new(cfg).analyze_module(&m).expect("analyze");
        let res = r.by_tag("red").expect("red");
        assert_eq!(res.verdict, LoopVerdict::Commutative);
        assert_eq!(res.permutations_tested, 120 - 1);
    }

    #[test]
    fn nested_loops_tested_independently() {
        let r = analyze(
            "fn main() -> int { let a: [int; 64]; let s: int = 0; \
             @outer: for (let i: int = 0; i < 8; i = i + 1) { \
               @inner: for (let j: int = 0; j < 8; j = j + 1) { \
                 a[i * 8 + j] = i + j; } } \
             for (let k: int = 0; k < 64; k = k + 1) { s = s + a[k]; } return s; }",
        );
        assert_eq!(verdict(&r, "outer"), LoopVerdict::Commutative);
        assert_eq!(verdict(&r, "inner"), LoopVerdict::Commutative);
    }

    #[test]
    fn float_reductions_verify_under_tolerance() {
        let r = analyze(
            "fn main() -> float { let s: float = 0.0; \
             @fred: for (let i: int = 0; i < 50; i = i + 1) { \
               s = s + 1.0 / (i as float + 1.0); } \
             return s; }",
        );
        assert_eq!(verdict(&r, "fred"), LoopVerdict::Commutative);
    }

    #[test]
    fn deterministic_nan_live_outs_are_commutative() {
        // Float division never traps: 0.0 / 0.0 is NaN, produced
        // identically by every iteration order. Before canonical float
        // comparison, NaN != NaN misclassified this map loop as
        // `NonCommutative(OutcomeMismatch)` under every scope.
        let src = "fn main() -> float { let a: [float; 16]; \
             @nan: for (let i: int = 0; i < 16; i = i + 1) { \
               a[i] = (0.0 / 0.0) + (0.0 - 0.0); } \
             return a[3]; }";
        let m = dca_ir::compile(src).expect("compile");
        let configs = [
            DcaConfig::fast(), // ProgramEnd, tolerance 1e-8
            DcaConfig {
                float_tolerance: 0.0,
                ..DcaConfig::fast()
            }, // ProgramEnd, bit-exact
            DcaConfig {
                verify_scope: VerifyScope::LoopExit,
                ..DcaConfig::fast()
            }, // LoopExit, structural tier
            DcaConfig::exact(), // LoopExit, hashed tier
            DcaConfig {
                digest: DigestMode::Structural,
                ..DcaConfig::exact()
            }, // LoopExit, forced structural
        ];
        for (i, cfg) in configs.into_iter().enumerate() {
            let r = Dca::new(cfg).analyze_module(&m).expect("analyze");
            assert_eq!(
                r.by_tag("nan").expect("nan").verdict,
                LoopVerdict::Commutative,
                "config {i}: deterministic NaN must not refute commutativity"
            );
        }
    }

    #[test]
    fn hashed_and_structural_tiers_agree_and_pinpoint_divergence() {
        // A recurrence under the loop-exit scope: both tiers must refute
        // it with the *same* first divergence — the hashed tier's
        // diagnostic pass rebuilds the golden state and diffs exactly
        // what the structural tier compares directly.
        let src = "fn main() -> int { let a: [int; 16]; a[0] = 1; let s: int = 0; \
             @rec: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] * 2; } \
             for (let i: int = 0; i < 16; i = i + 1) { s = s + a[i]; } return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let diverge = |cfg: DcaConfig| {
            let r = Dca::new(cfg).analyze_module(&m).expect("analyze");
            match r.by_tag("rec").expect("rec").verdict.clone() {
                LoopVerdict::NonCommutative(Violation::OutcomeMismatch(d)) => {
                    d.expect("divergence pinpointed")
                }
                v => panic!("expected a live-out mismatch, got {v}"),
            }
        };
        let hashed = diverge(DcaConfig::exact());
        let structural = diverge(DcaConfig {
            digest: DigestMode::Structural,
            ..DcaConfig::exact()
        });
        assert_eq!(hashed, structural, "tiers must report the same divergence");
        let rendered = Violation::OutcomeMismatch(Some(hashed)).to_string();
        assert!(
            rendered.contains("golden") && rendered.contains("permuted"),
            "divergence names both sides: {rendered}"
        );

        // The obs counters record the tier split: hashed runs fingerprint
        // every verify (plus two structural captures for the diagnostic),
        // structural runs materialize every one.
        let count = |cfg: DcaConfig| {
            let r = Dca::new(DcaConfig {
                obs: crate::config::ObsOptions::metrics(),
                ..cfg
            })
            .analyze_module(&m)
            .expect("analyze");
            let obs = r.obs.expect("metrics on");
            (
                obs.counter("verify.digest.hashed"),
                obs.counter("verify.digest.structural"),
                obs.counter("verify.digest.cells"),
            )
        };
        let (h_hashed, h_structural, h_cells) = count(DcaConfig::exact());
        assert!(h_hashed >= 2, "reference + terminal replay fingerprinted");
        assert_eq!(h_structural, 2, "one diagnostic pair per refutation");
        let (s_hashed, s_structural, s_cells) = count(DcaConfig {
            digest: DigestMode::Structural,
            ..DcaConfig::exact()
        });
        assert_eq!(s_hashed, 0, "forced structural never fingerprints");
        assert!(s_structural >= 2, "reference + terminal replay digested");
        assert!(h_cells > 0 && s_cells > 0);
    }

    #[test]
    fn program_end_mismatch_pinpoints_divergence() {
        let r = analyze(
            "fn main() -> int { let a: [int; 16]; a[0] = 1; let s: int = 0; \
             @rec: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] * 2; } \
             for (let i: int = 0; i < 16; i = i + 1) { s = s + a[i]; } return s; }",
        );
        match verdict(&r, "rec") {
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(Some(d))) => {
                assert!(
                    matches!(d, crate::outcome::Divergence::Ret { .. }),
                    "the only live-out is the return value, got {d}"
                );
            }
            v => panic!("expected a pinpointed mismatch, got {v}"),
        }
    }

    #[test]
    fn per_invocation_testing_exposes_context_sensitivity() {
        // The callee loop is commutative when the caller passes disjoint
        // strides and a recurrence when it passes stride 1 — different
        // verdicts per invocation (the §IV-E context-sensitivity case).
        let src = "fn upd(a: *int, stride: int) { \
             @u: for (let i: int = 0; i < 12; i = i + 1) { \
               a[(i + stride) % 24] = a[i] + 1; } }\n\
             fn main() -> int { let a: *int = new [int; 24]; let s: int = 0; \
             for (let i: int = 0; i < 24; i = i + 1) { a[i] = i * i % 7; } \
             upd(a, 12); upd(a, 1); \
             for (let i: int = 0; i < 24; i = i + 1) { s = s + a[i] * (i + 1); } \
             return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let lref = dca_ir::all_loops(&m)
            .into_iter()
            .find(|(_, t)| t.as_deref() == Some("u"))
            .expect("tag")
            .0;
        let results = Dca::new(DcaConfig::fast())
            .test_invocations(&m, lref, &[], 4)
            .expect("analyze");
        assert_eq!(results.len(), 2, "two invocations exist");
        assert_eq!(results[0].verdict, LoopVerdict::Commutative);
        assert!(matches!(results[1].verdict, LoopVerdict::NonCommutative(_)));
    }

    #[test]
    fn multi_input_analysis_refutation_dominates() {
        // An input-dependent dependence in the style of 429.mcf: with
        // stride >= trip the writes never collide; with stride 1 they do.
        let src = "fn main(stride: int) -> int { let a: [int; 64]; let s: int = 0; \
             for (let i: int = 0; i < 32; i = i + 1) { a[i] = i * i % 7; } \
             @upd: for (let i: int = 0; i < 16; i = i + 1) { \
               a[(i + stride) % 32] = a[i] + 1; } \
             for (let i: int = 0; i < 32; i = i + 1) { s = s + a[i] * (i + 1); } \
             return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let dca = Dca::new(DcaConfig::fast());
        // stride 16: reads a[0..16], writes a[16..32] — disjoint.
        let benign = dca.analyze(&m, &[Value::Int(16)]).expect("analyze");
        assert_eq!(
            benign.by_tag("upd").expect("upd").verdict,
            LoopVerdict::Commutative
        );
        // stride 1: a[i+1] = a[i] + 1 — a genuine recurrence.
        let combined = dca
            .analyze_inputs(&m, &[vec![Value::Int(16)], vec![Value::Int(1)]])
            .expect("analyze");
        assert!(matches!(
            combined.by_tag("upd").expect("upd").verdict,
            LoopVerdict::NonCommutative(_)
        ));
    }

    #[test]
    fn multi_input_analysis_upgrades_not_exercised() {
        let src = "fn main(n: int) -> int { let a: [int; 32]; let s: int = 0; \
             @m: for (let i: int = 0; i < n; i = i + 1) { a[i] = i * 2; } \
             for (let i: int = 0; i < 32; i = i + 1) { s = s + a[i]; } return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let dca = Dca::new(DcaConfig::fast());
        let combined = dca
            .analyze_inputs(&m, &[vec![Value::Int(0)], vec![Value::Int(20)]])
            .expect("analyze");
        assert_eq!(
            combined.by_tag("m").expect("m").verdict,
            LoopVerdict::Commutative
        );
    }

    #[test]
    fn replay_budget_reported_as_skip_not_violation() {
        // The loop dominates the program's cost, so a budget that admits
        // the golden run (setup + loop + rest) still starves a permuted
        // replay (iterator pre-pass + payload pass + rest ≈ twice the
        // loop). This used to be misreported as
        // `NonCommutative(ReplayDiverged)`.
        let src = "fn main() -> int { let a: [int; 64]; \
             @big: for (let i: int = 0; i < 64; i = i + 1) { a[i] = a[i] + i; } \
             return a[63]; }";
        let m = dca_ir::compile(src).expect("compile");
        let generous = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        let r = generous.by_tag("big").expect("big");
        assert_eq!(r.verdict, LoopVerdict::Commutative);
        assert!(r.permutations_tested > 0 && r.replay_steps > 0);
        // Every replay of this loop costs the same number of steps; one
        // step less than that exhausts the budget mid-replay.
        let per_replay = r.replay_steps / r.permutations_tested as u64;
        let tight = DcaConfig {
            max_steps: per_replay - 1,
            ..DcaConfig::fast()
        };
        let report = Dca::new(tight).analyze_module(&m).expect("analyze");
        let r = report.by_tag("big").expect("big");
        assert_eq!(
            r.verdict,
            LoopVerdict::Skipped(SkipReason::ReplayBudget),
            "an exhausted replay budget is a resource limit, not a violation"
        );
        assert_eq!(r.permutations_tested, 0, "budget hit on the first replay");
    }

    #[test]
    fn violation_preserves_permutation_count() {
        // `s = s * 2 + v[i]` over a palindromic `v` survives the reverse
        // permutation (the weight sequence is symmetric) but not a random
        // shuffle — so the violation lands on a later permutation and the
        // count of permutations executed before it must be preserved.
        // `test_invocations` used to zero it.
        let src = "fn main() -> int { let v: [int; 8]; let s: int = 0; \
             for (let i: int = 0; i < 8; i = i + 1) { \
               if (i < 4) { v[i] = i; } else { v[i] = 7 - i; } } \
             @poly: for (let i: int = 0; i < 8; i = i + 1) { s = s * 2 + v[i]; } \
             return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        let r = report.by_tag("poly").expect("poly");
        assert!(matches!(r.verdict, LoopVerdict::NonCommutative(_)));
        assert!(
            r.permutations_tested >= 1,
            "the reverse permutation passed before a shuffle violated"
        );
        let results = Dca::new(DcaConfig::fast())
            .test_invocations(&m, r.lref, &[], 1)
            .expect("analyze");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].verdict, r.verdict);
        assert_eq!(
            results[0].permutations_tested, r.permutations_tested,
            "test_invocations and analyze must count identically"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // Commutative, non-commutative and multi-function modules must
        // produce verdict- and counter-identical reports at any width.
        let srcs = [
            "fn main() -> int { let a: [int; 32]; let s: int = 0; \
             @fill: for (let i: int = 0; i < 32; i = i + 1) { a[i] = i * 2; } \
             @sum: for (let i: int = 0; i < 32; i = i + 1) { s = s + a[i]; } \
             return s; }",
            "fn main() -> int { let a: [int; 16]; a[0] = 1; let s: int = 0; \
             @rec: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] * 2; } \
             for (let i: int = 0; i < 16; i = i + 1) { s = s + a[i]; } return s; }",
            "fn kernel(a: *int, n: int) { \
             @k: for (let i: int = 0; i < n; i = i + 1) { a[i] = a[i] * 2; } }\n\
             fn main() -> int { let a: *int = new [int; 16]; \
             for (let i: int = 0; i < 16; i = i + 1) { a[i] = i; } \
             kernel(a, 16); return a[5]; }",
        ];
        for src in srcs {
            let m = dca_ir::compile(src).expect("compile");
            let sequential = Dca::new(DcaConfig {
                threads: 1,
                ..DcaConfig::fast()
            })
            .analyze_module(&m)
            .expect("analyze");
            for threads in [2, 4, 8] {
                let parallel = Dca::new(DcaConfig {
                    threads,
                    ..DcaConfig::fast()
                })
                .analyze_module(&m)
                .expect("analyze");
                assert_eq!(parallel.threads, threads);
                assert_eq!(sequential.len(), parallel.len());
                for (s, p) in sequential.iter().zip(parallel.iter()) {
                    assert_eq!(s, p, "threads={threads}");
                    assert_eq!(
                        s.replay_steps, p.replay_steps,
                        "replay accounting must be deterministic (threads={threads})"
                    );
                }
            }
        }
    }

    #[test]
    fn obs_disabled_by_default_and_rollup_populated_when_enabled() {
        let src = "fn main() -> int { let a: [int; 16]; let s: int = 0; \
             @fill: for (let i: int = 0; i < 16; i = i + 1) { a[i] = i * 2; } \
             for (let i: int = 0; i < 16; i = i + 1) { s = s + a[i]; } return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let plain = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        assert!(plain.obs.is_none(), "obs is opt-in");
        let cfg = DcaConfig {
            obs: crate::config::ObsOptions::metrics(),
            ..DcaConfig::fast()
        };
        let r = Dca::new(cfg).analyze_module(&m).expect("analyze");
        let obs = r.obs.as_ref().expect("metrics on");
        assert_eq!(obs.counter("engine.loops"), 2);
        assert_eq!(obs.counter("engine.verdict.commutative"), 2);
        assert_eq!(obs.counter("engine.replay_steps"), r.replay_steps());
        assert!(obs.counter("engine.replays") > 0);
        assert!(
            obs.counter("interp.heap.writes") > 0,
            "the loops store to the array"
        );
        assert!(obs.counter("analysis.liveness.runs") >= 2);
        assert_eq!(obs.spans["engine.analyze"].count, 1);
        assert_eq!(
            obs.spans["stage.static"].count, 2,
            "one static stage per loop"
        );
        assert!(obs.spans["stage.record"].count >= 2);
        // Per-replay spans line up with the replay counter.
        let replays = obs.counter("engine.replays");
        assert_eq!(obs.spans["stage.restore"].count, replays);
        assert_eq!(obs.spans["stage.replay"].count, replays);
        assert_eq!(obs.spans["stage.verify"].count, replays);
    }

    type NamedTotals = Vec<(String, u64)>;

    /// Strips the wall-time component of a rollup, leaving only the
    /// deterministic part: counters and span counts.
    fn deterministic_view(r: &DcaReport) -> (NamedTotals, NamedTotals) {
        let obs = r.obs.as_ref().expect("metrics on");
        (
            obs.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            obs.spans
                .iter()
                .map(|(k, s)| (k.clone(), s.count))
                .collect(),
        )
    }

    #[test]
    fn obs_rollup_identical_across_thread_counts_when_budget_exhausts_mid_replay() {
        // The ReplayBudget early-exit path: the budget starves the very
        // first permuted replay, so workers race to observe the stop
        // index. The deterministic fold must nonetheless attribute
        // identical counters and span counts at every width, and the
        // verdict must stay `Skipped(ReplayBudget)`.
        let src = "fn main() -> int { let a: [int; 64]; \
             @big: for (let i: int = 0; i < 64; i = i + 1) { a[i] = a[i] + i; } \
             return a[63]; }";
        let m = dca_ir::compile(src).expect("compile");
        let generous = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        let r = generous.by_tag("big").expect("big");
        let per_replay = r.replay_steps / r.permutations_tested as u64;
        let tight = |threads| DcaConfig {
            max_steps: per_replay - 1,
            threads,
            obs: crate::config::ObsOptions::metrics(),
            ..DcaConfig::fast()
        };
        let sequential = Dca::new(tight(1)).analyze_module(&m).expect("analyze");
        assert_eq!(
            sequential.by_tag("big").expect("big").verdict,
            LoopVerdict::Skipped(SkipReason::ReplayBudget)
        );
        let reference = deterministic_view(&sequential);
        for threads in [2, 8] {
            let parallel = Dca::new(tight(threads))
                .analyze_module(&m)
                .expect("analyze");
            for (s, p) in sequential.iter().zip(parallel.iter()) {
                assert_eq!(s, p, "threads={threads}");
            }
            assert_eq!(
                deterministic_view(&parallel),
                reference,
                "obs counters/span counts must not depend on the worker count (threads={threads})"
            );
        }
    }

    #[test]
    fn merged_reports_merge_obs_rollups() {
        let src = "fn main(n: int) -> int { let a: [int; 32]; let s: int = 0; \
             @m: for (let i: int = 0; i < n; i = i + 1) { a[i] = i * 2; } \
             for (let i: int = 0; i < 32; i = i + 1) { s = s + a[i]; } return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let cfg = DcaConfig {
            obs: crate::config::ObsOptions::metrics(),
            ..DcaConfig::fast()
        };
        let dca = Dca::new(cfg);
        let a = dca.analyze(&m, &[Value::Int(8)]).expect("analyze");
        let b = dca.analyze(&m, &[Value::Int(20)]).expect("analyze");
        let combined = dca
            .analyze_inputs(&m, &[vec![Value::Int(8)], vec![Value::Int(20)]])
            .expect("analyze");
        let (ra, rb) = (a.obs.expect("obs"), b.obs.expect("obs"));
        let rc = combined.obs.expect("obs");
        assert_eq!(
            rc.counter("engine.replays"),
            ra.counter("engine.replays") + rb.counter("engine.replays")
        );
        assert_eq!(
            rc.spans["engine.analyze"].count, 2,
            "one analyze span per workload"
        );
    }

    #[test]
    fn second_loop_in_other_function_analyzed() {
        let r = analyze(
            "fn kernel(a: *int, n: int) { \
             @k: for (let i: int = 0; i < n; i = i + 1) { a[i] = a[i] * 2; } }\n\
             fn main() -> int { let a: *int = new [int; 16]; \
             for (let i: int = 0; i < 16; i = i + 1) { a[i] = i; } \
             kernel(a, 16); return a[5]; }",
        );
        assert_eq!(verdict(&r, "k"), LoopVerdict::Commutative);
    }

    #[test]
    fn entry_arity_mismatch_is_rejected_up_front() {
        let m = dca_ir::compile(
            "fn main(n: int) -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < n; i = i + 1) { s = s + i; } return s; }",
        )
        .expect("compile");
        let dca = Dca::new(DcaConfig::fast());
        assert_eq!(
            dca.analyze(&m, &[]).expect_err("no args for main(n)"),
            DcaError::EntryArity {
                expected: 1,
                given: 0
            }
        );
        let err = dca
            .analyze(&m, &[Value::Int(4), Value::Int(5)])
            .expect_err("too many args");
        assert_eq!(
            err.to_string(),
            "`main` expects 1 argument(s), the workload supplies 2"
        );
        assert!(dca.analyze(&m, &[Value::Int(8)]).is_ok());
    }

    #[test]
    fn entry_argument_type_mismatch_names_the_parameter() {
        let m = dca_ir::compile(
            "fn main(n: int, scale: float) -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < n; i = i + 1) { s = s + i; } return s; }",
        )
        .expect("compile");
        let dca = Dca::new(DcaConfig::fast());
        let err = dca
            .analyze(&m, &[Value::Int(4), Value::Bool(true)])
            .expect_err("bool is not a float");
        assert_eq!(
            err,
            DcaError::EntryArgType {
                index: 1,
                param: "scale".into(),
                expected: "float".into(),
                given: "bool".into(),
            }
        );
        assert_eq!(
            err.to_string(),
            "entry argument 1 (`scale`) has type bool, expected float"
        );
        assert!(dca.analyze(&m, &[Value::Int(4), Value::Float(1.5)]).is_ok());
    }

    #[test]
    fn null_fits_any_pointer_entry_parameter() {
        let m = dca_ir::compile(
            "struct Node { val: int, next: *Node }\n\
             fn main(head: *Node) -> int { let s: int = 0; let p: *Node = head;\n\
             @l: while (p != null) { s = s + p.val; p = p.next; } return s; }",
        )
        .expect("compile");
        let dca = Dca::new(DcaConfig::fast());
        assert!(dca.analyze(&m, &[Value::Null]).is_ok());
        let err = dca
            .analyze(&m, &[Value::Int(0)])
            .expect_err("int is not a pointer");
        assert!(matches!(err, DcaError::EntryArgType { index: 0, .. }));
    }

    #[test]
    fn empty_permutation_preset_is_rejected() {
        let m = dca_ir::compile(
            "fn main() -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { s = s + i; } return s; }",
        )
        .expect("compile");
        let zero = Dca::new(DcaConfig {
            permutations: PermutationSet::Shuffles { shuffles: 0 },
            ..DcaConfig::fast()
        });
        let err = zero
            .analyze_module(&m)
            .expect_err("zero shuffles and no reverse tests nothing");
        assert_eq!(err, DcaError::EmptyPermutationSet);
        assert_eq!(
            err.to_string(),
            "permutation preset generates no permutations"
        );
        // One shuffle is a legitimate (if weak) preset.
        let one = Dca::new(DcaConfig {
            permutations: PermutationSet::Shuffles { shuffles: 1 },
            ..DcaConfig::fast()
        });
        assert!(one.analyze_module(&m).is_ok());
    }
}
