//! The DCA engine: orchestrates the static stage, golden recording,
//! permuted replay and live-out verification for every loop of a module
//! (paper Fig. 3).

use crate::config::{DcaConfig, VerifyScope};
use crate::outcome::{ProgramOutcome, StateDigest};
use crate::perm::schedules;
use crate::record::{record_golden_min_trip, GoldenRecord, RecordError};
use crate::replay::{run_replay, ReplayController, ReplayEnd};
use crate::report::{DcaReport, LoopResult, LoopVerdict, SkipReason, Violation};
use dca_analysis::{exclusion, EffectMap, IteratorSlice, Liveness};
use dca_interp::{Machine, Value};
use dca_ir::{FuncId, FuncView, Loop, LoopRef, Module};
use std::fmt;

/// Errors that prevent analysis from starting at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DcaError {
    /// The module has no `main` function to execute.
    NoMain,
}

impl fmt::Display for DcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcaError::NoMain => write!(f, "module has no `main` function"),
        }
    }
}

impl std::error::Error for DcaError {}

/// The Dynamic Commutativity Analysis engine.
///
/// # Example
///
/// ```
/// use dca_core::{Dca, DcaConfig};
///
/// let module = dca_ir::compile(
///     "fn main() -> int {
///          let a: [int; 32]; let s: int = 0;
///          @fill: for (let i: int = 0; i < 32; i = i + 1) { a[i] = i * 2; }
///          @sum: for (let i: int = 0; i < 32; i = i + 1) { s = s + a[i]; }
///          return s;
///      }",
/// ).map_err(|e| e.to_string())?;
/// let report = Dca::new(DcaConfig::fast()).analyze_module(&module)
///     .map_err(|e| e.to_string())?;
/// assert!(report.by_tag("fill").expect("fill").verdict.is_commutative());
/// assert!(report.by_tag("sum").expect("sum").verdict.is_commutative());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dca {
    config: DcaConfig,
}

impl Dca {
    /// Creates an engine with the given configuration.
    pub fn new(config: DcaConfig) -> Self {
        Dca { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DcaConfig {
        &self.config
    }

    /// Analyzes every loop of `module`, running `main()` with no
    /// arguments.
    ///
    /// # Errors
    ///
    /// Returns [`DcaError::NoMain`] if the module has no entry point.
    pub fn analyze_module(&self, module: &Module) -> Result<DcaReport, DcaError> {
        self.analyze(module, &[])
    }

    /// Analyzes every loop of `module`, running `main(args)` as the
    /// workload.
    ///
    /// # Errors
    ///
    /// Returns [`DcaError::NoMain`] if the module has no entry point.
    pub fn analyze(&self, module: &Module, args: &[Value]) -> Result<DcaReport, DcaError> {
        let main = module.main().ok_or(DcaError::NoMain)?;
        let effects = EffectMap::new(module);
        let mut report = DcaReport::default();
        for (i, _) in module.funcs.iter().enumerate() {
            let fid = FuncId(i as u32);
            let view = FuncView::new(module, fid);
            if view.loops.is_empty() {
                continue;
            }
            let live = Liveness::new(&view);
            for l in view.loops.iter() {
                let result =
                    self.test_loop_inner(module, main, args, &effects, &view, &live, l);
                report.push(result);
            }
        }
        Ok(report)
    }

    /// Analyzes the module under **several workloads** and combines the
    /// verdicts — the paper's §V-D future-work direction ("applying
    /// combined tests for multiple inputs"). A loop is commutative only if
    /// no input refutes it and at least one input exercises it; a single
    /// non-commutative observation wins over any number of commutative
    /// ones.
    ///
    /// # Errors
    ///
    /// Returns [`DcaError::NoMain`] if the module has no entry point.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn analyze_inputs(
        &self,
        module: &Module,
        inputs: &[Vec<Value>],
    ) -> Result<DcaReport, DcaError> {
        assert!(!inputs.is_empty(), "at least one workload is required");
        let mut combined: Option<DcaReport> = None;
        for args in inputs {
            let report = self.analyze(module, args)?;
            combined = Some(match combined {
                None => report,
                Some(prev) => merge_reports(prev, report),
            });
        }
        Ok(combined.expect("inputs is non-empty"))
    }

    /// Tests a single loop (by reference) and returns its result.
    ///
    /// # Errors
    ///
    /// Returns [`DcaError::NoMain`] if the module has no entry point.
    ///
    /// # Panics
    ///
    /// Panics if `lref` does not name a loop of `module`.
    pub fn test_loop(
        &self,
        module: &Module,
        lref: LoopRef,
        args: &[Value],
    ) -> Result<LoopResult, DcaError> {
        let main = module.main().ok_or(DcaError::NoMain)?;
        let effects = EffectMap::new(module);
        let view = FuncView::new(module, lref.func);
        let live = Liveness::new(&view);
        let l = view.loops.get(lref.loop_id);
        Ok(self.test_loop_inner(module, main, args, &effects, &view, &live, l))
    }

    /// Tests each of the first `k` *eligible* invocations (trip ≥ 2) of
    /// one loop separately — a prototype of the context sensitivity the
    /// paper leaves as future work (§IV-E: "Loop candidates can exhibit
    /// commutativity in some execution contexts, but not in others"). The
    /// vector is shorter than `k` when the workload provides fewer
    /// eligible invocations.
    ///
    /// # Errors
    ///
    /// Returns [`DcaError::NoMain`] if the module has no entry point.
    ///
    /// # Panics
    ///
    /// Panics if `lref` does not name a loop of `module`.
    pub fn test_invocations(
        &self,
        module: &Module,
        lref: LoopRef,
        args: &[Value],
        k: u32,
    ) -> Result<Vec<LoopResult>, DcaError> {
        let main = module.main().ok_or(DcaError::NoMain)?;
        let effects = EffectMap::new(module);
        let view = FuncView::new(module, lref.func);
        let live = Liveness::new(&view);
        let l = view.loops.get(lref.loop_id);
        let slice = IteratorSlice::compute_with(&view, l, &effects);
        let base = LoopResult {
            lref,
            tag: l.tag.clone(),
            verdict: LoopVerdict::NotExercised,
            trips: 0,
            permutations_tested: 0,
        };
        if let Some(reason) = exclusion(&view, l, &slice, &effects.io_funcs()) {
            return Ok(vec![LoopResult {
                verdict: LoopVerdict::Excluded(reason),
                ..base
            }]);
        }
        let mut out = Vec::new();
        for invocation in 0..k {
            let mut machine = Machine::new(module);
            let golden = match record_golden_min_trip(
                &mut machine,
                main,
                args,
                view.id,
                l,
                &slice,
                invocation,
                self.config.max_trip,
                self.config.max_steps,
                2,
            ) {
                Ok(g) => g,
                Err(RecordError::NotExercised) => break,
                Err(RecordError::TripLimit) => {
                    out.push(LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::TripLimit),
                        ..base.clone()
                    });
                    break;
                }
                Err(RecordError::Trapped(_)) => {
                    out.push(LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::GoldenTrapped),
                        ..base.clone()
                    });
                    break;
                }
                Err(RecordError::BudgetExhausted) => {
                    out.push(LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::GoldenBudget),
                        ..base.clone()
                    });
                    break;
                }
            };
            let trip = golden.iters.len();
            let seed = self
                .config
                .seed
                .wrapping_add((lref.func.0 as u64) << 32)
                .wrapping_add(lref.loop_id.0 as u64)
                .wrapping_add(invocation as u64);
            let perms = schedules(&self.config.permutations, trip, seed);
            let result = match self
                .verify_permutations(module, &view, &live, l, &slice, &golden, &perms)
            {
                Ok(tested) => LoopResult {
                    verdict: LoopVerdict::Commutative,
                    trips: trip,
                    permutations_tested: tested,
                    ..base.clone()
                },
                Err(violation) => LoopResult {
                    verdict: LoopVerdict::NonCommutative(violation),
                    trips: trip,
                    permutations_tested: 0,
                    ..base.clone()
                },
            };
            out.push(result);
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn test_loop_inner(
        &self,
        module: &Module,
        main: FuncId,
        args: &[Value],
        effects: &EffectMap,
        view: &FuncView<'_>,
        live: &Liveness,
        l: &Loop,
    ) -> LoopResult {
        let lref = LoopRef {
            func: view.id,
            loop_id: l.id,
        };
        let base = LoopResult {
            lref,
            tag: l.tag.clone(),
            verdict: LoopVerdict::NotExercised,
            trips: 0,
            permutations_tested: 0,
        };
        // ---- static stage (paper §IV-A): separation + exclusion.
        let slice = IteratorSlice::compute_with(view, l, effects);
        if let Some(reason) = exclusion(view, l, &slice, &effects.io_funcs()) {
            return LoopResult {
                verdict: LoopVerdict::Excluded(reason),
                ..base
            };
        }
        // ---- dynamic stage: aggregate over the tested invocations.
        let mut trips_seen = 0;
        let mut perms_total = 0;
        let mut exercised = false;
        for invocation in 0..self.config.invocations {
            let mut machine = Machine::new(module);
            let golden = match record_golden_min_trip(
                &mut machine,
                main,
                args,
                view.id,
                l,
                &slice,
                invocation,
                self.config.max_trip,
                self.config.max_steps,
                2,
            ) {
                Ok(g) => g,
                Err(RecordError::NotExercised) => break,
                Err(RecordError::TripLimit) => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::TripLimit),
                        ..base
                    }
                }
                Err(RecordError::Trapped(_)) => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::GoldenTrapped),
                        ..base
                    }
                }
                Err(RecordError::BudgetExhausted) => {
                    return LoopResult {
                        verdict: LoopVerdict::Skipped(SkipReason::GoldenBudget),
                        ..base
                    }
                }
            };
            let trip = golden.iters.len();
            trips_seen = trips_seen.max(trip);
            if trip < 2 {
                // Nothing to permute in this invocation.
                continue;
            }
            exercised = true;
            let seed = self
                .config
                .seed
                .wrapping_add((lref.func.0 as u64) << 32)
                .wrapping_add(lref.loop_id.0 as u64)
                .wrapping_add(invocation as u64);
            let perms = schedules(&self.config.permutations, trip, seed);
            match self.verify_permutations(module, view, live, l, &slice, &golden, &perms) {
                Ok(tested) => perms_total += tested,
                Err(violation) => {
                    return LoopResult {
                        verdict: LoopVerdict::NonCommutative(violation),
                        trips: trip,
                        permutations_tested: perms_total,
                        ..base
                    }
                }
            }
        }
        if !exercised {
            return LoopResult {
                trips: trips_seen,
                ..base
            };
        }
        LoopResult {
            verdict: LoopVerdict::Commutative,
            trips: trips_seen,
            permutations_tested: perms_total,
            ..base
        }
    }

    /// Runs every permutation and verifies it against the golden
    /// reference; returns the number of permutations tested.
    #[allow(clippy::too_many_arguments)]
    fn verify_permutations(
        &self,
        module: &Module,
        view: &FuncView<'_>,
        live: &Liveness,
        l: &Loop,
        slice: &IteratorSlice,
        golden: &GoldenRecord,
        perms: &[Vec<usize>],
    ) -> Result<usize, Violation> {
        let mut machine = Machine::new(module);
        let stop_at_exit = self.config.verify_scope == VerifyScope::LoopExit;
        // Under the loop-exit scope the reference digest comes from an
        // identity replay (identical by construction to the golden run up
        // to the exit point).
        let reference_digest = if stop_at_exit {
            let identity: Vec<usize> = (0..golden.iters.len()).collect();
            machine.restore(&golden.snapshot);
            let mut ctl =
                ReplayController::new(view.id, view.func, l, slice, golden, &identity);
            match run_replay(&mut machine, &mut ctl, true, self.config.max_steps) {
                ReplayEnd::LoopExited => {}
                // `Finished` without a loop exit means the frame unwound
                // before the loop completed: there is no state to digest.
                ReplayEnd::Finished(_) | ReplayEnd::BudgetExhausted => {
                    return Err(Violation::ReplayDiverged)
                }
                ReplayEnd::Trapped(_) => return Err(Violation::ReplayTrapped),
            }
            Some(self.capture_digest(&machine, live, l))
        } else {
            None
        };
        for perm in perms {
            machine.restore(&golden.snapshot);
            let mut ctl = ReplayController::new(view.id, view.func, l, slice, golden, perm);
            let end = run_replay(&mut machine, &mut ctl, stop_at_exit, self.config.max_steps);
            match (&self.config.verify_scope, end) {
                (VerifyScope::ProgramEnd, ReplayEnd::Finished(ret)) => {
                    let outcome = ProgramOutcome::capture(&machine, ret);
                    if !golden.outcome.matches(&outcome, self.config.float_tolerance) {
                        return Err(Violation::OutcomeMismatch);
                    }
                }
                (VerifyScope::LoopExit, ReplayEnd::LoopExited) => {
                    let digest = self.capture_digest(&machine, live, l);
                    let reference = reference_digest.as_ref().expect("captured above");
                    if !reference.matches(&digest, self.config.float_tolerance) {
                        return Err(Violation::OutcomeMismatch);
                    }
                }
                (VerifyScope::LoopExit, ReplayEnd::Finished(_)) => {
                    // The frame unwound before the loop exit was observed:
                    // nothing safe to digest — conservative refutation.
                    return Err(Violation::ReplayDiverged);
                }
                (_, ReplayEnd::Trapped(_)) => return Err(Violation::ReplayTrapped),
                (_, ReplayEnd::BudgetExhausted) => return Err(Violation::ReplayDiverged),
                (VerifyScope::ProgramEnd, ReplayEnd::LoopExited) => {
                    unreachable!("ProgramEnd replays never stop at loop exit")
                }
            }
        }
        Ok(perms.len())
    }

    /// Captures the loop-exit digest. Roots are *all* variables live at
    /// any exit target — not just loop-defined ones — so arrays allocated
    /// before the loop but filled inside it (their pointer is live-in and
    /// live-out) contribute their contents to the digest; globals are
    /// always included by [`StateDigest::capture`].
    fn capture_digest(&self, machine: &Machine<'_>, live: &Liveness, l: &Loop) -> StateDigest {
        let mut vars: std::collections::BTreeSet<dca_ir::VarId> =
            live.loop_live_outs(l).into_iter().collect();
        for t in l.exit_targets() {
            vars.extend(live.live_in(t).iter().copied());
        }
        let roots: Vec<Value> = vars.iter().map(|&v| machine.read_var(v)).collect();
        StateDigest::capture(machine, &roots)
    }
}

/// Combines the per-loop results of two workloads: a refutation
/// (non-commutative) dominates; otherwise any commutative observation
/// upgrades "not exercised"; exclusions and skips are stable across
/// inputs.
fn merge_reports(a: DcaReport, b: DcaReport) -> DcaReport {
    let mut out = DcaReport::default();
    for ra in a.iter() {
        let rb = b.get(ra.lref).expect("same module, same loops");
        let verdict = match (&ra.verdict, &rb.verdict) {
            (LoopVerdict::NonCommutative(v), _) => LoopVerdict::NonCommutative(v.clone()),
            (_, LoopVerdict::NonCommutative(v)) => LoopVerdict::NonCommutative(v.clone()),
            (LoopVerdict::Commutative, _) | (_, LoopVerdict::Commutative) => {
                LoopVerdict::Commutative
            }
            (LoopVerdict::Excluded(r), _) => LoopVerdict::Excluded(*r),
            (LoopVerdict::Skipped(s), _) | (_, LoopVerdict::Skipped(s)) => {
                LoopVerdict::Skipped(s.clone())
            }
            (LoopVerdict::NotExercised, LoopVerdict::NotExercised) => LoopVerdict::NotExercised,
            (LoopVerdict::NotExercised, other) => other.clone(),
        };
        out.push(crate::report::LoopResult {
            lref: ra.lref,
            tag: ra.tag.clone(),
            verdict,
            trips: ra.trips.max(rb.trips),
            permutations_tested: ra.permutations_tested + rb.permutations_tested,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PermutationSet;

    fn analyze(src: &str) -> DcaReport {
        let m = dca_ir::compile(src).expect("compile");
        Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze")
    }

    fn verdict(report: &DcaReport, tag: &str) -> LoopVerdict {
        report.by_tag(tag).expect("tagged loop").verdict.clone()
    }

    #[test]
    fn paper_fig1a_array_map_is_commutative() {
        let r = analyze(
            "let array: [int; 32];\n\
             fn main() -> int { \
             @map: for (let i: int = 0; i < 32; i = i + 1) { array[i] = array[i] + 1; } \
             return array[7]; }",
        );
        assert_eq!(verdict(&r, "map"), LoopVerdict::Commutative);
    }

    #[test]
    fn paper_fig1b_pointer_map_is_commutative() {
        // The PLDS twin of Fig. 1(a): dependence analysis fails on the
        // `ptr = ptr->next` cross-iteration dependence, DCA does not.
        let r = analyze(
            "struct Node { val: int, next: *Node }\n\
             fn main() -> int {\n\
               let head: *Node = null;\n\
               for (let i: int = 0; i < 16; i = i + 1) {\n\
                 let n: *Node = new Node; n.val = i; n.next = head; head = n;\n\
               }\n\
               let ptr: *Node = head;\n\
               @map: while (ptr != null) { ptr.val = ptr.val + 1; ptr = ptr.next; }\n\
               let s: int = 0; let q: *Node = head;\n\
               while (q != null) { s = s + q.val; q = q.next; }\n\
               return s;\n\
             }",
        );
        assert_eq!(verdict(&r, "map"), LoopVerdict::Commutative);
    }

    #[test]
    fn recurrence_is_non_commutative() {
        let r = analyze(
            "fn main() -> int { let a: [int; 16]; a[0] = 1; let s: int = 0; \
             @rec: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] * 2; } \
             for (let i: int = 0; i < 16; i = i + 1) { s = s + a[i]; } return s; }",
        );
        assert!(matches!(
            verdict(&r, "rec"),
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch)
        ));
    }

    #[test]
    fn reduction_is_commutative() {
        let r = analyze(
            "fn main() -> int { let s: int = 0; \
             @red: for (let i: int = 0; i < 20; i = i + 1) { s = s + i * i; } \
             return s; }",
        );
        assert_eq!(verdict(&r, "red"), LoopVerdict::Commutative);
    }

    #[test]
    fn io_loop_is_excluded() {
        let r = analyze(
            "fn main() { \
             @io: for (let i: int = 0; i < 4; i = i + 1) { print(i); } }",
        );
        assert!(matches!(verdict(&r, "io"), LoopVerdict::Excluded(_)));
    }

    #[test]
    fn unexercised_loop_reported() {
        let r = analyze(
            "fn main() { let s: int = 0; let n: int = 0; \
             @dead: for (let i: int = 0; i < n; i = i + 1) { s = s + 1; } }",
        );
        assert_eq!(verdict(&r, "dead"), LoopVerdict::NotExercised);
    }

    #[test]
    fn first_match_search_is_non_commutative() {
        let r = analyze(
            "fn main() -> int { let a: [int; 16]; let first: int = 0 - 1; \
             for (let i: int = 0; i < 16; i = i + 1) { a[i] = i * 7 % 16; } \
             @find: for (let i: int = 0; i < 16; i = i + 1) { \
               if (a[i] > 9 && first < 0) { first = i; } } \
             return first; }",
        );
        assert!(matches!(
            verdict(&r, "find"),
            LoopVerdict::NonCommutative(_)
        ));
    }

    #[test]
    fn loop_exit_scope_detects_map_commutativity() {
        let m = dca_ir::compile(
            "fn main() -> int { let a: [int; 16]; \
             @map: for (let i: int = 0; i < 16; i = i + 1) { a[i] = i * 2; } \
             return a[3]; }",
        )
        .expect("compile");
        let cfg = DcaConfig {
            verify_scope: VerifyScope::LoopExit,
            ..DcaConfig::fast()
        };
        let r = Dca::new(cfg).analyze_module(&m).expect("analyze");
        assert_eq!(
            r.by_tag("map").expect("map").verdict,
            LoopVerdict::Commutative
        );
    }

    #[test]
    fn exhaustive_permutations_agree_with_presets_on_small_loops() {
        let src = "fn main() -> int { let s: int = 0; \
             @red: for (let i: int = 0; i < 5; i = i + 1) { s = s + i; } return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let cfg = DcaConfig {
            permutations: PermutationSet::Exhaustive {
                max_trip: 6,
                fallback_shuffles: 2,
            },
            ..DcaConfig::fast()
        };
        let r = Dca::new(cfg).analyze_module(&m).expect("analyze");
        let res = r.by_tag("red").expect("red");
        assert_eq!(res.verdict, LoopVerdict::Commutative);
        assert_eq!(res.permutations_tested, 120 - 1);
    }

    #[test]
    fn nested_loops_tested_independently() {
        let r = analyze(
            "fn main() -> int { let a: [int; 64]; let s: int = 0; \
             @outer: for (let i: int = 0; i < 8; i = i + 1) { \
               @inner: for (let j: int = 0; j < 8; j = j + 1) { \
                 a[i * 8 + j] = i + j; } } \
             for (let k: int = 0; k < 64; k = k + 1) { s = s + a[k]; } return s; }",
        );
        assert_eq!(verdict(&r, "outer"), LoopVerdict::Commutative);
        assert_eq!(verdict(&r, "inner"), LoopVerdict::Commutative);
    }

    #[test]
    fn float_reductions_verify_under_tolerance() {
        let r = analyze(
            "fn main() -> float { let s: float = 0.0; \
             @fred: for (let i: int = 0; i < 50; i = i + 1) { \
               s = s + 1.0 / (i as float + 1.0); } \
             return s; }",
        );
        assert_eq!(verdict(&r, "fred"), LoopVerdict::Commutative);
    }

    #[test]
    fn per_invocation_testing_exposes_context_sensitivity() {
        // The callee loop is commutative when the caller passes disjoint
        // strides and a recurrence when it passes stride 1 — different
        // verdicts per invocation (the §IV-E context-sensitivity case).
        let src = "fn upd(a: *int, stride: int) { \
             @u: for (let i: int = 0; i < 12; i = i + 1) { \
               a[(i + stride) % 24] = a[i] + 1; } }\n\
             fn main() -> int { let a: *int = new [int; 24]; let s: int = 0; \
             for (let i: int = 0; i < 24; i = i + 1) { a[i] = i * i % 7; } \
             upd(a, 12); upd(a, 1); \
             for (let i: int = 0; i < 24; i = i + 1) { s = s + a[i] * (i + 1); } \
             return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let lref = dca_ir::all_loops(&m)
            .into_iter()
            .find(|(_, t)| t.as_deref() == Some("u"))
            .expect("tag")
            .0;
        let results = Dca::new(DcaConfig::fast())
            .test_invocations(&m, lref, &[], 4)
            .expect("analyze");
        assert_eq!(results.len(), 2, "two invocations exist");
        assert_eq!(results[0].verdict, LoopVerdict::Commutative);
        assert!(matches!(
            results[1].verdict,
            LoopVerdict::NonCommutative(_)
        ));
    }

    #[test]
    fn multi_input_analysis_refutation_dominates() {
        // An input-dependent dependence in the style of 429.mcf: with
        // stride >= trip the writes never collide; with stride 1 they do.
        let src = "fn main(stride: int) -> int { let a: [int; 64]; let s: int = 0; \
             for (let i: int = 0; i < 32; i = i + 1) { a[i] = i * i % 7; } \
             @upd: for (let i: int = 0; i < 16; i = i + 1) { \
               a[(i + stride) % 32] = a[i] + 1; } \
             for (let i: int = 0; i < 32; i = i + 1) { s = s + a[i] * (i + 1); } \
             return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let dca = Dca::new(DcaConfig::fast());
        // stride 16: reads a[0..16], writes a[16..32] — disjoint.
        let benign = dca
            .analyze(&m, &[Value::Int(16)])
            .expect("analyze");
        assert_eq!(
            benign.by_tag("upd").expect("upd").verdict,
            LoopVerdict::Commutative
        );
        // stride 1: a[i+1] = a[i] + 1 — a genuine recurrence.
        let combined = dca
            .analyze_inputs(&m, &[vec![Value::Int(16)], vec![Value::Int(1)]])
            .expect("analyze");
        assert!(matches!(
            combined.by_tag("upd").expect("upd").verdict,
            LoopVerdict::NonCommutative(_)
        ));
    }

    #[test]
    fn multi_input_analysis_upgrades_not_exercised() {
        let src = "fn main(n: int) -> int { let a: [int; 32]; let s: int = 0; \
             @m: for (let i: int = 0; i < n; i = i + 1) { a[i] = i * 2; } \
             for (let i: int = 0; i < 32; i = i + 1) { s = s + a[i]; } return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let dca = Dca::new(DcaConfig::fast());
        let combined = dca
            .analyze_inputs(&m, &[vec![Value::Int(0)], vec![Value::Int(20)]])
            .expect("analyze");
        assert_eq!(
            combined.by_tag("m").expect("m").verdict,
            LoopVerdict::Commutative
        );
    }

    #[test]
    fn second_loop_in_other_function_analyzed() {
        let r = analyze(
            "fn kernel(a: *int, n: int) { \
             @k: for (let i: int = 0; i < n; i = i + 1) { a[i] = a[i] * 2; } }\n\
             fn main() -> int { let a: *int = new [int; 16]; \
             for (let i: int = 0; i < 16; i = i + 1) { a[i] = i; } \
             kernel(a, 16); return a[5]; }",
        );
        assert_eq!(verdict(&r, "k"), LoopVerdict::Commutative);
    }
}
