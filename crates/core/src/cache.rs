//! Persistent verdict cache: incremental re-analysis across engine runs
//! (DESIGN.md §15).
//!
//! A commutativity verdict is a pure function of (program, workload,
//! verdict-affecting configuration). This module keys each loop's verdict
//! by a 128-bit [`Fingerprint`] over exactly those inputs and persists
//! the map as schema-versioned, hand-rolled JSON (schema
//! [`SCHEMA`]), so a re-run of an unchanged program skips golden
//! recording and permuted replay entirely — the caching/scaling step the
//! ROADMAP north-star calls for, and the reuse that Koskinen & Bansal's
//! verification-based treatments of commutativity get by construction.
//!
//! # Key derivation
//!
//! The **base** fingerprint absorbs, in order: the schema string; every
//! [`DcaConfig`] knob that can change a verdict (permutation preset,
//! seed, verify scope, float tolerance bits, digest mode, invocations,
//! step budget, trip limit — *not* `threads` or `obs`, which are
//! guaranteed verdict-neutral); the entry arguments; and the canonical
//! text of the whole module ([`dca_ir::canonical_module`] — the verdict
//! depends on the whole program: callees run inside the loop, and
//! program-end verification observes everything downstream). The
//! **per-loop** key extends a copy of the base with the loop's identity
//! and its canonical body text. Any change to any component lands in the
//! digest, so invalidation is automatic: the old entry simply never
//! matches again. Entries are never evicted; the file is a content-keyed
//! map, not an LRU.
//!
//! # Integrity
//!
//! A cache file is advisory input from disk and is never trusted:
//!
//! * file-level damage (unreadable, truncated, non-JSON, wrong schema)
//!   degrades the whole run to [`CacheDecision::Bypass`] — analysis
//!   proceeds from scratch and the damaged file is left untouched for
//!   inspection;
//! * entry-level damage is caught by a per-entry fingerprint checksum
//!   over the entry's own fields, so a mutated-but-still-parseable entry
//!   is dropped rather than replayed as a wrong verdict.
//!
//! Both paths increment the `engine.cache_fault` counter and neither can
//! panic — the `cache_fuzz` test drives [`dca_rng`]-seeded byte
//! mutations through the loader to hold that line.
//!
//! # What is never cached
//!
//! Verdicts that are not functions of the key: [`SkipReason::Deadline`]
//! (host speed), [`SkipReason::EngineFault`] (contained panic) and
//! [`SkipReason::Cancelled`] (operator action). Runs with
//! verdict-perturbing fault injection or wall deadlines configured
//! bypass the cache wholesale for the same reason — see
//! [`DcaConfig::cache`](crate::DcaConfig::cache).

use crate::config::{DcaConfig, DigestMode, PermutationSet, VerifyScope};
use crate::fault::{FaultKind, FaultPlan};
use crate::outcome::Divergence;
use crate::report::{LoopVerdict, SkipReason, Violation};
use dca_analysis::ExclusionReason;
use dca_interp::{Trap, Value};
use dca_ir::{canonical_loop_body, canonical_module, FuncView, Loop, Module};
use dca_obs::{parse_json, Json};
use dca_rng::Fingerprint;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Schema identifier of the on-disk format. Bumping it orphans every
/// existing file (they load as a schema mismatch → bypass), so bump only
/// when the entry layout itself changes incompatibly; key-derivation
/// changes need no bump — they change the keys, which invalidates
/// entries individually.
pub const SCHEMA: &str = "dca-cache/1";

/// The engine's per-loop cache consultation result.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheDecision {
    /// A valid entry existed; the carried verdict is served without
    /// recording or replaying.
    Hit(CachedVerdict),
    /// The cache was consulted and had no entry; the verdict is computed
    /// and (when cacheable) stored.
    Miss,
    /// The cache was not consulted at all: none configured, the file was
    /// damaged, or the run uses fault injection / wall deadlines.
    Bypass,
}

/// The cached portion of a [`crate::LoopResult`]: the verdict plus the
/// deterministic counters that ride with it. `wall` is deliberately
/// absent (never reproducible), as is `lref` (implied by the key).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedVerdict {
    /// The loop's source tag, if any.
    pub tag: Option<String>,
    /// The verdict.
    pub verdict: LoopVerdict,
    /// Trip count observed during the golden run.
    pub trips: usize,
    /// Permutations executed when the verdict was computed.
    pub permutations_tested: usize,
    /// Interpreter steps the verification consumed when computed.
    pub replay_steps: u64,
}

/// Cache statistics for one analysis run, surfaced as
/// [`crate::DcaReport::cache`] and printed by the CLI footer. All fields
/// are derived from the ordered result vector after the deterministic
/// fold, so they are identical at every worker-thread count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// The cache file consulted (or that would have been).
    pub path: PathBuf,
    /// True when the whole run bypassed the cache (damaged file, fault
    /// injection, or wall deadlines).
    pub bypassed: bool,
    /// Loops served from the cache.
    pub hits: u64,
    /// Loops consulted but not found.
    pub misses: u64,
    /// New entries written back this run.
    pub stores: u64,
    /// Integrity faults absorbed: file-level damage, checksum-rejected
    /// entries, or a failed write-back. Mirrored as the
    /// `engine.cache_fault` counter.
    pub faults: u64,
}

/// Builds per-loop cache keys for one (config, workload, module) triple.
///
/// Construction does the expensive work once — one streaming fingerprint
/// pass over the canonical module text — and each loop key is a copy of
/// that state plus the loop's identity and body.
pub struct KeyBuilder {
    base: Fingerprint,
}

impl KeyBuilder {
    /// Absorbs the verdict-affecting configuration, the workload and the
    /// whole module into the base fingerprint.
    #[must_use]
    pub fn new(config: &DcaConfig, args: &[Value], module: &Module) -> Self {
        let mut fp = Fingerprint::new();
        fp.push_str(SCHEMA);
        match &config.permutations {
            PermutationSet::Presets { shuffles } => {
                fp.push(0);
                fp.push(u64::from(*shuffles));
            }
            PermutationSet::ReverseOnly => fp.push(1),
            PermutationSet::Shuffles { shuffles } => {
                fp.push(2);
                fp.push(u64::from(*shuffles));
            }
            PermutationSet::Exhaustive {
                max_trip,
                fallback_shuffles,
            } => {
                fp.push(3);
                fp.push(*max_trip as u64);
                fp.push(u64::from(*fallback_shuffles));
            }
        }
        fp.push(config.seed);
        fp.push(match config.verify_scope {
            VerifyScope::ProgramEnd => 0,
            VerifyScope::LoopExit => 1,
        });
        fp.push(config.float_tolerance.to_bits());
        fp.push(match config.digest {
            DigestMode::Auto => 0,
            DigestMode::Structural => 1,
        });
        fp.push(u64::from(config.invocations));
        fp.push(config.max_steps);
        fp.push(config.max_trip as u64);
        // The heap budget changes verdicts (a budgeted replay can skip
        // where an unbudgeted one commits), so it is part of the key.
        match config.max_heap_cells {
            None => fp.push(0),
            Some(cells) => {
                fp.push(1);
                fp.push(cells);
            }
        }
        fp.push(args.len() as u64);
        for v in args {
            match v {
                Value::Int(i) => {
                    fp.push(1);
                    fp.push(*i as u64);
                }
                Value::Float(x) => {
                    fp.push(2);
                    fp.push(x.to_bits());
                }
                Value::Bool(b) => {
                    fp.push(3);
                    fp.push(u64::from(*b));
                }
                // Entry pointers cannot be constructed portably; absorb
                // their debug rendering so distinct values stay distinct.
                other => {
                    fp.push(4);
                    fp.push_str(&format!("{other:?}"));
                }
            }
        }
        fp.push_str(&canonical_module(module));
        KeyBuilder { base: fp }
    }

    /// The 128-bit key for one loop of the module.
    #[must_use]
    pub fn loop_key(&self, view: &FuncView<'_>, l: &Loop) -> u128 {
        let mut fp = self.base;
        fp.push(u64::from(view.id.0));
        fp.push(u64::from(l.id.0));
        fp.push_str(&canonical_loop_body(view.func, l));
        fp.digest()
    }

    /// Keys for every loop of `module` in the engine's deterministic
    /// (function, loop) analysis order — index-aligned with the work
    /// list `analyze` builds.
    #[must_use]
    pub fn all_loop_keys(&self, module: &Module) -> Vec<u128> {
        let mut out = Vec::new();
        for i in 0..module.funcs.len() {
            let view = FuncView::new(module, dca_ir::FuncId(i as u32));
            for l in view.loops.iter() {
                out.push(self.loop_key(&view, l));
            }
        }
        out
    }
}

/// An open verdict cache: the entries loaded from disk plus those stored
/// this run. Lookups are read-only and thread-safe by `&self`; stores
/// happen from the single-threaded post-fold pass in `analyze`.
#[derive(Debug)]
pub struct VerdictCache {
    path: PathBuf,
    entries: BTreeMap<u128, CachedVerdict>,
    /// File-level damage: consult nothing, store nothing.
    bypassed: bool,
    /// Integrity faults observed while loading.
    load_faults: u64,
    /// Entries added this run (subset of `entries`' keys).
    added: u64,
}

impl VerdictCache {
    /// Opens the cache at `path`. A missing file is an empty cache; a
    /// damaged one (unreadable, truncated, non-JSON, schema mismatch)
    /// yields a bypassed cache that serves no hits and writes nothing,
    /// leaving the damaged file in place. Never panics and never errors —
    /// degradation is the contract.
    #[must_use]
    pub fn open(path: &Path) -> Self {
        let mut cache = VerdictCache {
            path: path.to_path_buf(),
            entries: BTreeMap::new(),
            bypassed: false,
            load_faults: 0,
            added: 0,
        };
        if !path.exists() {
            return cache;
        }
        let Ok(text) = std::fs::read_to_string(path) else {
            cache.bypassed = true;
            cache.load_faults = 1;
            return cache;
        };
        match parse_file(&text) {
            Ok((entries, dropped)) => {
                cache.entries = entries;
                cache.load_faults = dropped;
            }
            Err(()) => {
                cache.bypassed = true;
                cache.load_faults = 1;
            }
        }
        cache
    }

    /// A cache that refuses all lookups and stores — used when fault
    /// injection or wall deadlines make verdicts non-functions of the
    /// key. Carries the path so [`CacheStats`] can still report it.
    #[must_use]
    pub fn bypass(path: &Path) -> Self {
        VerdictCache {
            path: path.to_path_buf(),
            entries: BTreeMap::new(),
            bypassed: true,
            load_faults: 0,
            added: 0,
        }
    }

    /// The cache file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True when the whole run is bypassing this cache.
    #[must_use]
    pub fn is_bypassed(&self) -> bool {
        self.bypassed
    }

    /// Integrity faults observed while loading the file.
    #[must_use]
    pub fn load_faults(&self) -> u64 {
        self.load_faults
    }

    /// Number of entries currently held (loaded plus stored).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consults the cache for one loop key.
    #[must_use]
    pub fn decide(&self, key: u128) -> CacheDecision {
        if self.bypassed {
            return CacheDecision::Bypass;
        }
        match self.entries.get(&key) {
            Some(v) => CacheDecision::Hit(v.clone()),
            None => CacheDecision::Miss,
        }
    }

    /// Stores a verdict under `key` if it is cacheable (see the module
    /// docs) and not already present. Returns whether it was stored.
    pub fn store(&mut self, key: u128, v: &CachedVerdict) -> bool {
        if self.bypassed || self.entries.contains_key(&key) || !cacheable(&v.verdict) {
            return false;
        }
        self.entries.insert(key, v.clone());
        self.added += 1;
        true
    }

    /// Writes the cache back to disk (via a sibling temp file and rename,
    /// so a crash mid-write cannot truncate the previous file in place).
    /// A no-op when bypassed or when nothing was added this run.
    ///
    /// # Errors
    ///
    /// Returns the I/O error; callers degrade it to a cache fault.
    pub fn save(&self) -> std::io::Result<()> {
        self.save_faulted(None)
    }

    /// [`save`](Self::save), with an optional [`FaultKind::KillSave`]
    /// plan simulating a process kill at a chosen point of the write:
    /// stage `0` dies after the temp file is fully written but before
    /// the rename; any other stage dies mid temp-file write, leaving a
    /// torn temp file. Either way the previous cache file is untouched —
    /// that is the atomicity property the chaos suite asserts.
    ///
    /// # Errors
    ///
    /// Returns the I/O error (injected or real); callers degrade it to a
    /// cache fault.
    pub fn save_faulted(&self, fault: Option<&FaultPlan>) -> std::io::Result<()> {
        if self.bypassed || self.added == 0 {
            return Ok(());
        }
        let mut doc = String::from("{\"schema\": \"");
        doc.push_str(SCHEMA);
        doc.push_str("\", \"tool\": \"dca ");
        doc.push_str(env!("CARGO_PKG_VERSION"));
        doc.push_str("\", \"entries\": [");
        for (i, (key, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str("\n  ");
            doc.push_str(
                &encode_entry(*key, v)
                    .expect("stored entries are cacheable by construction")
                    .to_string(),
            );
        }
        doc.push_str("\n]}\n");
        let tmp = self.path.with_extension("tmp");
        match fault.map(|p| p.kind) {
            Some(FaultKind::KillSave { stage: 0 }) => {
                std::fs::write(&tmp, &doc)?;
                return Err(std::io::Error::other(
                    "injected kill after temp write, before rename",
                ));
            }
            Some(FaultKind::KillSave { .. }) => {
                std::fs::write(&tmp, &doc[..doc.len() / 2])?;
                return Err(std::io::Error::other("injected kill mid temp write"));
            }
            _ => {}
        }
        std::fs::write(&tmp, &doc)?;
        std::fs::rename(&tmp, &self.path)
    }
}

/// True when the verdict is a pure function of the cache key.
fn cacheable(v: &LoopVerdict) -> bool {
    encode_verdict(v).is_some()
}

/// Parses a whole cache document. `Err(())` means file-level damage
/// (bypass); `Ok` carries the surviving entries plus the count of
/// dropped (checksum- or shape-rejected) ones.
#[allow(clippy::result_unit_err)]
fn parse_file(text: &str) -> Result<(BTreeMap<u128, CachedVerdict>, u64), ()> {
    let doc = parse_json(text).map_err(|_| ())?;
    let obj = doc.as_object().ok_or(())?;
    if obj.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(());
    }
    let list = obj.get("entries").and_then(Json::as_array).ok_or(())?;
    let mut out = BTreeMap::new();
    let mut dropped = 0u64;
    for e in list {
        match decode_entry(e) {
            Some((key, v)) => {
                out.insert(key, v);
            }
            None => dropped += 1,
        }
    }
    Ok((out, dropped))
}

/// The per-entry integrity checksum: a fingerprint over every field the
/// entry carries, so any single-field mutation that survives JSON
/// parsing is still rejected.
fn entry_check(key: u128, v: &CachedVerdict, verdict_json: &str) -> u128 {
    let mut fp = Fingerprint::new();
    fp.push(key as u64);
    fp.push((key >> 64) as u64);
    match &v.tag {
        Some(t) => {
            fp.push(1);
            fp.push_str(t);
        }
        None => fp.push(0),
    }
    fp.push_str(verdict_json);
    fp.push(v.trips as u64);
    fp.push(v.permutations_tested as u64);
    fp.push(v.replay_steps);
    fp.digest()
}

fn encode_entry(key: u128, v: &CachedVerdict) -> Option<Json> {
    let verdict = encode_verdict(&v.verdict)?;
    let verdict_text = verdict.to_string();
    let mut m = BTreeMap::new();
    m.insert("key".to_string(), Json::Str(format!("{key:032x}")));
    m.insert(
        "check".to_string(),
        Json::Str(format!("{:032x}", entry_check(key, v, &verdict_text))),
    );
    m.insert(
        "tag".to_string(),
        match &v.tag {
            Some(t) => Json::Str(t.clone()),
            None => Json::Null,
        },
    );
    m.insert("verdict".to_string(), verdict);
    m.insert("trips".to_string(), Json::Num(v.trips as f64));
    m.insert("perms".to_string(), Json::Num(v.permutations_tested as f64));
    m.insert("replay_steps".to_string(), Json::Num(v.replay_steps as f64));
    Some(Json::Obj(m))
}

fn decode_entry(e: &Json) -> Option<(u128, CachedVerdict)> {
    let m = e.as_object()?;
    let key = u128::from_str_radix(m.get("key")?.as_str()?, 16).ok()?;
    let check = u128::from_str_radix(m.get("check")?.as_str()?, 16).ok()?;
    let tag = match m.get("tag")? {
        Json::Null => None,
        Json::Str(s) => Some(s.clone()),
        _ => return None,
    };
    let verdict_json = m.get("verdict")?;
    let verdict = decode_verdict(verdict_json)?;
    let v = CachedVerdict {
        tag,
        verdict,
        trips: m.get("trips")?.as_u64()? as usize,
        permutations_tested: m.get("perms")?.as_u64()? as usize,
        replay_steps: m.get("replay_steps")?.as_u64()?,
    };
    // Re-encode the verdict through the writer so the checksum covers the
    // canonical text, not whatever byte soup the file held.
    let canon = encode_verdict(&v.verdict)?.to_string();
    if entry_check(key, &v, &canon) != check {
        return None;
    }
    Some((key, v))
}

// ---- verdict serialization ------------------------------------------------
//
// `None` from an encoder means "not cacheable" (deadline/fault verdicts,
// traps carrying non-reconstructible payloads); `None` from a decoder
// means "damaged entry" — both are handled by dropping the entry.

fn obj(kind: &str) -> BTreeMap<String, Json> {
    let mut m = BTreeMap::new();
    m.insert("kind".to_string(), Json::Str(kind.to_string()));
    m
}

pub(crate) fn encode_verdict(v: &LoopVerdict) -> Option<Json> {
    let m = match v {
        LoopVerdict::Commutative => obj("commutative"),
        LoopVerdict::NonCommutative(violation) => {
            let mut m = obj("non_commutative");
            m.insert("violation".to_string(), encode_violation(violation)?);
            m
        }
        LoopVerdict::Excluded(r) => {
            let mut m = obj("excluded");
            m.insert(
                "reason".to_string(),
                Json::Str(
                    match r {
                        ExclusionReason::PerformsIo => "performs_io",
                        ExclusionReason::EmptyPayload => "empty_payload",
                    }
                    .to_string(),
                ),
            );
            m
        }
        LoopVerdict::NotExercised => obj("not_exercised"),
        LoopVerdict::Skipped(r) => {
            let mut m = obj("skipped");
            m.insert("reason".to_string(), encode_skip(r)?);
            m
        }
    };
    Some(Json::Obj(m))
}

pub(crate) fn decode_verdict(j: &Json) -> Option<LoopVerdict> {
    let m = j.as_object()?;
    Some(match m.get("kind")?.as_str()? {
        "commutative" => LoopVerdict::Commutative,
        "non_commutative" => LoopVerdict::NonCommutative(decode_violation(m.get("violation")?)?),
        "excluded" => LoopVerdict::Excluded(match m.get("reason")?.as_str()? {
            "performs_io" => ExclusionReason::PerformsIo,
            "empty_payload" => ExclusionReason::EmptyPayload,
            _ => return None,
        }),
        "not_exercised" => LoopVerdict::NotExercised,
        "skipped" => LoopVerdict::Skipped(decode_skip(m.get("reason")?)?),
        _ => return None,
    })
}

fn encode_violation(v: &Violation) -> Option<Json> {
    let m = match v {
        Violation::OutcomeMismatch(d) => {
            let mut m = obj("outcome_mismatch");
            if let Some(d) = d {
                m.insert("divergence".to_string(), encode_divergence(d));
            }
            m
        }
        Violation::ReplayTrapped(t) => {
            let mut m = obj("replay_trapped");
            m.insert("trap".to_string(), encode_trap(t)?);
            m
        }
        Violation::ReplayDiverged => obj("replay_diverged"),
    };
    Some(Json::Obj(m))
}

fn decode_violation(j: &Json) -> Option<Violation> {
    let m = j.as_object()?;
    Some(match m.get("kind")?.as_str()? {
        "outcome_mismatch" => Violation::OutcomeMismatch(match m.get("divergence") {
            Some(d) => Some(decode_divergence(d)?),
            None => None,
        }),
        "replay_trapped" => Violation::ReplayTrapped(decode_trap(m.get("trap")?)?),
        "replay_diverged" => Violation::ReplayDiverged,
        _ => return None,
    })
}

fn encode_skip(r: &SkipReason) -> Option<Json> {
    let m = match r {
        SkipReason::TripLimit => obj("trip_limit"),
        SkipReason::GoldenTrapped(t) => {
            let mut m = obj("golden_trapped");
            m.insert("trap".to_string(), encode_trap(t)?);
            m
        }
        SkipReason::GoldenBudget => obj("golden_budget"),
        SkipReason::ReplayBudget => obj("replay_budget"),
        // The heap budget is part of the cache key, so a budget skip is a
        // pure function of it — cacheable like the step-budget skips.
        SkipReason::MemoryBudget => obj("memory_budget"),
        // Host-speed, contained-panic and operator-cancellation verdicts
        // are not functions of the key; replaying them from a cache would
        // be a wrong verdict.
        SkipReason::Deadline | SkipReason::EngineFault(_) | SkipReason::Cancelled => return None,
    };
    Some(Json::Obj(m))
}

fn decode_skip(j: &Json) -> Option<SkipReason> {
    let m = j.as_object()?;
    Some(match m.get("kind")?.as_str()? {
        "trip_limit" => SkipReason::TripLimit,
        "golden_trapped" => SkipReason::GoldenTrapped(decode_trap(m.get("trap")?)?),
        "golden_budget" => SkipReason::GoldenBudget,
        "replay_budget" => SkipReason::ReplayBudget,
        "memory_budget" => SkipReason::MemoryBudget,
        _ => return None,
    })
}

fn encode_trap(t: &Trap) -> Option<Json> {
    let m = match t {
        Trap::NullDeref => obj("null_deref"),
        Trap::OutOfBounds { len, index } => {
            let mut m = obj("out_of_bounds");
            m.insert("len".to_string(), Json::Num(*len as f64));
            m.insert("index".to_string(), Json::Num(*index as f64));
            m
        }
        Trap::DivByZero => obj("div_by_zero"),
        Trap::StackOverflow => obj("stack_overflow"),
        Trap::OutOfMemory => obj("out_of_memory"),
        Trap::ArityMismatch { expected, given } => {
            let mut m = obj("arity_mismatch");
            m.insert("expected".to_string(), Json::Num(*expected as f64));
            m.insert("given".to_string(), Json::Num(*given as f64));
            m
        }
        // `IllTyped` carries a `&'static str` that cannot be
        // reconstructed from a file; `Injected`/`NotRunning` are
        // harness-internal and never legitimate verdict payloads.
        Trap::IllTyped(_) | Trap::Injected | Trap::NotRunning => return None,
    };
    Some(Json::Obj(m))
}

fn as_i64(j: &Json) -> Option<i64> {
    match j {
        Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
        _ => None,
    }
}

fn decode_trap(j: &Json) -> Option<Trap> {
    let m = j.as_object()?;
    Some(match m.get("kind")?.as_str()? {
        "null_deref" => Trap::NullDeref,
        "out_of_bounds" => Trap::OutOfBounds {
            len: m.get("len")?.as_u64()? as usize,
            index: as_i64(m.get("index")?)?,
        },
        "div_by_zero" => Trap::DivByZero,
        "stack_overflow" => Trap::StackOverflow,
        "out_of_memory" => Trap::OutOfMemory,
        "arity_mismatch" => Trap::ArityMismatch {
            expected: m.get("expected")?.as_u64()? as usize,
            given: m.get("given")?.as_u64()? as usize,
        },
        _ => return None,
    })
}

fn str_field(m: &mut BTreeMap<String, Json>, k: &str, v: &str) {
    m.insert(k.to_string(), Json::Str(v.to_string()));
}

fn encode_divergence(d: &Divergence) -> Json {
    let m = match d {
        Divergence::Root {
            name,
            golden,
            permuted,
        } => {
            let mut m = obj("root");
            str_field(&mut m, "name", name);
            str_field(&mut m, "golden", golden);
            str_field(&mut m, "permuted", permuted);
            m
        }
        Divergence::ObjectCount { golden, permuted } => {
            let mut m = obj("object_count");
            m.insert("golden".to_string(), Json::Num(*golden as f64));
            m.insert("permuted".to_string(), Json::Num(*permuted as f64));
            m
        }
        Divergence::ObjectShape {
            object,
            golden,
            permuted,
        } => {
            let mut m = obj("object_shape");
            m.insert("object".to_string(), Json::Num(f64::from(*object)));
            str_field(&mut m, "golden", golden);
            str_field(&mut m, "permuted", permuted);
            m
        }
        Divergence::Cell {
            object,
            cell,
            golden,
            permuted,
        } => {
            let mut m = obj("cell");
            m.insert("object".to_string(), Json::Num(f64::from(*object)));
            m.insert("cell".to_string(), Json::Num(f64::from(*cell)));
            str_field(&mut m, "golden", golden);
            str_field(&mut m, "permuted", permuted);
            m
        }
        Divergence::OutputLen { golden, permuted } => {
            let mut m = obj("output_len");
            m.insert("golden".to_string(), Json::Num(*golden as f64));
            m.insert("permuted".to_string(), Json::Num(*permuted as f64));
            m
        }
        Divergence::Output {
            index,
            golden,
            permuted,
        } => {
            let mut m = obj("output");
            m.insert("index".to_string(), Json::Num(*index as f64));
            str_field(&mut m, "golden", golden);
            str_field(&mut m, "permuted", permuted);
            m
        }
        Divergence::Ret { golden, permuted } => {
            let mut m = obj("ret");
            str_field(&mut m, "golden", golden);
            str_field(&mut m, "permuted", permuted);
            m
        }
    };
    Json::Obj(m)
}

fn decode_divergence(j: &Json) -> Option<Divergence> {
    let m = j.as_object()?;
    let s = |k: &str| -> Option<String> { Some(m.get(k)?.as_str()?.to_string()) };
    Some(match m.get("kind")?.as_str()? {
        "root" => Divergence::Root {
            name: s("name")?,
            golden: s("golden")?,
            permuted: s("permuted")?,
        },
        "object_count" => Divergence::ObjectCount {
            golden: m.get("golden")?.as_u64()? as usize,
            permuted: m.get("permuted")?.as_u64()? as usize,
        },
        "object_shape" => Divergence::ObjectShape {
            object: u32::try_from(m.get("object")?.as_u64()?).ok()?,
            golden: s("golden")?,
            permuted: s("permuted")?,
        },
        "cell" => Divergence::Cell {
            object: u32::try_from(m.get("object")?.as_u64()?).ok()?,
            cell: u32::try_from(m.get("cell")?.as_u64()?).ok()?,
            golden: s("golden")?,
            permuted: s("permuted")?,
        },
        "output_len" => Divergence::OutputLen {
            golden: m.get("golden")?.as_u64()? as usize,
            permuted: m.get("permuted")?.as_u64()? as usize,
        },
        "output" => Divergence::Output {
            index: m.get("index")?.as_u64()? as usize,
            golden: s("golden")?,
            permuted: s("permuted")?,
        },
        "ret" => Divergence::Ret {
            golden: s("golden")?,
            permuted: s("permuted")?,
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dca-cache-unit-{label}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample_verdicts() -> Vec<LoopVerdict> {
        vec![
            LoopVerdict::Commutative,
            LoopVerdict::NotExercised,
            LoopVerdict::Excluded(ExclusionReason::PerformsIo),
            LoopVerdict::Excluded(ExclusionReason::EmptyPayload),
            LoopVerdict::Skipped(SkipReason::TripLimit),
            LoopVerdict::Skipped(SkipReason::GoldenBudget),
            LoopVerdict::Skipped(SkipReason::ReplayBudget),
            LoopVerdict::Skipped(SkipReason::MemoryBudget),
            LoopVerdict::Skipped(SkipReason::GoldenTrapped(Trap::DivByZero)),
            LoopVerdict::NonCommutative(Violation::ReplayDiverged),
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(None)),
            LoopVerdict::NonCommutative(Violation::ReplayTrapped(Trap::OutOfBounds {
                len: 8,
                index: -3,
            })),
            LoopVerdict::NonCommutative(Violation::ReplayTrapped(Trap::ArityMismatch {
                expected: 2,
                given: 3,
            })),
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(Some(Divergence::Root {
                name: "s".into(),
                golden: "1".into(),
                permuted: "2".into(),
            }))),
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(Some(
                Divergence::ObjectCount {
                    golden: 3,
                    permuted: 4,
                },
            ))),
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(Some(
                Divergence::ObjectShape {
                    object: 7,
                    golden: "array[4]".into(),
                    permuted: "array[5]".into(),
                },
            ))),
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(Some(Divergence::Cell {
                object: 1,
                cell: 2,
                golden: "9".into(),
                permuted: "q\"\n".into(),
            }))),
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(Some(Divergence::OutputLen {
                golden: 1,
                permuted: 0,
            }))),
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(Some(Divergence::Output {
                index: 0,
                golden: "a".into(),
                permuted: "b".into(),
            }))),
            LoopVerdict::NonCommutative(Violation::OutcomeMismatch(Some(Divergence::Ret {
                golden: "1".into(),
                permuted: "2".into(),
            }))),
        ]
    }

    fn cached(verdict: LoopVerdict) -> CachedVerdict {
        CachedVerdict {
            tag: Some("t".into()),
            verdict,
            trips: 4,
            permutations_tested: 3,
            replay_steps: 123,
        }
    }

    #[test]
    fn every_cacheable_verdict_round_trips() {
        for (i, v) in sample_verdicts().into_iter().enumerate() {
            let entry = cached(v.clone());
            let key = 0x1234_5678_9abc_def0_u128 + i as u128;
            let json = encode_entry(key, &entry).expect("cacheable");
            let (k2, back) =
                decode_entry(&parse_json(&json.to_string()).expect("parse")).expect("round trip");
            assert_eq!(k2, key);
            assert_eq!(back, entry, "verdict {v:?}");
        }
    }

    #[test]
    fn non_key_verdicts_are_never_cacheable() {
        for v in [
            LoopVerdict::Skipped(SkipReason::Deadline),
            LoopVerdict::Skipped(SkipReason::Cancelled),
            LoopVerdict::Skipped(SkipReason::EngineFault("boom".into())),
            LoopVerdict::NonCommutative(Violation::ReplayTrapped(Trap::IllTyped("op"))),
            LoopVerdict::NonCommutative(Violation::ReplayTrapped(Trap::Injected)),
            LoopVerdict::Skipped(SkipReason::GoldenTrapped(Trap::NotRunning)),
        ] {
            assert!(!cacheable(&v), "{v:?} must not be cacheable");
        }
    }

    #[test]
    fn save_load_round_trips_and_dedups() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("cache.json");
        let mut c = VerdictCache::open(&path);
        assert!(c.is_empty());
        for (i, v) in sample_verdicts().into_iter().enumerate() {
            assert!(c.store(i as u128, &cached(v)));
        }
        // Storing the same key again is a no-op.
        assert!(!c.store(0, &cached(LoopVerdict::Commutative)));
        // Non-cacheable verdicts are refused.
        assert!(!c.store(999, &cached(LoopVerdict::Skipped(SkipReason::Deadline))));
        c.save().expect("save");
        let back = VerdictCache::open(&path);
        assert_eq!(back.load_faults(), 0);
        assert_eq!(back.len(), sample_verdicts().len());
        for (i, v) in sample_verdicts().into_iter().enumerate() {
            match back.decide(i as u128) {
                CacheDecision::Hit(h) => assert_eq!(h, cached(v)),
                other => panic!("expected hit, got {other:?}"),
            }
        }
        assert_eq!(back.decide(999), CacheDecision::Miss);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_empty_not_bypassed() {
        let dir = tmpdir("missing");
        let c = VerdictCache::open(&dir.join("nope.json"));
        assert!(!c.is_bypassed());
        assert_eq!(c.load_faults(), 0);
        assert_eq!(c.decide(1), CacheDecision::Miss);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_files_degrade_to_bypass() {
        let dir = tmpdir("damaged");
        for (name, text) in [
            ("garbage.json", "not json at all"),
            (
                "truncated.json",
                "{\"schema\": \"dca-cache/1\", \"entries\": [",
            ),
            (
                "wrong_schema.json",
                "{\"schema\": \"dca-cache/999\", \"entries\": []}",
            ),
            ("not_object.json", "[1, 2, 3]"),
            ("no_entries.json", "{\"schema\": \"dca-cache/1\"}"),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, text).expect("write");
            let c = VerdictCache::open(&path);
            assert!(c.is_bypassed(), "{name} must bypass");
            assert_eq!(c.load_faults(), 1, "{name} counts one fault");
            assert_eq!(c.decide(1), CacheDecision::Bypass);
            // Bypassed caches never write: the damaged file survives for
            // inspection.
            let mut c = c;
            assert!(!c.store(1, &cached(LoopVerdict::Commutative)));
            c.save().expect("no-op save");
            assert_eq!(
                std::fs::read_to_string(&path).expect("read"),
                text,
                "{name} left untouched"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_rejects_field_tampering() {
        let dir = tmpdir("tamper");
        let path = dir.join("cache.json");
        let mut c = VerdictCache::open(&path);
        assert!(c.store(7, &cached(LoopVerdict::Commutative)));
        c.save().expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        // Flip the verdict while keeping the JSON valid: the checksum
        // must reject the entry rather than serve a wrong verdict.
        let tampered = text.replace("commutative", "not_exercised");
        assert_ne!(text, tampered, "substitution applied");
        std::fs::write(&path, &tampered).expect("write");
        let back = VerdictCache::open(&path);
        assert!(!back.is_bypassed(), "entry damage is not file damage");
        assert_eq!(back.load_faults(), 1);
        assert_eq!(back.decide(7), CacheDecision::Miss);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_save_fault_never_touches_the_real_file() {
        let dir = tmpdir("killsave");
        let path = dir.join("cache.json");
        let mut c = VerdictCache::open(&path);
        assert!(c.store(1, &cached(LoopVerdict::Commutative)));
        c.save().expect("clean save");
        let before = std::fs::read_to_string(&path).expect("read");
        let mut c = VerdictCache::open(&path);
        assert!(c.store(2, &cached(LoopVerdict::NotExercised)));
        for stage in [0u64, 1] {
            let plan = FaultPlan {
                kind: FaultKind::KillSave { stage },
                loop_ordinal: 0,
                replay: 0,
            };
            let err = c.save_faulted(Some(&plan)).expect_err("injected kill");
            assert!(err.to_string().contains("injected kill"), "{err}");
            assert_eq!(
                std::fs::read_to_string(&path).expect("read"),
                before,
                "stage {stage} left the real file untouched"
            );
        }
        // A later clean save overwrites the stale temp file and lands.
        c.save().expect("save");
        let back = VerdictCache::open(&path);
        assert_eq!(back.load_faults(), 0);
        assert_eq!(back.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn key_builder_separates_config_args_and_program() {
        let m1 = dca_ir::compile(
            "fn main() -> int { let i: int = 0; let s: int = 0;
             @l: while (i < 4) { s = s + i; i = i + 1; } return s; }",
        )
        .expect("compile");
        let m2 = dca_ir::compile(
            "fn main() -> int { let i: int = 0; let s: int = 0;
             @l: while (i < 5) { s = s + i; i = i + 1; } return s; }",
        )
        .expect("compile");
        let cfg = DcaConfig::fast();
        let base = KeyBuilder::new(&cfg, &[], &m1).all_loop_keys(&m1);
        assert_eq!(base.len(), 1);
        // Same everything → same key.
        assert_eq!(base, KeyBuilder::new(&cfg, &[], &m1).all_loop_keys(&m1));
        // Different program → different key.
        assert_ne!(base, KeyBuilder::new(&cfg, &[], &m2).all_loop_keys(&m2));
        // Different verdict-affecting knobs → different keys.
        let mut seen = vec![base[0]];
        for other in [
            DcaConfig {
                seed: 43,
                ..DcaConfig::fast()
            },
            DcaConfig {
                permutations: PermutationSet::ReverseOnly,
                ..DcaConfig::fast()
            },
            DcaConfig {
                float_tolerance: 0.0,
                ..DcaConfig::fast()
            },
            DcaConfig {
                verify_scope: VerifyScope::LoopExit,
                ..DcaConfig::fast()
            },
            DcaConfig {
                digest: DigestMode::Structural,
                ..DcaConfig::fast()
            },
            DcaConfig {
                invocations: 2,
                ..DcaConfig::fast()
            },
            DcaConfig {
                max_steps: 1,
                ..DcaConfig::fast()
            },
            DcaConfig {
                max_trip: 3,
                ..DcaConfig::fast()
            },
            DcaConfig {
                max_heap_cells: Some(1 << 20),
                ..DcaConfig::fast()
            },
        ] {
            let k = KeyBuilder::new(&other, &[], &m1).all_loop_keys(&m1)[0];
            assert!(!seen.contains(&k), "knob change must change the key");
            seen.push(k);
        }
        // Thread count and obs options are verdict-neutral: same key.
        let threads = DcaConfig {
            threads: 7,
            obs: crate::ObsOptions::metrics(),
            ..DcaConfig::fast()
        };
        assert_eq!(
            base[0],
            KeyBuilder::new(&threads, &[], &m1).all_loop_keys(&m1)[0]
        );
        // Different workload arguments → different key.
        let k_args = KeyBuilder::new(&cfg, &[Value::Int(3)], &m1).all_loop_keys(&m1)[0];
        assert_ne!(base[0], k_args);
        assert_ne!(
            k_args,
            KeyBuilder::new(&cfg, &[Value::Float(3.0)], &m1).all_loop_keys(&m1)[0],
            "arg type is part of the key"
        );
        std::mem::drop(seen);
    }
}
