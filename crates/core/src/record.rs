//! Golden execution: iterator recording (paper §IV-B1).
//!
//! One instrumented run of the program in its original, programmer-intended
//! order does three jobs at once:
//!
//! 1. **Linearization** — at every header arrival of the target loop
//!    invocation, the values of the iterator-slice variables are captured
//!    into a random-access sequence (Fig. 4(c));
//! 2. **Snapshotting** — machine state is saved at the invocation's first
//!    header arrival, so permuted replays start from identical state;
//! 3. **Golden reference** — the run's outcome is the reference that every
//!    permuted execution is verified against (§IV-B3).

use crate::outcome::ProgramOutcome;
use crate::parallel::CancelToken;
use crate::replay::GOVERN_GRANULE;
use dca_analysis::IteratorSlice;
use dca_deps::{FootprintProbe, LoopProfile};
use dca_interp::{Addr, Hooks, InstAction, Machine, Site, Snapshot, Trap, Value};
use dca_ir::{BlockId, FuncId, Function, Loop, VarId};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// Everything recorded about one tested loop invocation.
#[derive(Debug, Clone)]
pub struct GoldenRecord {
    /// Machine state at the invocation's first header arrival. Shared
    /// behind an [`Arc`]: every parallel verification worker restores
    /// from (and the engine clones records around) this one immutable
    /// snapshot instead of deep-copying the heap per consumer.
    pub snapshot: Arc<Snapshot>,
    /// Committed per-iteration values of the recorded variables, in
    /// original order.
    pub iters: Vec<Vec<Value>>,
    /// The recorded variables, in the order values are stored.
    pub rec_vars: Vec<VarId>,
    /// Values of the recorded variables at the moment the loop exited.
    pub exit_vals: Vec<Value>,
    /// The first out-of-loop block control reached (the golden exit
    /// target).
    pub exit_target: BlockId,
    /// Frame depth the invocation ran at.
    pub depth: usize,
    /// The golden program outcome.
    pub outcome: ProgramOutcome,
    /// Total steps of the golden run.
    pub total_steps: u64,
}

/// Why recording failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordError {
    /// The loop's chosen invocation never started.
    NotExercised,
    /// The program trapped during the golden run.
    Trapped(Trap),
    /// The step budget ran out.
    BudgetExhausted,
    /// The loop iterated more times than the configured trip limit.
    TripLimit,
    /// A wall-clock deadline ([`crate::config::WallLimits`]) expired
    /// during the golden run.
    DeadlineExpired,
    /// The run's [`CancelToken`] was tripped during the golden run.
    Cancelled,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the loop header.
    Waiting,
    /// Inside an invocation, recording it.
    Recording,
    /// Invocation kept; running to program end.
    Finishing,
}

struct Recorder<'a> {
    func: FuncId,
    header: BlockId,
    blocks: &'a BTreeSet<BlockId>,
    rec_vars: &'a [VarId],
    slice: &'a IteratorSlice,
    max_trip: usize,
    /// Invocations with fewer committed iterations than this are skipped
    /// (there is nothing to permute below two iterations); the recorder
    /// moves on to the next invocation.
    min_trip: usize,
    /// Eligible (long-enough) invocations still to skip before keeping
    /// one: the caller's invocation index counts *eligible* invocations.
    skips_left: u32,
    /// Tells the driver to drop the snapshot of a too-short invocation.
    discard_snapshot: bool,
    phase: Phase,
    /// Depth at which the tested invocation runs.
    depth: Option<usize>,
    /// Request flag: the driver should snapshot now.
    want_snapshot: bool,
    /// The iterator values of the in-flight iteration, frozen at its first
    /// payload instruction (the point Fig. 4(c)'s `rt_iterator_linearize`
    /// placement corresponds to): by then a `for` iterator still holds its
    /// pre-increment value while a destructive pop has already produced
    /// this iteration's element.
    pending: Option<Vec<Value>>,
    /// True between a header arrival and the loop exit/next arrival.
    in_iteration: bool,
    iters: Vec<Vec<Value>>,
    exit_vals: Vec<Value>,
    exit_target: Option<BlockId>,
    trip_overflow: bool,
}

impl Recorder<'_> {
    fn capture(&self, vars: &[Value]) -> Vec<Value> {
        self.rec_vars.iter().map(|v| vars[v.index()]).collect()
    }

    /// Discards the in-flight invocation and waits for the next one.
    fn restart(&mut self) {
        self.iters.clear();
        self.pending = None;
        self.in_iteration = false;
        self.discard_snapshot = true;
        self.depth = None;
        self.phase = Phase::Waiting;
    }
}

impl Hooks for Recorder<'_> {
    fn on_block(&mut self, site: Site, block: BlockId, vars: &mut [Value]) {
        if site.func != self.func {
            return;
        }
        match self.phase {
            Phase::Waiting => {
                if block == self.header {
                    self.phase = Phase::Recording;
                    self.depth = Some(site.depth);
                    self.want_snapshot = true;
                    self.pending = None;
                    self.in_iteration = true;
                }
            }
            Phase::Recording => {
                if Some(site.depth) != self.depth {
                    return;
                }
                if block == self.header {
                    // Iteration boundary: commit the finished iteration.
                    // All-slice iterations (no payload executed) commit
                    // their end-of-iteration values; payload never reads
                    // them during replay.
                    if self.in_iteration {
                        let tuple = self.pending.take().unwrap_or_else(|| self.capture(vars));
                        self.iters.push(tuple);
                        if self.iters.len() > self.max_trip {
                            self.trip_overflow = true;
                        }
                    }
                    self.in_iteration = true;
                    self.pending = None;
                } else if !self.blocks.contains(&block) {
                    // Loop exit: commit the final partial iteration only if
                    // it did payload work (a break), not when the header
                    // check simply failed.
                    if let Some(p) = self.pending.take() {
                        self.iters.push(p);
                    }
                    self.in_iteration = false;
                    if self.iters.len() < self.min_trip {
                        // Too short to permute: look for a longer
                        // invocation instead (does not consume a skip).
                        self.restart();
                    } else if self.skips_left > 0 {
                        // An eligible invocation the caller asked us to
                        // pass over.
                        self.skips_left -= 1;
                        self.restart();
                    } else {
                        self.exit_vals = self.capture(vars);
                        self.exit_target = Some(block);
                        self.phase = Phase::Finishing;
                    }
                }
            }
            Phase::Finishing => {}
        }
    }

    fn before_inst(
        &mut self,
        site: Site,
        block: BlockId,
        idx: usize,
        vars: &mut [Value],
    ) -> InstAction {
        if let Phase::Recording = self.phase {
            if self.pending.is_none()
                && site.func == self.func
                && Some(site.depth) == self.depth
                && self.blocks.contains(&block)
                && !self.slice.contains((block, idx))
            {
                // First payload instruction of this iteration: freeze the
                // iterator values the payload instance will consume.
                self.pending = Some(self.capture(vars));
            }
        }
        InstAction::Run
    }

    fn on_return(&mut self, site: Site, func: FuncId) {
        // The tested invocation's frame returned (the loop exited through
        // a `return` block that itself sits outside the loop — on_block
        // handles that first — or the whole function ended). Keep what was
        // recorded if it qualifies; otherwise look for another invocation.
        if let Phase::Recording = self.phase {
            if func == self.func && Some(site.depth) == self.depth {
                if self.iters.len() < self.min_trip || self.skips_left > 0 {
                    self.skips_left = self
                        .skips_left
                        .saturating_sub(u32::from(self.iters.len() >= self.min_trip));
                    self.restart();
                } else {
                    self.phase = Phase::Finishing;
                }
            }
        }
    }
}

/// Runs the golden execution for `l` (invocation `skip_invocations`) and
/// records everything replay needs.
///
/// `rec_vars` determines which variables are captured per iteration —
/// normally the loop's iterator-slice variables.
///
/// # Errors
///
/// See [`RecordError`].
#[allow(clippy::too_many_arguments)]
pub fn record_golden(
    machine: &mut Machine<'_>,
    main: FuncId,
    args: &[Value],
    func: FuncId,
    l: &Loop,
    slice: &IteratorSlice,
    skip_invocations: u32,
    max_trip: usize,
    max_steps: u64,
) -> Result<GoldenRecord, RecordError> {
    record_golden_min_trip(
        machine,
        main,
        args,
        func,
        l,
        slice,
        skip_invocations,
        max_trip,
        max_steps,
        0,
    )
}

/// Like [`record_golden`], but skips invocations shorter than `min_trip`
/// committed iterations, recording the first one long enough to permute.
///
/// # Errors
///
/// See [`RecordError`].
#[allow(clippy::too_many_arguments)]
pub fn record_golden_min_trip(
    machine: &mut Machine<'_>,
    main: FuncId,
    args: &[Value],
    func: FuncId,
    l: &Loop,
    slice: &IteratorSlice,
    skip_invocations: u32,
    max_trip: usize,
    max_steps: u64,
    min_trip: usize,
) -> Result<GoldenRecord, RecordError> {
    record_golden_governed(
        machine,
        main,
        args,
        func,
        l,
        slice,
        skip_invocations,
        max_trip,
        max_steps,
        min_trip,
        None,
        None,
    )
}

/// Like [`record_golden_min_trip`], with an optional wall-clock deadline
/// and an optional [`CancelToken`], both checked cooperatively every
/// [`GOVERN_GRANULE`] steps. `None` for both keeps the recording loop
/// free of clock reads and atomic loads.
///
/// # Errors
///
/// See [`RecordError`]; expiry yields [`RecordError::DeadlineExpired`],
/// a tripped token yields [`RecordError::Cancelled`].
#[allow(clippy::too_many_arguments)]
pub fn record_golden_governed(
    machine: &mut Machine<'_>,
    main: FuncId,
    args: &[Value],
    func: FuncId,
    l: &Loop,
    slice: &IteratorSlice,
    skip_invocations: u32,
    max_trip: usize,
    max_steps: u64,
    min_trip: usize,
    deadline: Option<Instant>,
    cancel: Option<&CancelToken>,
) -> Result<GoldenRecord, RecordError> {
    let rec_vars: Vec<VarId> = slice.slice_vars.iter().copied().collect();
    machine
        .push_call(main, args)
        .map_err(RecordError::Trapped)?;
    let mut rec = new_recorder(
        func,
        l,
        &rec_vars,
        slice,
        skip_invocations,
        max_trip,
        min_trip,
    );
    let (ret, snapshot) = drive(machine, &mut rec, max_steps, deadline, cancel)?;
    seal(rec, snapshot, ret, machine)
}

/// Like [`record_golden`], but additionally mines a per-iteration
/// memory/cost footprint ([`dca_deps::LoopProfile`]) from the same run: a
/// [`dca_deps::FootprintProbe`] composed with the recorder attributes
/// every heap access and every step to the committed iteration (and the
/// slice/payload side) it belongs to. The profile's iterations align 1:1
/// with the golden record's.
///
/// The plain recording path is untouched — disarmed recording pays
/// nothing for the probe's existence.
///
/// # Errors
///
/// See [`RecordError`].
#[allow(clippy::too_many_arguments)]
pub fn record_golden_profiled(
    machine: &mut Machine<'_>,
    main: FuncId,
    args: &[Value],
    func: FuncId,
    func_ir: &Function,
    l: &Loop,
    slice: &IteratorSlice,
    skip_invocations: u32,
    max_trip: usize,
    max_steps: u64,
) -> Result<(GoldenRecord, LoopProfile), RecordError> {
    let rec_vars: Vec<VarId> = slice.slice_vars.iter().copied().collect();
    machine
        .push_call(main, args)
        .map_err(RecordError::Trapped)?;
    let rec = new_recorder(func, l, &rec_vars, slice, skip_invocations, max_trip, 0);
    let mut probe = FootprintProbe::new();
    // Per-block attribution, resolved once. Most loop blocks are *uniform*
    // (all-slice or all-payload, the way the front end lowers them), and a
    // uniform block attributes once at block entry — the per-instruction
    // hook stays a pure delegation unless some block genuinely interleaves
    // slice and payload instructions.
    let mut attrs: Vec<BlockAttr> = (0..func_ir.blocks.len())
        .map(|_| BlockAttr::Outside)
        .collect();
    let mut any_mixed = false;
    for &b in &l.blocks {
        let ia: Vec<bool> = (0..func_ir.block(b).insts.len())
            .map(|idx| !slice.contains((b, idx)))
            .collect();
        attrs[b.index()] = match ia.split_first() {
            // An instruction-free block flips nothing — same as the
            // per-instruction path, which would never fire in it.
            None => BlockAttr::Outside,
            Some((&first, rest)) if rest.iter().all(|&p| p == first) => {
                BlockAttr::Uniform { payload: first }
            }
            Some(_) => {
                any_mixed = true;
                BlockAttr::Mixed(ia)
            }
        };
    }
    // Monomorphize the mixed-block flag away: with no mixed block (the
    // common case) the per-instruction hook compiles to the plain
    // recorder's, paying nothing per executed instruction.
    let (ret, snapshot, rec) = if any_mixed {
        let mut h = ProfiledRecorder::<true> {
            rec,
            attrs,
            probe: &mut probe,
        };
        let (ret, snapshot) = drive(machine, &mut h, max_steps, None, None)?;
        (ret, snapshot, h.rec)
    } else {
        let mut h = ProfiledRecorder::<false> {
            rec,
            attrs,
            probe: &mut probe,
        };
        let (ret, snapshot) = drive(machine, &mut h, max_steps, None, None)?;
        (ret, snapshot, h.rec)
    };
    let golden = seal(rec, snapshot, ret, machine)?;
    let profile = probe.finish();
    debug_assert_eq!(
        profile.iters.len(),
        golden.iters.len(),
        "profile iterations must align with the golden record"
    );
    Ok((golden, profile))
}

#[allow(clippy::too_many_arguments)]
fn new_recorder<'a>(
    func: FuncId,
    l: &'a Loop,
    rec_vars: &'a [VarId],
    slice: &'a IteratorSlice,
    skip_invocations: u32,
    max_trip: usize,
    min_trip: usize,
) -> Recorder<'a> {
    Recorder {
        func,
        header: l.header,
        blocks: &l.blocks,
        rec_vars,
        slice,
        max_trip,
        min_trip,
        skips_left: skip_invocations,
        discard_snapshot: false,
        phase: Phase::Waiting,
        depth: None,
        want_snapshot: false,
        pending: None,
        in_iteration: false,
        iters: Vec::new(),
        exit_vals: Vec::new(),
        exit_target: None,
        trip_overflow: false,
    }
}

/// Hook stacks the recording driver accepts: the plain [`Recorder`] or a
/// composition wrapping one. The driver reads the recorder's request
/// flags (snapshot, discard, trip overflow) through this access.
trait RecAccess<'a>: Hooks {
    fn rec(&mut self) -> &mut Recorder<'a>;
}

impl<'a> RecAccess<'a> for Recorder<'a> {
    fn rec(&mut self) -> &mut Recorder<'a> {
        self
    }
}

/// Steps the machine to completion under recording hooks `h` — the
/// manual-stepping loop shared by every `record_golden*` flavor, kept
/// generic so the plain path monomorphizes without any probe overhead.
fn drive<'a, H: RecAccess<'a>>(
    machine: &mut Machine<'_>,
    h: &mut H,
    max_steps: u64,
    deadline: Option<Instant>,
    cancel: Option<&CancelToken>,
) -> Result<(Option<Value>, Option<Snapshot>), RecordError> {
    // Step manually so the snapshot lands exactly at the header arrival.
    let budget = machine.steps().saturating_add(max_steps);
    let mut snapshot: Option<Snapshot> = None;
    let mut n: u64 = 0;
    let ret = loop {
        if machine.result().is_some() {
            break machine.result().expect("checked");
        }
        if machine.steps() >= budget {
            return Err(RecordError::BudgetExhausted);
        }
        // Cooperative deadline and cancellation, one clock read / atomic
        // load per granule (checked at n == 0 too, so a zero deadline or
        // pre-tripped token fires deterministically).
        if deadline.is_some() || cancel.is_some() {
            if n.is_multiple_of(GOVERN_GRANULE) {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(RecordError::DeadlineExpired);
                    }
                }
                if let Some(c) = cancel {
                    if c.is_cancelled() {
                        return Err(RecordError::Cancelled);
                    }
                }
            }
            n += 1;
        }
        match machine.step(h) {
            Ok(()) => {}
            Err(Trap::NotRunning) => break machine.result().unwrap_or(None),
            Err(t) => return Err(RecordError::Trapped(t)),
        }
        let rec = h.rec();
        if rec.want_snapshot {
            rec.want_snapshot = false;
            snapshot = Some(machine.snapshot());
        }
        if rec.discard_snapshot {
            rec.discard_snapshot = false;
            snapshot = None;
        }
        if rec.trip_overflow {
            return Err(RecordError::TripLimit);
        }
    };
    Ok((ret, snapshot))
}

/// Packages a finished recording into the [`GoldenRecord`].
fn seal(
    rec: Recorder<'_>,
    snapshot: Option<Snapshot>,
    ret: Option<Value>,
    machine: &Machine<'_>,
) -> Result<GoldenRecord, RecordError> {
    let snapshot = snapshot.ok_or(RecordError::NotExercised)?;
    let exit_target = rec.exit_target.ok_or(RecordError::NotExercised)?;
    let rec_vars = rec.rec_vars.to_vec();
    let (iters, exit_vals, depth) = (rec.iters, rec.exit_vals, rec.depth);
    Ok(GoldenRecord {
        snapshot: Arc::new(snapshot),
        iters,
        rec_vars,
        exit_vals,
        exit_target,
        depth: depth.expect("recording started"),
        outcome: ProgramOutcome::capture(machine, ret),
        total_steps: machine.steps(),
    })
}

/// Probe attribution for one block of the recorded function: whether its
/// instructions' memory effects are payload or iterator-slice work.
enum BlockAttr {
    /// Outside the loop (or instruction-free): entering it changes no
    /// attribution. Effects in callees keep the calling side's flag.
    Outside,
    /// Every instruction sits on one side — attributed once at block
    /// entry; the whole block executes once entered (a trap mid-block
    /// aborts the recording entirely), so entry attribution equals
    /// per-instruction attribution.
    Uniform {
        /// The single side of every instruction in the block: payload
        /// (`true`) or iterator slice (`false`).
        payload: bool,
    },
    /// Slice and payload instructions interleave: attribution must track
    /// each instruction (the loop header's compare-and-branch block
    /// sometimes carries a leading payload store). One side flag per
    /// instruction.
    Mixed(Vec<bool>),
}

/// The [`Recorder`] composed with a [`FootprintProbe`]: delegates every
/// recording decision to the inner recorder unchanged and mirrors its
/// phase transitions into probe lifecycle calls, so the profile's
/// iteration boundaries are *defined by* the recorder's commits — the
/// two can never disagree about what iteration `k` was.
/// `MIXED` mirrors whether any loop block is [`BlockAttr::Mixed`]; with
/// `false` (the common case) the per-instruction hook monomorphizes to a
/// pure delegation.
struct ProfiledRecorder<'a, 'p, const MIXED: bool> {
    rec: Recorder<'a>,
    /// A [`BlockAttr`] for every block of the recorded function.
    attrs: Vec<BlockAttr>,
    probe: &'p mut FootprintProbe,
}

impl<'a, const MIXED: bool> RecAccess<'a> for ProfiledRecorder<'a, '_, MIXED> {
    fn rec(&mut self) -> &mut Recorder<'a> {
        &mut self.rec
    }
}

impl<const MIXED: bool> ProfiledRecorder<'_, '_, MIXED> {
    /// Translates a recorder phase/commit transition (observed around a
    /// delegated hook call) into probe lifecycle events.
    fn sync(&mut self, was: (Phase, usize), steps: u64) {
        let now = (self.rec.phase, self.rec.iters.len());
        match (was.0, now.0) {
            (Phase::Waiting, Phase::Recording) => self.probe.begin_invocation(steps),
            (Phase::Recording, Phase::Waiting) => self.probe.abort_invocation(),
            _ => {}
        }
        if now.1 > was.1 {
            self.probe.commit_iter(steps);
        }
        if now.0 == Phase::Finishing && was.0 != Phase::Finishing {
            // Loop exited; whatever accumulated since the last commit
            // belongs to the failed header check, not to an iteration.
            self.probe.drop_partial();
        }
    }
}

impl<const MIXED: bool> Hooks for ProfiledRecorder<'_, '_, MIXED> {
    fn on_block(&mut self, site: Site, block: BlockId, vars: &mut [Value]) {
        if site.func != self.rec.func || self.rec.phase == Phase::Finishing {
            // The plain recorder ignores foreign-function blocks and is
            // inert once the kept invocation exited, so there is no
            // transition to mirror and no attribution to flip (callee
            // effects keep the calling side's flag).
            return;
        }
        let was = (self.rec.phase, self.rec.iters.len());
        self.rec.on_block(site, block, vars);
        self.sync(was, site.steps);
        if self.rec.phase == Phase::Recording && Some(site.depth) == self.rec.depth {
            if let BlockAttr::Uniform { payload } = self.attrs[block.index()] {
                self.probe.set_payload(payload);
            }
        }
    }

    fn before_inst(
        &mut self,
        site: Site,
        block: BlockId,
        idx: usize,
        vars: &mut [Value],
    ) -> InstAction {
        let act = self.rec.before_inst(site, block, idx, vars);
        // Attribute subsequent memory effects: payload or slice. Uniform
        // blocks were attributed at entry; only a mixed block needs the
        // flag tracked per instruction, and only loop-level instructions
        // flip it, so effects inside callees attribute to the calling
        // instruction's side.
        if MIXED
            && self.rec.phase == Phase::Recording
            && site.func == self.rec.func
            && Some(site.depth) == self.rec.depth
        {
            if let BlockAttr::Mixed(sides) = &self.attrs[block.index()] {
                self.probe.set_payload(sides[idx]);
            }
        }
        act
    }

    fn on_return(&mut self, site: Site, func: FuncId) {
        if func != self.rec.func || self.rec.phase != Phase::Recording {
            return;
        }
        let was = (self.rec.phase, self.rec.iters.len());
        self.rec.on_return(site, func);
        self.sync(was, site.steps);
    }

    fn on_read(&mut self, _site: Site, addr: Addr) {
        self.probe.read(addr.obj.0, addr.cell);
    }

    fn on_store(&mut self, _site: Site, addr: Addr, old: Value, new: Value) {
        self.probe.store(addr.obj.0, addr.cell, old, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DcaConfig;
    use dca_analysis::IteratorSlice;
    use dca_ir::FuncView;

    fn golden(src: &str, tag: &str) -> Result<GoldenRecord, RecordError> {
        let m = dca_ir::compile(src).expect("compile");
        let main = m.main().expect("main");
        // Find the tagged loop anywhere in the module.
        for (i, _) in m.funcs.iter().enumerate() {
            let fid = dca_ir::FuncId(i as u32);
            let view = FuncView::new(&m, fid);
            if let Some(l) = view.loops.by_tag(tag) {
                let slice = IteratorSlice::compute(&view, l);
                let mut machine = Machine::new(&m);
                return record_golden(
                    &mut machine,
                    main,
                    &[],
                    fid,
                    l,
                    &slice,
                    0,
                    DcaConfig::DEFAULT_MAX_TRIP,
                    DcaConfig::TEST_STEP_BUDGET,
                );
            }
        }
        panic!("no loop tagged @{tag}");
    }

    #[test]
    fn records_counted_loop_iterations() {
        let g = golden(
            "fn main() -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < 5; i = i + 1) { s = s + i; } return s; }",
            "l",
        )
        .expect("record");
        assert_eq!(g.iters.len(), 5);
        assert_eq!(g.outcome.ret, Some(Value::Int(10)));
        // The recorded tuples include the induction variable's values
        // 0,1,2,3,4 in order (among any other slice temps).
        let positions: Vec<Vec<i64>> = g
            .iters
            .iter()
            .map(|vals| {
                vals.iter()
                    .filter_map(|v| match v {
                        Value::Int(x) => Some(*x),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for (k, vals) in positions.iter().enumerate() {
            assert!(
                vals.contains(&(k as i64)),
                "iteration {k} should capture i == {k}, got {vals:?}"
            );
        }
    }

    #[test]
    fn records_pointer_chase_iterations() {
        let g = golden(
            "struct N { v: int, next: *N }\n\
             fn main() -> int { let head: *N = null; \
             for (let i: int = 0; i < 4; i = i + 1) { \
               let n: *N = new N; n.v = i; n.next = head; head = n; } \
             let s: int = 0; let p: *N = head; \
             @walk: while (p != null) { s = s + p.v; p = p.next; } return s; }",
            "walk",
        )
        .expect("record");
        assert_eq!(g.iters.len(), 4);
        assert_eq!(g.outcome.ret, Some(Value::Int(6)));
        // Each iteration captures a distinct node pointer.
        let ptrs: Vec<Vec<Value>> = g.iters.clone();
        for w in ptrs.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn break_iteration_is_committed() {
        let g = golden(
            "fn main() -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < 100; i = i + 1) { \
               s = s + i; if (i == 2) { break; } } return s; }",
            "l",
        )
        .expect("record");
        // Iterations 0, 1, 2 all executed payload.
        assert_eq!(g.iters.len(), 3);
        assert_eq!(g.outcome.ret, Some(Value::Int(3)));
    }

    #[test]
    fn unexercised_loop_reports_not_exercised() {
        let err = golden(
            "fn dead() { @never: while (false) { let x: int = 1; x = x + 1; } }\n\
             fn main() { }",
            "never",
        )
        .expect_err("should fail");
        assert_eq!(err, RecordError::NotExercised);
        // A loop whose header runs but whose body never executes still
        // records (with zero iterations).
        let g = golden(
            "fn main() { let s: int = 0; \
             @zero: for (let i: int = 5; i < 0; i = i + 1) { s = s + 1; } }",
            "zero",
        )
        .expect("record");
        assert_eq!(g.iters.len(), 0);
    }

    #[test]
    fn second_invocation_can_be_selected() {
        let src = "fn work(n: int) -> int { let s: int = 0; \
             @w: for (let i: int = 0; i < n; i = i + 1) { s = s + i; } return s; }\n\
             fn main() -> int { return work(3) + work(5); }";
        let m = dca_ir::compile(src).expect("compile");
        let main = m.main().expect("main");
        let fid = m.func_by_name("work").expect("work");
        let view = FuncView::new(&m, fid);
        let l = view.loops.by_tag("w").expect("tag");
        let slice = IteratorSlice::compute(&view, l);
        let mut machine = Machine::new(&m);
        let g = record_golden(
            &mut machine,
            main,
            &[],
            fid,
            l,
            &slice,
            1,
            DcaConfig::DEFAULT_MAX_TRIP,
            DcaConfig::TEST_STEP_BUDGET,
        )
        .expect("record");
        assert_eq!(g.iters.len(), 5, "second invocation has 5 iterations");
    }

    #[test]
    fn invocation_indices_count_eligible_invocations() {
        // Invocations run with trips 0, 3, 1, 5: indices must select the
        // 3-trip and then the 5-trip invocation (short ones don't count).
        let src = "fn work(n: int) -> int { let s: int = 0; \
             @w: for (let i: int = 0; i < n; i = i + 1) { s = s + i; } return s; }\n\
             fn main() -> int { return work(0) + work(3) + work(1) + work(5); }";
        let m = dca_ir::compile(src).expect("compile");
        let fid = m.func_by_name("work").expect("work");
        let view = FuncView::new(&m, fid);
        let l = view.loops.by_tag("w").expect("tag");
        let slice = IteratorSlice::compute(&view, l);
        let trips_of = |skip: u32| {
            let mut machine = Machine::new(&m);
            crate::record::record_golden_min_trip(
                &mut machine,
                m.main().expect("main"),
                &[],
                fid,
                l,
                &slice,
                skip,
                DcaConfig::DEFAULT_MAX_TRIP,
                DcaConfig::TEST_STEP_BUDGET,
                2,
            )
            .map(|g| g.iters.len())
        };
        assert_eq!(trips_of(0).expect("first eligible"), 3);
        assert_eq!(trips_of(1).expect("second eligible"), 5);
        assert_eq!(trips_of(2), Err(RecordError::NotExercised));
    }

    #[test]
    fn trip_limit_enforced() {
        let err = golden(
            "fn main() { let s: int = 0; \
             @big: for (let i: int = 0; i < 100000; i = i + 1) { s = s + i; } }",
            "big",
        );
        // Default limit in this helper is 65536 < 100000.
        assert_eq!(err.expect_err("should overflow"), RecordError::TripLimit);
    }

    #[test]
    fn exit_target_is_outside_the_loop() {
        let g = golden(
            "fn main() -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < 3; i = i + 1) { s = s + i; } return s; }",
            "l",
        )
        .expect("record");
        // exit_vals captured the final iterator state (i == 3 among them).
        assert!(g.exit_vals.iter().any(|v| matches!(v, Value::Int(3))));
        assert_eq!(g.depth, 0);
    }
}
