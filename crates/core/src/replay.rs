//! Permuted replay: DCA execution order (paper §IV-B2, Fig. 4(c)/(d)).
//!
//! The instrumented program of the paper runs a tested loop in two phases:
//! first the *iterator loop* alone (linearization — `rt_iterator_linearize`
//! in Fig. 4(c)), applying the iterator's side effects (a worklist pop, a
//! pointer advance) exactly once in their original order; then the
//! *payload loop* (`while (rt_iterator_next()) payload(rt_iterator_get())`
//! in Fig. 4(d)), executing one payload instance per recorded iterator
//! value, in the permuted order.
//!
//! [`ReplayController`] reproduces that structure on the interpreter,
//! starting from the golden snapshot:
//!
//! 1. **Iterator pre-pass** — only iterator-slice instructions execute
//!    (payload instructions are skipped); control flow runs naturally, so
//!    destructive iterators drain their worklists exactly as the golden
//!    run did. The pre-pass ends when control would leave the loop (or a
//!    safety cap on header arrivals fires for iterators whose trip count
//!    depended on skipped payload).
//! 2. **Payload pass** — control is forced around the loop exactly
//!    `perm.len()` times; at each header arrival the recorded variables of
//!    the next permuted iteration are bound, slice instructions are
//!    skipped, and edges that would leave the loop are forced back inside.
//! 3. **Exit** — the golden exit values are restored to the iterator
//!    variables and control jumps to the golden exit target; the rest of
//!    the program runs untouched.

use crate::parallel::CancelToken;
use crate::record::GoldenRecord;
use dca_analysis::IteratorSlice;
use dca_interp::{Hooks, InstAction, Machine, Site, TermAction, Trap, Value};
use dca_ir::{BlockId, FuncId, Function, Loop, Terminator, VarId};
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

/// What a replay produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayEnd {
    /// The program ran to completion after the permuted loop.
    Finished(Option<Value>),
    /// The permuted loop finished and control reached the exit target
    /// (used by the loop-exit verification scope).
    LoopExited,
    /// The replay trapped — permuted execution of a non-commutative loop
    /// can fault; the paper notes these situations are reliably detected
    /// (§IV-E).
    Trapped(Trap),
    /// The step budget ran out.
    BudgetExhausted,
    /// A wall-clock deadline ([`crate::config::WallLimits`]) expired
    /// mid-replay.
    DeadlineExpired,
    /// The run's [`CancelToken`] was tripped mid-replay.
    Cancelled,
}

/// Cooperative governance for one program run: an optional wall-clock
/// deadline, an optional cancellation token and an optional injected
/// synthetic trap, all resolved by the stepping driver rather than the
/// interpreter. The deadline and the token are checked once every
/// [`GOVERN_GRANULE`] steps so an enabled governor costs one branch per
/// step and one clock read (or atomic load) per granule; a default
/// (inactive) governor routes through the ungoverned tight loop and
/// costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayGovernor<'c> {
    /// Absolute deadline; expiry ends the run with
    /// [`ReplayEnd::DeadlineExpired`].
    pub deadline: Option<Instant>,
    /// Inject [`Trap::Injected`] after this many steps of this run
    /// (fault-injection harness, see [`crate::fault`]).
    pub trap_at_step: Option<u64>,
    /// Cooperative cancellation: a tripped token ends the run with
    /// [`ReplayEnd::Cancelled`] at the next granule boundary.
    pub cancel: Option<&'c CancelToken>,
}

/// How many interpreter steps pass between wall-clock deadline and
/// cancellation checks.
pub const GOVERN_GRANULE: u64 = 1024;

impl ReplayGovernor<'_> {
    /// True when no deadline, no cancellation token and no injected trap
    /// is armed.
    #[must_use]
    pub fn is_inactive(&self) -> bool {
        self.deadline.is_none() && self.trap_at_step.is_none() && self.cancel.is_none()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Running the iterator alone (Fig. 4(c) linearization semantics).
    PrePass,
    /// Running payload instances in permuted order.
    Payload,
    /// All iterations done: skip in-loop code, jump to the exit target.
    Exiting,
    /// Out of the loop; the rest of the program runs untouched.
    Done,
}

/// The [`Hooks`] implementation driving one permuted replay.
pub struct ReplayController<'a> {
    func: FuncId,
    func_ir: &'a Function,
    header: BlockId,
    blocks: &'a BTreeSet<BlockId>,
    slice: &'a IteratorSlice,
    golden: &'a GoldenRecord,
    /// `perm[k]` = which recorded iteration runs k-th.
    perm: &'a [usize],
    /// Position of each recorded var in the capture tuples.
    var_pos: HashMap<VarId, usize>,
    k: usize,
    needs_iter_start: bool,
    /// Header arrivals during the pre-pass (safety cap).
    prepass_arrivals: usize,
    mode: Mode,
    /// Set once control reaches the exit target.
    pub loop_exited: bool,
}

impl<'a> ReplayController<'a> {
    /// Creates a controller for one permutation of loop `l` in `func_ir`.
    /// The machine must be restored to `golden.snapshot` (control at the
    /// loop header) before stepping with this controller.
    pub fn new(
        func: FuncId,
        func_ir: &'a Function,
        l: &'a Loop,
        slice: &'a IteratorSlice,
        golden: &'a GoldenRecord,
        perm: &'a [usize],
    ) -> Self {
        assert_eq!(perm.len(), golden.iters.len(), "permutation length");
        let var_pos: HashMap<VarId, usize> = golden
            .rec_vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        ReplayController {
            func,
            func_ir,
            header: l.header,
            blocks: &l.blocks,
            slice,
            golden,
            perm,
            var_pos,
            k: 0,
            needs_iter_start: false,
            prepass_arrivals: 0,
            mode: Mode::PrePass,
            loop_exited: false,
        }
    }

    fn active_at(&self, site: Site, block: BlockId) -> bool {
        site.func == self.func && site.depth == self.golden.depth && self.blocks.contains(&block)
    }

    /// Binds the recorded values of the next permuted iteration (or
    /// switches to exit mode when all iterations have been replayed).
    fn iter_start(&mut self, vars: &mut [Value]) {
        self.needs_iter_start = false;
        if self.k < self.perm.len() {
            let rec = &self.golden.iters[self.perm[self.k]];
            for (v, &pos) in &self.var_pos {
                vars[v.index()] = rec[pos];
            }
            self.k += 1;
        } else {
            self.mode = Mode::Exiting;
        }
    }

    /// Switch from the pre-pass into the payload pass.
    fn begin_payload(&mut self) {
        self.mode = Mode::Payload;
        self.needs_iter_start = true;
    }

    /// The pre-pass header-arrival cap: generous slack over the recorded
    /// trip count, for iterators whose condition depended on payload that
    /// the pre-pass skips.
    fn prepass_cap(&self) -> usize {
        self.golden.iters.len().saturating_mul(4).saturating_add(16)
    }
}

impl Hooks for ReplayController<'_> {
    fn on_block(&mut self, site: Site, block: BlockId, _vars: &mut [Value]) {
        match self.mode {
            Mode::Done => {}
            Mode::PrePass => {
                if site.func == self.func && site.depth == self.golden.depth && block == self.header
                {
                    self.prepass_arrivals += 1;
                    if self.prepass_arrivals > self.prepass_cap() {
                        self.begin_payload();
                    }
                }
            }
            Mode::Payload | Mode::Exiting => {
                if site.func == self.func && site.depth == self.golden.depth {
                    if block == self.header {
                        self.needs_iter_start = true;
                    } else if !self.blocks.contains(&block) {
                        // Control left the loop (after the forced exit
                        // jump).
                        self.mode = Mode::Done;
                        self.loop_exited = true;
                    }
                }
            }
        }
    }

    fn before_inst(
        &mut self,
        site: Site,
        block: BlockId,
        idx: usize,
        vars: &mut [Value],
    ) -> InstAction {
        if matches!(self.mode, Mode::Done) || !self.active_at(site, block) {
            return InstAction::Run;
        }
        match self.mode {
            Mode::PrePass => {
                // Linearization: iterator instructions only.
                if self.slice.contains((block, idx)) {
                    InstAction::Run
                } else {
                    InstAction::Skip
                }
            }
            Mode::Payload => {
                if self.needs_iter_start && block == self.header {
                    self.iter_start(vars);
                }
                if matches!(self.mode, Mode::Exiting) {
                    return InstAction::Skip;
                }
                // Payload instances only; the iterator already ran.
                if self.slice.contains((block, idx)) {
                    InstAction::Skip
                } else {
                    InstAction::Run
                }
            }
            Mode::Exiting => InstAction::Skip,
            Mode::Done => InstAction::Run,
        }
    }

    fn on_term(
        &mut self,
        site: Site,
        block: BlockId,
        default_target: Option<BlockId>,
        vars: &mut [Value],
    ) -> TermAction {
        if matches!(self.mode, Mode::Done) || !self.active_at(site, block) {
            return TermAction::Default;
        }
        match self.mode {
            Mode::PrePass => {
                // Natural control flow, but the moment it would leave the
                // loop, the linearization is complete: start the payload
                // pass back at the header.
                match default_target {
                    Some(t) if self.blocks.contains(&t) => TermAction::Default,
                    _ => {
                        self.begin_payload();
                        TermAction::Goto(self.header)
                    }
                }
            }
            Mode::Payload => {
                if self.needs_iter_start && block == self.header {
                    self.iter_start(vars);
                }
                if matches!(self.mode, Mode::Exiting) {
                    for (v, &pos) in &self.var_pos {
                        vars[v.index()] = self.golden.exit_vals[pos];
                    }
                    return TermAction::Goto(self.golden.exit_target);
                }
                match default_target {
                    Some(t) if self.blocks.contains(&t) => TermAction::Default,
                    _ => TermAction::Goto(in_loop_alternative(
                        &self.func_ir.block(block).term,
                        self.blocks,
                        self.header,
                    )),
                }
            }
            Mode::Exiting => {
                for (v, &pos) in &self.var_pos {
                    vars[v.index()] = self.golden.exit_vals[pos];
                }
                TermAction::Goto(self.golden.exit_target)
            }
            Mode::Done => TermAction::Default,
        }
    }
}

/// The forced-branch alternative: the terminator's in-loop successor when
/// the default leaves the loop, or the header (ending the iteration) when
/// no successor stays inside.
fn in_loop_alternative(term: &Terminator, blocks: &BTreeSet<BlockId>, header: BlockId) -> BlockId {
    match term {
        Terminator::Branch {
            then_bb, else_bb, ..
        } => {
            if blocks.contains(then_bb) {
                *then_bb
            } else if blocks.contains(else_bb) {
                *else_bb
            } else {
                header
            }
        }
        _ => header,
    }
}

/// Runs one permuted replay to the end of the program (or until the loop
/// exits, under the loop-exit scope).
///
/// The machine must already be restored to `golden.snapshot`.
pub fn run_replay(
    machine: &mut Machine<'_>,
    ctl: &mut ReplayController<'_>,
    stop_at_loop_exit: bool,
    max_steps: u64,
) -> ReplayEnd {
    let budget = machine.steps().saturating_add(max_steps);
    loop {
        if let Some(ret) = machine.result() {
            return ReplayEnd::Finished(ret);
        }
        if stop_at_loop_exit && ctl.loop_exited {
            return ReplayEnd::LoopExited;
        }
        if machine.steps() >= budget {
            return ReplayEnd::BudgetExhausted;
        }
        match machine.step(ctl) {
            Ok(()) => {}
            Err(Trap::NotRunning) => return ReplayEnd::Finished(machine.result().unwrap_or(None)),
            Err(t) => return ReplayEnd::Trapped(t),
        }
    }
}

/// [`run_replay`] under a [`ReplayGovernor`]. An inactive governor
/// delegates to the ungoverned tight loop, keeping the replay hot path
/// free of clock reads and extra branches (the `obs_overhead` bench
/// asserts this).
pub fn run_replay_governed(
    machine: &mut Machine<'_>,
    ctl: &mut ReplayController<'_>,
    stop_at_loop_exit: bool,
    max_steps: u64,
    gov: ReplayGovernor<'_>,
) -> ReplayEnd {
    if gov.is_inactive() {
        return run_replay(machine, ctl, stop_at_loop_exit, max_steps);
    }
    let budget = machine.steps().saturating_add(max_steps);
    let mut n: u64 = 0;
    loop {
        if let Some(ret) = machine.result() {
            return ReplayEnd::Finished(ret);
        }
        if stop_at_loop_exit && ctl.loop_exited {
            return ReplayEnd::LoopExited;
        }
        if machine.steps() >= budget {
            return ReplayEnd::BudgetExhausted;
        }
        if let Some(at) = gov.trap_at_step {
            if n >= at {
                return ReplayEnd::Trapped(Trap::Injected);
            }
        }
        // Checked at n == 0 too, so a zero deadline (or an
        // already-tripped token) expires deterministically before the
        // first step.
        if n.is_multiple_of(GOVERN_GRANULE) {
            if let Some(d) = gov.deadline {
                if Instant::now() >= d {
                    return ReplayEnd::DeadlineExpired;
                }
            }
            if let Some(c) = gov.cancel {
                if c.is_cancelled() {
                    return ReplayEnd::Cancelled;
                }
            }
        }
        n += 1;
        match machine.step(ctl) {
            Ok(()) => {}
            Err(Trap::NotRunning) => return ReplayEnd::Finished(machine.result().unwrap_or(None)),
            Err(t) => return ReplayEnd::Trapped(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DcaConfig;
    use crate::record::record_golden;
    use dca_ir::FuncView;

    /// Compiles, records loop `tag`, replays it under `perm_of(trip)`, and
    /// returns (golden outcome, replay outcome, replay output).
    fn replay_with(
        src: &str,
        tag: &str,
        perm_of: impl Fn(usize) -> Vec<usize>,
    ) -> (
        crate::outcome::ProgramOutcome,
        ReplayEnd,
        Vec<dca_interp::OutputItem>,
    ) {
        let m = dca_ir::compile(src).expect("compile");
        let main = m.main().expect("main");
        let (fid, l) = {
            let mut found = None;
            for (i, _) in m.funcs.iter().enumerate() {
                let fid = dca_ir::FuncId(i as u32);
                let view = FuncView::new(&m, fid);
                if let Some(l) = view.loops.by_tag(tag) {
                    found = Some((fid, l.clone()));
                    break;
                }
            }
            found.expect("tagged loop")
        };
        let view = FuncView::new(&m, fid);
        let slice = IteratorSlice::compute(&view, &l);
        let mut machine = Machine::new(&m);
        let golden = record_golden(
            &mut machine,
            main,
            &[],
            fid,
            &l,
            &slice,
            0,
            DcaConfig::DEFAULT_MAX_TRIP,
            DcaConfig::TEST_STEP_BUDGET,
        )
        .expect("golden");
        let perm = perm_of(golden.iters.len());
        machine.restore(&golden.snapshot);
        let mut ctl = ReplayController::new(fid, m.func(fid), &l, &slice, &golden, &perm);
        let end = run_replay(&mut machine, &mut ctl, false, DcaConfig::TEST_STEP_BUDGET);
        (golden.outcome.clone(), end, machine.output().to_vec())
    }

    #[test]
    fn governor_cancellation_ends_a_replay_at_the_first_granule() {
        let src = "fn main() -> int { let a: [int; 8]; let s: int = 0; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { a[i] = i * i; } \
             for (let i: int = 0; i < 8; i = i + 1) { s = s + a[i]; } return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let main = m.main().expect("main");
        let view = FuncView::new(&m, main);
        let l = view.loops.by_tag("l").expect("tagged loop").clone();
        let slice = IteratorSlice::compute(&view, &l);
        let mut machine = Machine::new(&m);
        let golden = record_golden(
            &mut machine,
            main,
            &[],
            main,
            &l,
            &slice,
            0,
            DcaConfig::DEFAULT_MAX_TRIP,
            DcaConfig::TEST_STEP_BUDGET,
        )
        .expect("golden");
        let perm: Vec<usize> = (0..golden.iters.len()).collect();
        let token = CancelToken::new();
        token.cancel();
        let gov = ReplayGovernor {
            cancel: Some(&token),
            ..ReplayGovernor::default()
        };
        assert!(!gov.is_inactive(), "a token arms the governor");
        machine.restore(&golden.snapshot);
        let mut ctl = ReplayController::new(main, m.func(main), &l, &slice, &golden, &perm);
        let end = run_replay_governed(
            &mut machine,
            &mut ctl,
            false,
            DcaConfig::TEST_STEP_BUDGET,
            gov,
        );
        assert_eq!(
            end,
            ReplayEnd::Cancelled,
            "a pre-tripped token cancels before the first step"
        );
        assert!(ReplayGovernor::default().is_inactive());
    }

    #[test]
    fn identity_replay_reproduces_golden_outcome() {
        let (golden, end, out) = replay_with(
            "fn main() -> int { let a: [int; 8]; let s: int = 0; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { a[i] = i * i; } \
             for (let i: int = 0; i < 8; i = i + 1) { s = s + a[i]; } \
             print(s); return s; }",
            "l",
            |n| (0..n).collect(),
        );
        match end {
            ReplayEnd::Finished(ret) => {
                assert_eq!(ret, golden.ret);
                assert_eq!(out, golden.output);
            }
            other => panic!("unexpected end: {other:?}"),
        }
    }

    #[test]
    fn reversed_map_loop_matches_golden() {
        let (golden, end, _) = replay_with(
            "fn main() -> int { let a: [int; 8]; let s: int = 0; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { a[i] = i * 3; } \
             for (let i: int = 0; i < 8; i = i + 1) { s = s + a[i]; } return s; }",
            "l",
            |n| (0..n).rev().collect(),
        );
        assert_eq!(end, ReplayEnd::Finished(golden.ret));
    }

    #[test]
    fn reversed_order_dependent_loop_diverges() {
        // a[i] = a[i-1] + 1: a genuine recurrence. Reversing iterations
        // produces a different array, which the outcome exposes.
        let (golden, end, _) = replay_with(
            "fn main() -> int { let a: [int; 8]; a[0] = 1; let s: int = 0; \
             @l: for (let i: int = 1; i < 8; i = i + 1) { a[i] = a[i - 1] + 1; } \
             for (let i: int = 0; i < 8; i = i + 1) { s = s + a[i] * (i + 1); } return s; }",
            "l",
            |n| (0..n).rev().collect(),
        );
        match end {
            ReplayEnd::Finished(ret) => {
                assert_ne!(ret, golden.ret, "recurrence must produce a different sum");
            }
            other => panic!("unexpected end: {other:?}"),
        }
    }

    #[test]
    fn reversed_pointer_chase_map_matches_golden() {
        let (golden, end, _) = replay_with(
            "struct N { v: int, next: *N }\n\
             fn main() -> int { let head: *N = null; \
             for (let i: int = 0; i < 6; i = i + 1) { \
               let n: *N = new N; n.v = i; n.next = head; head = n; } \
             let p: *N = head; \
             @walk: while (p != null) { p.v = p.v * 2; p = p.next; } \
             let s: int = 0; let q: *N = head; \
             while (q != null) { s = s * 10 + q.v; q = q.next; } return s; }",
            "walk",
            |n| (0..n).rev().collect(),
        );
        // Despite the cross-iteration dependence on `p` that defeats
        // dependence analysis (paper Fig. 1(b)), the reversed execution
        // produces the same program outcome.
        assert_eq!(end, ReplayEnd::Finished(golden.ret));
    }

    #[test]
    fn reversed_reduction_matches_golden() {
        let (golden, end, _) = replay_with(
            "fn main() -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < 10; i = i + 1) { s = s + i * i; } \
             return s; }",
            "l",
            |n| (0..n).rev().collect(),
        );
        assert_eq!(end, ReplayEnd::Finished(golden.ret));
    }

    #[test]
    fn shuffled_histogram_matches_golden() {
        let (golden, end, _) = replay_with(
            "fn main() -> int { let hist: [int; 7]; \
             @l: for (let i: int = 0; i < 40; i = i + 1) { \
               let b: int = i * i % 7; hist[b] = hist[b] + 1; } \
             let s: int = 0; \
             for (let k: int = 0; k < 7; k = k + 1) { s = s * 100 + hist[k]; } \
             return s; }",
            "l",
            |n| {
                // A fixed "shuffle": odd indices first, then even.
                let mut p: Vec<usize> = (0..n).filter(|i| i % 2 == 1).collect();
                p.extend((0..n).filter(|i| i % 2 == 0));
                p
            },
        );
        assert_eq!(end, ReplayEnd::Finished(golden.ret));
    }

    #[test]
    fn first_match_search_diverges_under_reversal() {
        // The loop keeps the *first* index whose value exceeds a threshold
        // (via a guarded write) — order-sensitive, hence not commutative.
        let (golden, end, _) = replay_with(
            "fn main() -> int { let a: [int; 8]; let first: int = 0 - 1; \
             for (let i: int = 0; i < 8; i = i + 1) { a[i] = i * 13 % 8; } \
             @l: for (let i: int = 0; i < 8; i = i + 1) { \
               if (a[i] > 4 && first < 0) { first = i; } } \
             return first; }",
            "l",
            |n| (0..n).rev().collect(),
        );
        match end {
            ReplayEnd::Finished(ret) => assert_ne!(ret, golden.ret),
            other => panic!("unexpected end: {other:?}"),
        }
    }

    #[test]
    fn worklist_traversal_replays_under_permutation() {
        // A worklist-sum in the style of the paper's Fig. 2 / treeadd:
        // the pop is a destructive iterator whose effects the pre-pass
        // applies once; the payload sum commutes.
        let src = "struct Cell { v: int, next: *Cell }\n\
             struct List { head: *Cell }\n\
             fn push(l: *List, v: int) { \
               let c: *Cell = new Cell; c.v = v; c.next = l.head; l.head = c; }\n\
             fn main() -> int {\n\
               let wl: *List = new List;\n\
               for (let i: int = 0; i < 10; i = i + 1) { push(wl, i * i); }\n\
               let sum: int = 0;\n\
               @drain: while (wl.head != null) {\n\
                 let c: *Cell = wl.head;\n\
                 wl.head = c.next;\n\
                 sum = sum + c.v;\n\
               }\n\
               return sum;\n\
             }";
        let (golden, end, _) = replay_with(src, "drain", |n| (0..n).rev().collect());
        assert_eq!(end, ReplayEnd::Finished(golden.ret));
        let (golden, end, _) = replay_with(src, "drain", |n| {
            let mut p: Vec<usize> = (0..n).step_by(2).collect();
            p.extend((1..n).step_by(2));
            p
        });
        assert_eq!(end, ReplayEnd::Finished(golden.ret));
    }
}
