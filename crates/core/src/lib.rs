//! Dynamic Commutativity Analysis (DCA) — the primary contribution of
//! *"Loop Parallelization using Dynamic Commutativity Analysis"*
//! (Vasiladiotis, Castañeda Lozano, Cole & Franke, CGO 2021).
//!
//! A loop is **commutative** when rearranging its iterations preserves the
//! outcome of the original program (paper §III). DCA tests this property
//! dynamically and uniformly across regular array-based loops and
//! irregular pointer-linked data structure (PLDS) traversals:
//!
//! 1. **Static stage** (paper §IV-A, in [`dca_analysis`]): iterator/payload
//!    separation via generalized iterator recognition; loops with I/O or
//!    empty payloads are excluded.
//! 2. **Dynamic stage** (paper §IV-B, this crate):
//!    [`record`] runs the program once in original order, capturing the
//!    linearized iterator values, a snapshot at the tested invocation's
//!    entry, and the golden outcome; [`replay`] re-executes the loop under
//!    permuted iteration orders ([`perm`]); [`outcome`] verifies the
//!    live-outs against the golden reference.
//! 3. The verdicts land in a [`DcaReport`] ([`report`]).
//!
//! # Example
//!
//! ```
//! use dca_core::{Dca, DcaConfig, LoopVerdict};
//!
//! // Fig. 1(b) of the paper: the pointer-chasing loop whose
//! // cross-iteration dependence on `ptr` defeats dependence analysis.
//! let module = dca_ir::compile(
//!     "struct Node { val: int, next: *Node }
//!      fn main() -> int {
//!          let head: *Node = null;
//!          for (let i: int = 0; i < 8; i = i + 1) {
//!              let n: *Node = new Node; n.val = i; n.next = head; head = n;
//!          }
//!          let ptr: *Node = head;
//!          @map: while (ptr != null) { ptr.val = ptr.val + 1; ptr = ptr.next; }
//!          let s: int = 0; let q: *Node = head;
//!          while (q != null) { s = s + q.val; q = q.next; }
//!          return s;
//!      }",
//! ).map_err(|e| e.to_string())?;
//! let report = Dca::new(DcaConfig::fast())
//!     .analyze_module(&module)
//!     .map_err(|e| e.to_string())?;
//! assert_eq!(report.by_tag("map").expect("loop").verdict, LoopVerdict::Commutative);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod fault;
pub mod journal;
pub mod outcome;
pub mod parallel;
pub mod perm;
pub mod record;
pub mod replay;
pub mod report;

pub use cache::{CacheDecision, CacheStats, CachedVerdict, KeyBuilder, VerdictCache};
pub use config::{DcaConfig, DigestMode, ObsOptions, PermutationSet, VerifyScope, WallLimits};
pub use dca_deps::{
    autotune_chunk, check_decomposable, Conflict, ConflictKind, DepReport, DepVerdict,
    FootprintProbe, IterFootprint, LoopProfile,
};
pub use dca_obs::{Obs, ObsRollup, SpanStat};
pub use engine::{digest_roots, read_roots, Dca, DcaError, DigestRoots};
pub use fault::{catch_contained, FaultKind, FaultPlan, FaultSpecError};
pub use journal::{JournalEntry, RunJournal, RunJournalStats};
pub use outcome::{
    canon_f64_bits, float_close, hash_live_state, DigestScratch, Divergence, ProgramOutcome,
    StateDigest,
};
pub use parallel::{effective_threads, CancelToken};
pub use record::{
    record_golden, record_golden_governed, record_golden_profiled, GoldenRecord, RecordError,
};
pub use replay::{run_replay, run_replay_governed, ReplayController, ReplayEnd, ReplayGovernor};
pub use report::{DcaReport, LoopResult, LoopVerdict, SkipReason, Violation};
