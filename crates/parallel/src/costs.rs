//! Per-iteration cost measurement for selected loops.
//!
//! The multicore simulator needs, for every parallelized loop invocation,
//! the cost of each iteration (inclusive of nested loops and calls). One
//! instrumented sequential run collects these as interpreter step deltas
//! between header arrivals.

use dca_interp::{Hooks, Machine, Site, Trap, Value};
use dca_ir::{BlockId, FuncId, FuncView, LoopRef, Module};
use std::collections::{BTreeSet, HashMap};

/// The measured iterations of one loop invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvocationCosts {
    /// Steps per iteration, in original execution order.
    pub iter_costs: Vec<u64>,
    /// True when this invocation ran while another *watched* invocation
    /// was active (any loop, any function). Speedup accounting must skip
    /// nested invocations: their time already lives inside the enclosing
    /// invocation's iteration costs.
    pub nested: bool,
}

impl InvocationCosts {
    /// Total sequential steps of the invocation's iterations.
    pub fn total(&self) -> u64 {
        self.iter_costs.iter().sum()
    }
}

/// Costs for every selected loop, plus the run's total step count.
#[derive(Debug, Clone, Default)]
pub struct CostProfile {
    /// Invocations per loop, in execution order.
    pub per_loop: HashMap<LoopRef, Vec<InvocationCosts>>,
    /// Total steps of the sequential run.
    pub total_steps: u64,
}

impl CostProfile {
    /// Sum over all invocations of `l`.
    pub fn loop_total(&self, l: LoopRef) -> u64 {
        self.per_loop
            .get(&l)
            .map(|invs| invs.iter().map(InvocationCosts::total).sum())
            .unwrap_or(0)
    }
}

struct WatchedLoop {
    header: BlockId,
    blocks: BTreeSet<BlockId>,
}

struct ActiveInvocation {
    lref: LoopRef,
    depth: usize,
    last_header_steps: u64,
    costs: InvocationCosts,
}

/// The measuring [`Hooks`] implementation.
pub struct CostProfiler {
    /// Watched loops per function.
    watched: HashMap<FuncId, Vec<(LoopRef, WatchedLoop)>>,
    active: Vec<ActiveInvocation>,
    out: CostProfile,
}

impl CostProfiler {
    /// Prepares to measure exactly the loops in `selection`.
    pub fn new(module: &Module, selection: &BTreeSet<LoopRef>) -> Self {
        let mut watched: HashMap<FuncId, Vec<(LoopRef, WatchedLoop)>> = HashMap::new();
        for &lref in selection {
            let view = FuncView::new(module, lref.func);
            let l = view.loops.get(lref.loop_id);
            watched.entry(lref.func).or_default().push((
                lref,
                WatchedLoop {
                    header: l.header,
                    blocks: l.blocks.clone(),
                },
            ));
        }
        CostProfiler {
            watched,
            active: Vec::new(),
            out: CostProfile::default(),
        }
    }

    /// Finishes the measurement.
    pub fn finish(mut self, total_steps: u64) -> CostProfile {
        while let Some(a) = self.active.pop() {
            self.out.per_loop.entry(a.lref).or_default().push(a.costs);
        }
        self.out.total_steps = total_steps;
        self.out
    }

    fn close(&mut self, idx: usize, now: u64) {
        let mut a = self.active.remove(idx);
        // The final partial interval (exit check) attributes to the last
        // iteration; drop it when no iteration was recorded.
        let tail = now.saturating_sub(a.last_header_steps);
        if let Some(last) = a.costs.iter_costs.last_mut() {
            *last += tail;
        }
        self.out.per_loop.entry(a.lref).or_default().push(a.costs);
    }
}

impl Hooks for CostProfiler {
    fn on_block(&mut self, site: Site, block: BlockId, _vars: &mut [Value]) {
        // Close invocations whose loop we just left (same depth and
        // function, block outside), or record an iteration boundary at the
        // header.
        let mut i = 0;
        while i < self.active.len() {
            let (lref, depth) = (self.active[i].lref, self.active[i].depth);
            if depth == site.depth && lref.func == site.func {
                let watched = &self.watched[&site.func];
                let w = &watched
                    .iter()
                    .find(|(l, _)| *l == lref)
                    .expect("active loops are watched")
                    .1;
                if block == w.header {
                    let a = &mut self.active[i];
                    let delta = site.steps - a.last_header_steps;
                    a.costs.iter_costs.push(delta);
                    a.last_header_steps = site.steps;
                } else if !w.blocks.contains(&block) {
                    self.close(i, site.steps);
                    continue;
                }
            }
            i += 1;
        }
        // Open a new invocation when a watched header is entered and it is
        // not already active at this depth.
        if let Some(ws) = self.watched.get(&site.func) {
            for (lref, w) in ws {
                if w.header == block
                    && !self
                        .active
                        .iter()
                        .any(|a| a.lref == *lref && a.depth == site.depth)
                {
                    let nested = !self.active.is_empty();
                    self.active.push(ActiveInvocation {
                        lref: *lref,
                        depth: site.depth,
                        last_header_steps: site.steps,
                        costs: InvocationCosts {
                            nested,
                            ..InvocationCosts::default()
                        },
                    });
                }
            }
        }
    }

    fn on_return(&mut self, site: Site, _func: FuncId) {
        let now = site.steps;
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].depth >= site.depth {
                self.close(i, now);
            } else {
                i += 1;
            }
        }
    }
}

/// Measures the fraction of execution steps spent inside *any* loop of
/// `selection` (union attribution: overlapping activations — e.g. a
/// selected callee loop running inside a selected caller loop — are not
/// double-counted). Returns a value in `[0, 1]`.
///
/// # Errors
///
/// Propagates interpreter traps.
///
/// # Panics
///
/// Panics if the module has no `main`.
pub fn covered_fraction(
    module: &Module,
    args: &[Value],
    selection: &BTreeSet<LoopRef>,
) -> Result<f64, Trap> {
    struct UnionCoverage {
        watched: HashMap<FuncId, Vec<(LoopRef, WatchedLoop)>>,
        /// Stack of (depth, lref) activations.
        active: Vec<(usize, LoopRef)>,
        covered: u64,
        last_steps: u64,
    }
    impl UnionCoverage {
        fn tick(&mut self, now: u64) {
            if !self.active.is_empty() {
                self.covered += now.saturating_sub(self.last_steps);
            }
            self.last_steps = now;
        }
    }
    impl Hooks for UnionCoverage {
        fn on_block(&mut self, site: Site, block: BlockId, _vars: &mut [Value]) {
            self.tick(site.steps);
            // Close activations we have left.
            self.active.retain(|&(d, lref)| {
                if d != site.depth || lref.func != site.func {
                    // A deeper frame returning is handled in on_return;
                    // keep anything at other depths.
                    return d < site.depth;
                }
                let w = &self.watched[&site.func]
                    .iter()
                    .find(|(l, _)| *l == lref)
                    .expect("active loops are watched")
                    .1;
                w.blocks.contains(&block)
            });
            if let Some(ws) = self.watched.get(&site.func) {
                for (lref, w) in ws {
                    if w.header == block
                        && !self
                            .active
                            .iter()
                            .any(|&(d, l)| l == *lref && d == site.depth)
                    {
                        self.active.push((site.depth, *lref));
                    }
                }
            }
        }
        fn on_return(&mut self, site: Site, _func: FuncId) {
            self.tick(site.steps);
            self.active.retain(|&(d, _)| d < site.depth);
        }
    }
    let mut machine = Machine::new(module);
    machine.push_call(module.main().expect("module has `main`"), args)?;
    let mut watched: HashMap<FuncId, Vec<(LoopRef, WatchedLoop)>> = HashMap::new();
    for &lref in selection {
        let view = FuncView::new(module, lref.func);
        let l = view.loops.get(lref.loop_id);
        watched.entry(lref.func).or_default().push((
            lref,
            WatchedLoop {
                header: l.header,
                blocks: l.blocks.clone(),
            },
        ));
    }
    let mut cov = UnionCoverage {
        watched,
        active: Vec::new(),
        covered: 0,
        last_steps: 0,
    };
    machine.run(&mut cov, u64::MAX)?;
    cov.tick(machine.steps());
    Ok(cov.covered as f64 / machine.steps().max(1) as f64)
}

/// Measures iteration costs for `selection` in one sequential run of
/// `main(args)`.
///
/// # Errors
///
/// Propagates interpreter traps.
///
/// # Panics
///
/// Panics if the module has no `main`.
pub fn measure_costs(
    module: &Module,
    args: &[Value],
    selection: &BTreeSet<LoopRef>,
    max_steps: u64,
) -> Result<CostProfile, Trap> {
    let mut machine = Machine::new(module);
    machine.push_call(module.main().expect("module has `main`"), args)?;
    let mut profiler = CostProfiler::new(module, selection);
    machine.run(&mut profiler, max_steps)?;
    Ok(profiler.finish(machine.steps()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs_of(src: &str, tag: &str) -> (CostProfile, LoopRef) {
        let m = dca_ir::compile(src).expect("compile");
        let lref = dca_ir::all_loops(&m)
            .into_iter()
            .find(|(_, t)| t.as_deref() == Some(tag))
            .expect("tagged loop")
            .0;
        let profile =
            measure_costs(&m, &[], &BTreeSet::from([lref]), 100_000_000).expect("measure");
        (profile, lref)
    }

    #[test]
    fn counts_iterations_and_costs() {
        let (p, l) = costs_of(
            "fn main() { let s: int = 0; \
             @l: for (let i: int = 0; i < 10; i = i + 1) { s = s + i; } }",
            "l",
        );
        let invs = &p.per_loop[&l];
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].iter_costs.len(), 10);
        // Uniform body => roughly uniform per-iteration costs.
        let min = invs[0].iter_costs.iter().min().expect("non-empty");
        let max = invs[0].iter_costs.iter().max().expect("non-empty");
        assert!(max - min <= 4, "costs {:?}", invs[0].iter_costs);
        assert!(p.loop_total(l) <= p.total_steps);
    }

    #[test]
    fn nested_calls_attribute_to_iteration() {
        let (p, l) = costs_of(
            "fn work(n: int) -> int { let s: int = 0; \
             for (let k: int = 0; k < n; k = k + 1) { s = s + k; } return s; }\n\
             fn main() { let t: int = 0; \
             @l: for (let i: int = 0; i < 4; i = i + 1) { t = t + work(i * 20); } }",
            "l",
        );
        let inv = &p.per_loop[&l][0];
        assert_eq!(inv.iter_costs.len(), 4);
        // Later iterations call work() with bigger n => strictly growing.
        for w in inv.iter_costs.windows(2) {
            assert!(w[1] > w[0], "costs {:?}", inv.iter_costs);
        }
    }

    #[test]
    fn multiple_invocations_recorded() {
        let (p, l) = costs_of(
            "fn go(n: int) { let s: int = 0; \
             @l: for (let i: int = 0; i < n; i = i + 1) { s = s + i; } }\n\
             fn main() { go(3); go(7); }",
            "l",
        );
        let invs = &p.per_loop[&l];
        assert_eq!(invs.len(), 2);
        assert_eq!(invs[0].iter_costs.len(), 3);
        assert_eq!(invs[1].iter_costs.len(), 7);
    }

    #[test]
    fn unexecuted_selection_yields_no_costs() {
        let (p, l) = costs_of(
            "fn dead() { @l: while (false) { let x: int = 1; x = x + 1; } }\n\
             fn main() { }",
            "l",
        );
        assert_eq!(p.loop_total(l), 0);
    }
}
