//! Parallelization stage and multicore simulator for the DCA reproduction
//! (paper §IV-C, §V-B3, §V-C2).
//!
//! Four pieces:
//!
//! * [`plan`] — the OpenMP-style clauses (privatization, reductions) a
//!   simple loop parallelizer emits, following Tournavitis et al.;
//! * [`costs`] — per-iteration cost measurement from one instrumented
//!   sequential run;
//! * [`sim`] — a deterministic virtual-time multicore executor used in
//!   place of the paper's 72-core host (see DESIGN.md for why the
//!   substitution preserves the figures' shape);
//! * [`exec`] — a real multithreaded executor that runs a proven loop's
//!   iterations across OS threads and differentially validates the
//!   merged state against the sequential oracle.
//!
//! The [`speedup_for_selection`] helper glues them together: given the set
//! of loops a detector found (and a profitability selection), it returns
//! the whole-program speedup the paper's figures report.

#![warn(missing_docs)]

pub mod advisor;
pub mod costs;
pub mod exec;
pub mod plan;
pub mod sim;

pub use advisor::{advise, render, Advice};
pub use costs::{covered_fraction, measure_costs, CostProfile, CostProfiler, InvocationCosts};
pub use exec::{
    exec_threads, execute_commutative, execute_loop, ExecConfig, ExecError, ExecOutcome, ExecRun,
};
pub use plan::ParallelPlan;
pub use sim::{
    outermost_only, program_speedup, simulate_invocation, Schedule, SimConfig, SimResult,
};
// Dependence-subsystem types that surface through this crate's API
// (`ExecError::NotDecomposable` carries a `Conflict`; `Schedule::Auto`
// resolves through `autotune_chunk`).
pub use dca_deps::{
    autotune_chunk, check_decomposable, Conflict, ConflictKind, DepReport, DepVerdict, LoopProfile,
    DEFAULT_DYNAMIC_CHUNK,
};

use dca_interp::{Trap, Value};
use dca_ir::{LoopRef, Module};
use std::collections::BTreeSet;

/// Measures costs and simulates the whole-program speedup of parallelizing
/// `selection` (outermost loops only are kept; nested selections are
/// dropped automatically). Reduction clauses found by planning contribute
/// their combine costs.
///
/// # Errors
///
/// Propagates interpreter traps from the measurement run.
pub fn speedup_for_selection(
    module: &Module,
    args: &[Value],
    selection: &BTreeSet<LoopRef>,
    cfg: &SimConfig,
) -> Result<f64, Trap> {
    let outer = outermost_only(module, selection);
    let profile = costs::measure_costs(module, args, &outer, u64::MAX)?;
    // Account reduction-combine costs per loop by adjusting the config.
    let total = profile.total_steps.max(1) as f64;
    let mut parallel_time = total;
    for &lref in &outer {
        let plan = ParallelPlan::build(module, lref);
        let loop_cfg = SimConfig {
            reduction_vars: plan.reductions.len(),
            ..*cfg
        };
        let Some(invs) = profile.per_loop.get(&lref) else {
            continue;
        };
        for inv in invs.iter().filter(|inv| !inv.nested) {
            let r = simulate_invocation(&inv.iter_costs, &loop_cfg);
            parallel_time -= r.seq_steps as f64;
            parallel_time += r.par_steps as f64;
        }
    }
    // Measured profiles always cover the selected loops, so the residual
    // cannot go negative (see `program_speedup` for the full argument);
    // an inconsistency is an accounting bug, not a speedup.
    debug_assert!(
        parallel_time >= 0.0,
        "negative simulated parallel time ({parallel_time}) for a measured profile"
    );
    if parallel_time <= 0.0 {
        return Ok(1.0);
    }
    Ok(total / parallel_time)
}

/// Like [`speedup_for_selection`], but additionally models a *full expert
/// parallelization* (paper Fig. 7): beyond the selected loops, a fraction
/// `extra` of the residual sequential time is parallelized as whole
/// sections. Returns `(loop_speedup, full_speedup)`.
///
/// # Errors
///
/// Propagates interpreter traps from the measurement run.
pub fn speedup_with_extra(
    module: &Module,
    args: &[Value],
    selection: &BTreeSet<LoopRef>,
    cfg: &SimConfig,
    extra: f64,
) -> Result<(f64, f64), Trap> {
    let outer = outermost_only(module, selection);
    let profile = costs::measure_costs(module, args, &outer, u64::MAX)?;
    let total = profile.total_steps.max(1) as f64;
    let mut selected_seq = 0.0;
    let mut selected_par = 0.0;
    for &lref in &outer {
        let plan = ParallelPlan::build(module, lref);
        let loop_cfg = SimConfig {
            reduction_vars: plan.reductions.len(),
            ..*cfg
        };
        let Some(invs) = profile.per_loop.get(&lref) else {
            continue;
        };
        for inv in invs.iter().filter(|inv| !inv.nested) {
            let r = simulate_invocation(&inv.iter_costs, &loop_cfg);
            selected_seq += r.seq_steps as f64;
            selected_par += r.par_steps as f64;
        }
    }
    let residual = (total - selected_seq).max(0.0);
    let t_loop = (residual + selected_par).max(1.0);
    let extra = extra.clamp(0.0, 1.0);
    let t_full =
        (residual * (1.0 - extra) + residual * extra / cfg.cores.max(1) as f64 + selected_par)
            .max(1.0);
    Ok((total / t_loop, total / t_full))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_fraction_bounds_full_speedup() {
        let m = dca_ir::compile(
            "fn main() -> int { let a: [int; 512]; let s: int = 0; \
             @hot: for (let i: int = 0; i < 512; i = i + 1) { a[i] = i * i % 97; } \
             for (let i: int = 0; i < 512; i = i + 1) { s = s + a[i]; } return s; }",
        )
        .expect("compile");
        let hot = dca_ir::all_loops(&m)
            .into_iter()
            .find(|(_, t)| t.as_deref() == Some("hot"))
            .expect("tag")
            .0;
        let sel = BTreeSet::from([hot]);
        let cfg = SimConfig::paper_host();
        let (lo, full0) = speedup_with_extra(&m, &[], &sel, &cfg, 0.0).expect("simulate");
        let (_, full9) = speedup_with_extra(&m, &[], &sel, &cfg, 0.9).expect("simulate");
        assert!((lo - full0).abs() < 1e-9, "extra=0 equals loop-only");
        assert!(full9 > lo, "extra parallel sections help");
    }

    #[test]
    fn hot_map_loop_speeds_up_program() {
        let m = dca_ir::compile(
            "fn main() -> float { let a: *float = new [float; 4096]; \
             let s: float = 0.0; \
             @hot: for (let i: int = 0; i < 4096; i = i + 1) { \
               let x: float = i as float; \
               a[i] = sqrt(x * x + 1.0) + sin(x) * cos(x); } \
             for (let i: int = 0; i < 4096; i = i + 1) { s = s + a[i]; } \
             return s; }",
        )
        .expect("compile");
        let hot = dca_ir::all_loops(&m)
            .into_iter()
            .find(|(_, t)| t.as_deref() == Some("hot"))
            .expect("tag")
            .0;
        let s = speedup_for_selection(&m, &[], &BTreeSet::from([hot]), &SimConfig::paper_host())
            .expect("simulate");
        assert!(s > 2.0, "speedup {s}");
        // More cores help until Amdahl saturates.
        let s8 = speedup_for_selection(&m, &[], &BTreeSet::from([hot]), &SimConfig::with_cores(8))
            .expect("simulate");
        assert!(s8 > 1.5 && s8 < s, "s8 = {s8}, s72 = {s}");
    }

    #[test]
    fn empty_selection_is_baseline() {
        let m = dca_ir::compile(
            "fn main() { let s: int = 0; \
             for (let i: int = 0; i < 100; i = i + 1) { s = s + i; } }",
        )
        .expect("compile");
        let s = speedup_for_selection(&m, &[], &BTreeSet::new(), &SimConfig::paper_host())
            .expect("simulate");
        assert_eq!(s, 1.0);
    }
}
