//! Deterministic multicore execution simulator.
//!
//! The paper's speedups come from a 72-core Xeon; this host has one core,
//! so wall-clock speedups are unobtainable. The figures' *shape*, however,
//! is a function of loop coverage, the per-iteration cost distribution and
//! the scheduling policy — all of which this simulator models in virtual
//! time: iterations are dealt to `cores` workers (static block or dynamic
//! self-scheduling), each invocation pays a fork/join overhead, and
//! reductions pay a logarithmic combine. Whole-program speedup follows by
//! replacing each parallelized invocation's sequential cost with its
//! simulated parallel cost (Amdahl composition over the measured profile).

use crate::costs::CostProfile;
use dca_ir::LoopRef;
use std::collections::BTreeSet;

/// Scheduling policy for distributing iterations over cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// OpenMP `schedule(static)`: contiguous blocks, one per core.
    #[default]
    StaticBlock,
    /// OpenMP `schedule(dynamic, chunk)`: cores pull chunks greedily.
    Dynamic {
        /// Iterations per grab.
        chunk: usize,
    },
    /// Dynamic self-scheduling with the chunk size autotuned from the
    /// per-iteration cost profile ([`dca_deps::autotune_chunk`]): the
    /// simulator tunes from `iter_costs`, the real executor from the
    /// golden recording's footprint profile. Deterministic — the chunk
    /// is a pure function of the profile and the worker count.
    Auto,
}

impl Schedule {
    /// The dynamic schedule with the one repo-wide default chunk
    /// ([`dca_deps::DEFAULT_DYNAMIC_CHUNK`]), for callers that want
    /// self-scheduling without a tuned profile.
    #[must_use]
    pub fn default_dynamic() -> Self {
        Schedule::Dynamic {
            chunk: dca_deps::DEFAULT_DYNAMIC_CHUNK,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Worker cores (the paper's host has 72).
    pub cores: usize,
    /// Steps to fork and join a parallel region (per invocation).
    pub fork_join_overhead: u64,
    /// Extra steps per scheduled chunk (dispatch cost).
    pub per_chunk_overhead: u64,
    /// Steps per reduction variable per combine level (log₂ cores levels).
    pub reduction_combine_cost: u64,
    /// Scheduling policy.
    pub schedule: Schedule,
    /// Number of reduction variables the loop carries (affects combine).
    pub reduction_vars: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 72,
            fork_join_overhead: 250,
            per_chunk_overhead: 6,
            reduction_combine_cost: 12,
            schedule: Schedule::StaticBlock,
            reduction_vars: 0,
        }
    }
}

impl SimConfig {
    /// The paper's 72-core host.
    pub fn paper_host() -> Self {
        SimConfig::default()
    }

    /// A host with `cores` cores, other parameters default.
    pub fn with_cores(cores: usize) -> Self {
        SimConfig {
            cores,
            ..SimConfig::default()
        }
    }

    /// A copy with degenerate fields clamped to runnable values:
    /// `Dynamic { chunk: 0 }` becomes `chunk: 1` (zero iterations per
    /// grab would spin the chunk-dealing loop forever) and `cores: 0`
    /// becomes `cores: 1`. `SimConfig` is plain data built with
    /// struct-update syntax all over, so normalization happens here and
    /// is applied on entry to every simulation (and by the real
    /// executor's scheduler).
    #[must_use]
    pub fn normalized(self) -> Self {
        SimConfig {
            cores: self.cores.max(1),
            schedule: match self.schedule {
                Schedule::Dynamic { chunk } => Schedule::Dynamic {
                    chunk: chunk.max(1),
                },
                s => s,
            },
            ..self
        }
    }
}

/// Result of simulating one loop invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResult {
    /// Sequential steps of the iterations.
    pub seq_steps: u64,
    /// Simulated parallel steps (critical path + overheads).
    pub par_steps: u64,
}

impl SimResult {
    /// Speedup of this invocation alone.
    pub fn speedup(&self) -> f64 {
        if self.par_steps == 0 {
            return 1.0;
        }
        self.seq_steps as f64 / self.par_steps as f64
    }
}

/// Simulates one invocation: distributes `iter_costs` over the cores.
pub fn simulate_invocation(iter_costs: &[u64], cfg: &SimConfig) -> SimResult {
    let cfg = cfg.normalized();
    let seq: u64 = iter_costs.iter().sum();
    if iter_costs.is_empty() || cfg.cores <= 1 {
        return SimResult {
            seq_steps: seq,
            par_steps: seq,
        };
    }
    let critical = match cfg.schedule {
        Schedule::StaticBlock => {
            // Contiguous blocks of ceil(n/p) iterations.
            let n = iter_costs.len();
            let block = n.div_ceil(cfg.cores);
            iter_costs
                .chunks(block)
                .map(|c| c.iter().sum::<u64>() + cfg.per_chunk_overhead)
                .max()
                .unwrap_or(0)
        }
        Schedule::Dynamic { .. } | Schedule::Auto => {
            let chunk = match cfg.schedule {
                // `normalized()` clamped chunk to >= 1.
                Schedule::Dynamic { chunk } => chunk,
                _ => dca_deps::autotune_chunk(iter_costs, cfg.cores),
            };
            // Greedy list scheduling: each chunk goes to the earliest-free
            // core.
            let mut loads = vec![0u64; cfg.cores];
            for c in iter_costs.chunks(chunk) {
                let min = loads.iter_mut().min().expect("cores >= 1");
                *min += c.iter().sum::<u64>() + cfg.per_chunk_overhead;
            }
            loads.into_iter().max().unwrap_or(0)
        }
    };
    let combine = (cfg.reduction_vars as u64)
        * cfg.reduction_combine_cost
        * (cfg.cores.next_power_of_two().trailing_zeros() as u64);
    SimResult {
        seq_steps: seq,
        par_steps: critical + cfg.fork_join_overhead + combine,
    }
}

/// Whole-program speedup when the invocations of `selection` run in
/// parallel and everything else stays sequential.
///
/// Nested selections are handled by the caller (select outermost loops
/// only); this function assumes the selected loops' invocations do not
/// overlap.
pub fn program_speedup(
    profile: &CostProfile,
    selection: &BTreeSet<LoopRef>,
    cfg: &SimConfig,
) -> f64 {
    let total = profile.total_steps.max(1);
    let mut parallel_time = total as f64;
    for &lref in selection {
        let Some(invs) = profile.per_loop.get(&lref) else {
            continue;
        };
        for inv in invs {
            let r = simulate_invocation(&inv.iter_costs, cfg);
            parallel_time -= r.seq_steps as f64;
            parallel_time += r.par_steps as f64;
        }
    }
    // A consistent profile cannot drive the residual negative: every
    // selected invocation's seq_steps is part of total_steps, and
    // par_steps only adds time back. Going below zero means the profile
    // and the selection disagree (double-counted nesting, a stale
    // profile) — surface that instead of clamping it into an inflated
    // speedup.
    debug_assert!(
        parallel_time >= 0.0,
        "negative simulated parallel time ({parallel_time}): \
         selection costs exceed profile.total_steps"
    );
    if parallel_time <= 0.0 {
        // Release builds degrade to "no claimed speedup" on a corrupt
        // profile; the zero case (all steps parallelized below the
        // model's one-step resolution) is unreachable for integral step
        // counts with nonzero overheads.
        return 1.0;
    }
    total as f64 / parallel_time
}

/// Removes loops nested inside other selected loops (a parallel region
/// must not be re-parallelized from within). Keeps outermost only.
pub fn outermost_only(module: &dca_ir::Module, selection: &BTreeSet<LoopRef>) -> BTreeSet<LoopRef> {
    use dca_ir::FuncView;
    let mut out = BTreeSet::new();
    let mut by_func: std::collections::HashMap<dca_ir::FuncId, Vec<LoopRef>> =
        std::collections::HashMap::new();
    for &l in selection {
        by_func.entry(l.func).or_default().push(l);
    }
    for (func, lrefs) in by_func {
        let view = FuncView::new(module, func);
        for &lref in &lrefs {
            let mut cur = view.loops.get(lref.loop_id).parent;
            let mut nested_in_selected = false;
            while let Some(p) = cur {
                if lrefs.iter().any(|o| o.loop_id == p) {
                    nested_in_selected = true;
                    break;
                }
                cur = view.loops.get(p).parent;
            }
            if !nested_in_selected {
                out.insert(lref);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::InvocationCosts;

    #[test]
    fn uniform_iterations_scale_almost_linearly() {
        let costs = vec![100u64; 720];
        let r = simulate_invocation(&costs, &SimConfig::paper_host());
        assert_eq!(r.seq_steps, 72_000);
        let s = r.speedup();
        assert!(s > 50.0 && s <= 72.0, "speedup {s}");
    }

    #[test]
    fn few_iterations_limit_speedup() {
        let costs = vec![1000u64; 4];
        let r = simulate_invocation(&costs, &SimConfig::paper_host());
        assert!(r.speedup() <= 4.0);
    }

    #[test]
    fn skewed_costs_bound_by_critical_path() {
        let mut costs = vec![10u64; 71];
        costs.push(10_000);
        let r = simulate_invocation(&costs, &SimConfig::paper_host());
        assert!(r.par_steps >= 10_000);
        assert!(r.speedup() < 1.2);
    }

    #[test]
    fn dynamic_scheduling_beats_static_on_skew() {
        // A descending-cost triangle: static blocks give the first core all
        // the heavy iterations; dynamic balances.
        let costs: Vec<u64> = (0..720).map(|i| 1000 - i as u64).collect();
        let static_r = simulate_invocation(&costs, &SimConfig::paper_host());
        let dyn_r = simulate_invocation(
            &costs,
            &SimConfig {
                schedule: Schedule::Dynamic { chunk: 4 },
                ..SimConfig::paper_host()
            },
        );
        assert!(dyn_r.par_steps < static_r.par_steps);
    }

    #[test]
    fn auto_schedule_is_tuned_dynamic() {
        // `Auto` must behave exactly like `Dynamic` with the chunk the
        // autotuner derives from the same cost profile, and on skewed
        // costs it must not lose to the static schedule it can always
        // imitate (chunk = block size).
        let costs: Vec<u64> = (0..720).map(|i| 1000 - i as u64).collect();
        let auto = simulate_invocation(
            &costs,
            &SimConfig {
                schedule: Schedule::Auto,
                ..SimConfig::paper_host()
            },
        );
        let chunk = dca_deps::autotune_chunk(&costs, 72);
        let tuned = simulate_invocation(
            &costs,
            &SimConfig {
                schedule: Schedule::Dynamic { chunk },
                ..SimConfig::paper_host()
            },
        );
        assert_eq!(auto, tuned);
        let static_r = simulate_invocation(&costs, &SimConfig::paper_host());
        assert!(auto.par_steps <= static_r.par_steps);
    }

    #[test]
    fn overheads_make_tiny_loops_unprofitable() {
        let costs = vec![2u64; 8];
        let r = simulate_invocation(&costs, &SimConfig::paper_host());
        assert!(r.speedup() < 1.0, "parallelizing 16 steps of work loses");
    }

    #[test]
    fn reduction_combine_costs_scale_with_cores() {
        let costs = vec![100u64; 7200];
        let none = simulate_invocation(&costs, &SimConfig::paper_host());
        let with = simulate_invocation(
            &costs,
            &SimConfig {
                reduction_vars: 4,
                ..SimConfig::paper_host()
            },
        );
        assert!(with.par_steps > none.par_steps);
    }

    #[test]
    fn single_core_is_identity() {
        let costs = vec![5u64; 100];
        let r = simulate_invocation(&costs, &SimConfig::with_cores(1));
        assert_eq!(r.par_steps, r.seq_steps);
        assert_eq!(r.speedup(), 1.0);
    }

    #[test]
    fn zero_trip_invocation_speedup_is_one_not_nan() {
        // A loop whose tested invocation ran zero iterations simulates to
        // 0 sequential and 0 parallel steps; its speedup must be the
        // neutral 1.0, not 0/0 = NaN (which would poison program_speedup's
        // Amdahl composition downstream).
        let r = simulate_invocation(&[], &SimConfig::paper_host());
        assert_eq!(r.seq_steps, 0);
        assert_eq!(r.par_steps, 0);
        let s = r.speedup();
        assert!(s.is_finite(), "speedup {s} must be finite");
        assert_eq!(s, 1.0);
        // And the composition stays finite with an empty invocation in
        // the profile.
        use dca_ir::{FuncId, LoopId};
        let lref = LoopRef {
            func: FuncId(0),
            loop_id: LoopId(0),
        };
        let mut profile = CostProfile {
            total_steps: 1000,
            ..Default::default()
        };
        profile.per_loop.insert(
            lref,
            vec![InvocationCosts {
                iter_costs: vec![],
                nested: false,
            }],
        );
        let s = program_speedup(&profile, &BTreeSet::from([lref]), &SimConfig::paper_host());
        assert!(s.is_finite(), "program speedup {s} must be finite");
    }

    #[test]
    fn dynamic_chunk_zero_terminates() {
        // `Dynamic { chunk: 0 }` would pull zero iterations per grab and
        // spin forever without the construction-time clamp.
        let cfg = SimConfig {
            schedule: Schedule::Dynamic { chunk: 0 },
            ..SimConfig::paper_host()
        };
        assert_eq!(
            cfg.normalized().schedule,
            Schedule::Dynamic { chunk: 1 },
            "normalization clamps chunk to >= 1"
        );
        let costs = vec![10u64; 256];
        let r = simulate_invocation(&costs, &cfg);
        assert_eq!(r.seq_steps, 2560);
        assert!(r.par_steps > 0, "simulation completed");
        // chunk: 0 behaves exactly as chunk: 1.
        let one = simulate_invocation(
            &costs,
            &SimConfig {
                schedule: Schedule::Dynamic { chunk: 1 },
                ..SimConfig::paper_host()
            },
        );
        assert_eq!(r, one);
        // cores: 0 is clamped too instead of panicking in chunks().
        let r0 = simulate_invocation(&costs, &SimConfig::with_cores(0));
        assert_eq!(r0.par_steps, r0.seq_steps);
    }

    #[test]
    fn overhead_dominated_profile_reports_slowdown() {
        // All the work sits in 4 tiny iterations: fork/join and chunk
        // overheads exceed the parallel savings, so the whole-program
        // "speedup" is genuinely below 1.0 and must be reported as such,
        // not clamped up.
        use dca_ir::{FuncId, LoopId};
        let lref = LoopRef {
            func: FuncId(0),
            loop_id: LoopId(0),
        };
        let mut profile = CostProfile {
            total_steps: 40,
            ..Default::default()
        };
        profile.per_loop.insert(
            lref,
            vec![InvocationCosts {
                iter_costs: vec![10u64; 4],
                nested: false,
            }],
        );
        let s = program_speedup(&profile, &BTreeSet::from([lref]), &SimConfig::paper_host());
        assert!(
            s < 1.0,
            "overhead-bound profile must report slowdown, got {s}"
        );
        assert!(s > 0.0, "slowdown is still a positive ratio, got {s}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "negative simulated parallel time")]
    fn inconsistent_profile_is_detected_not_inflated() {
        // The selected loop claims more sequential steps than the whole
        // profile — an accounting bug the old `.max(1.0)` clamp silently
        // converted into a huge speedup. The debug assertion must fire.
        use dca_ir::{FuncId, LoopId};
        let lref = LoopRef {
            func: FuncId(0),
            loop_id: LoopId(0),
        };
        let mut profile = CostProfile {
            total_steps: 10,
            ..Default::default()
        };
        profile.per_loop.insert(
            lref,
            vec![InvocationCosts {
                iter_costs: vec![100_000u64; 72],
                nested: false,
            }],
        );
        let _ = program_speedup(&profile, &BTreeSet::from([lref]), &SimConfig::paper_host());
    }

    #[test]
    fn program_speedup_follows_amdahl() {
        use dca_ir::{FuncId, LoopId};
        let lref = LoopRef {
            func: FuncId(0),
            loop_id: LoopId(0),
        };
        let mut profile = CostProfile {
            total_steps: 100_000,
            ..Default::default()
        };
        // The loop covers 90% of execution with plenty of parallelism.
        profile.per_loop.insert(
            lref,
            vec![InvocationCosts {
                iter_costs: vec![125u64; 720],
                nested: false,
            }],
        );
        let s = program_speedup(&profile, &BTreeSet::from([lref]), &SimConfig::paper_host());
        // Amdahl: f = 0.9, p = 72 => bound 1/(0.1 + 0.9/72) ≈ 8.9.
        assert!(s > 6.0 && s < 8.9, "speedup {s}");
        // Empty selection: no speedup.
        let none = program_speedup(&profile, &BTreeSet::new(), &SimConfig::paper_host());
        assert_eq!(none, 1.0);
    }

    #[test]
    fn outermost_only_drops_nested() {
        let m = dca_ir::compile(
            "fn main() { let a: [int; 64]; \
             @o: for (let i: int = 0; i < 8; i = i + 1) { \
               @n: for (let j: int = 0; j < 8; j = j + 1) { a[i * 8 + j] = 1; } } }",
        )
        .expect("compile");
        let all: BTreeSet<LoopRef> = dca_ir::all_loops(&m).into_iter().map(|(l, _)| l).collect();
        assert_eq!(all.len(), 2);
        let outer = outermost_only(&m, &all);
        assert_eq!(outer.len(), 1);
        let kept = dca_ir::all_loops(&m)
            .into_iter()
            .find(|(l, _)| outer.contains(l))
            .expect("kept loop");
        assert_eq!(kept.1.as_deref(), Some("o"));
    }
}
