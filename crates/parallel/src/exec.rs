//! Real-thread parallel execution of DCA-proven loops.
//!
//! The analysis pipeline ends with a verdict ([`dca_core::LoopVerdict`])
//! and a clause set ([`ParallelPlan`]); the simulator ([`crate::sim`])
//! predicts what running them in parallel *would* buy. This module is the
//! payoff: it actually runs a proven loop's iterations across a pool of
//! OS threads, one interpreter per worker, and then **differentially
//! validates** the merged result against the sequential oracle before
//! anyone gets to trust it.
//!
//! The execution model reuses the dynamic stage's machinery end to end:
//!
//! 1. [`dca_core::record_golden`] captures the loop's first invocation —
//!    the entry snapshot, the linearized iterator values and the iterator
//!    exit state — exactly as the analysis did.
//! 2. Each worker restores the snapshot into its own [`Machine`], runs
//!    the iterator pre-pass (applying destructive iterator effects once,
//!    identically in every worker), then executes only *its* subset of
//!    payload instances, chosen by an OpenMP-style schedule
//!    ([`Schedule::StaticBlock`] contiguous blocks or
//!    [`Schedule::Dynamic`] chunk self-scheduling over a shared atomic
//!    counter). Heap writes are tracked by the machine's write journal;
//!    recognized reduction accumulators are seeded with the operator's
//!    identity and harvested as per-chunk partials.
//! 3. The main thread merges every harvest onto a fresh master machine:
//!    journal write-sets are applied cell by cell, histogram cells and
//!    scalar partials are combined with the plan's operators in a
//!    deterministic chunk-ordered tree, and the recorded iterator exit
//!    values close the loop.
//! 4. Unless validation is disabled, the merged live-out state is
//!    fingerprinted ([`dca_core::hash_live_state`]) and compared against
//!    a sequential identity replay of the same invocation. A mismatch is
//!    a hard [`ExecError::Diverged`] carrying the first divergent root or
//!    cell — a parallel run never silently returns corrupted state.
//!
//! Floating-point reductions combined in a different order are not
//! bit-identical in general; [`ExecConfig::float_tolerance`] falls back
//! to a tolerance comparison ([`dca_core::StateDigest`]) when the exact
//! fingerprints differ. With the tolerance at `0.0` the comparison is
//! exact up to NaN/`-0.0` canonicalization.
//!
//! ```
//! use dca_parallel::exec::{execute_loop, ExecConfig};
//!
//! let m = dca_ir::compile(
//!     "fn main() -> int { let s: int = 0; \
//!      @l: for (let i: int = 0; i < 64; i = i + 1) { s = s + i * i; } \
//!      return s; }",
//! ).map_err(|e| e.to_string())?;
//! let lref = dca_ir::all_loops(&m)[0].0;
//! let cfg = ExecConfig { threads: 2, ..ExecConfig::default() };
//! let out = execute_loop(&m, &[], lref, &cfg, &dca_core::Obs::disabled())
//!     .map_err(|e| e.to_string())?;
//! assert_eq!(out.trips, 64);
//! assert!(out.validated && out.exact, "integer reduction is bit-exact");
//! # Ok::<(), String>(())
//! ```

use crate::plan::ParallelPlan;
use crate::sim::Schedule;
use dca_analysis::{ArrayKey, EffectMap, IteratorSlice, Liveness, ReductionOp};
use dca_core::{
    digest_roots, hash_live_state, read_roots, record_golden, record_golden_profiled, run_replay,
    DcaConfig, DcaReport, DigestScratch, Divergence, GoldenRecord, Obs, RecordError,
    ReplayController, ReplayEnd, StateDigest,
};
use dca_deps::{autotune_chunk, check_decomposable, Conflict, DepVerdict, DEFAULT_DYNAMIC_CHUNK};
use dca_interp::{Addr, Hooks, InstAction, Machine, ObjId, Site, TermAction, Trap, Value};
use dca_ir::{
    BinOp, BlockId, FuncId, FuncView, Function, Inst, Loop, LoopRef, Module, Operand, Terminator,
    VarId,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves an [`ExecConfig::threads`] request to a concrete worker
/// count: `0` means the `DCA_EXEC_THREADS` environment variable if it is
/// set to a positive integer, else one worker per CPU the process can
/// use; any other value is taken as-is. Deliberately independent of the
/// analysis pool (`DCA_THREADS`), so CI can sweep execution widths
/// without changing how verdicts are computed.
#[must_use]
pub fn exec_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("DCA_EXEC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Configuration for one parallel loop execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Worker threads; `0` resolves via [`exec_threads`].
    pub threads: usize,
    /// Iteration schedule. [`Schedule::Dynamic`] chunks are clamped to at
    /// least one iteration per grab.
    pub schedule: Schedule,
    /// Run the sequential oracle and compare live-out fingerprints.
    /// Leaving this on is the whole point; turning it off is for
    /// benchmarking the parallel path alone.
    pub validate: bool,
    /// Relative tolerance for the digest fallback when fingerprints are
    /// not bit-identical (reassociated float reductions). `0.0` demands
    /// exactness up to NaN/`-0.0` canonicalization.
    pub float_tolerance: f64,
    /// Interpreter step budget per worker (and for the oracle).
    pub max_steps: u64,
    /// Trip-count cap for the golden recording.
    pub max_trip: usize,
    /// Run the trace-footprint decomposability pre-check on the golden
    /// recording and refuse conflicting loops *before any thread
    /// spawns* ([`ExecError::NotDecomposable`]). The differential
    /// validator stays armed either way (defense in depth); turning
    /// this off is for measuring the validator alone.
    pub deps_precheck: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 0,
            schedule: Schedule::StaticBlock,
            validate: true,
            float_tolerance: 1e-8,
            max_steps: DcaConfig::DEFAULT_MAX_STEPS,
            max_trip: DcaConfig::DEFAULT_MAX_TRIP,
            deps_precheck: true,
        }
    }
}

impl ExecConfig {
    /// Derives an execution configuration from an analysis
    /// configuration: `exec_threads`/`exec_validate` plus the shared
    /// float tolerance and budgets.
    #[must_use]
    pub fn from_dca(cfg: &DcaConfig) -> Self {
        ExecConfig {
            threads: cfg.exec_threads,
            schedule: Schedule::StaticBlock,
            validate: cfg.exec_validate,
            float_tolerance: cfg.float_tolerance,
            max_steps: cfg.max_steps,
            max_trip: cfg.max_trip,
            deps_precheck: true,
        }
    }
}

/// Why a parallel execution did not produce a trusted result.
#[derive(Debug)]
pub enum ExecError {
    /// The plan carries loop-carried scalars no clause explains.
    Unresolved(Vec<String>),
    /// A live-out scalar is defined in the loop but is neither iterator
    /// control nor a recognized reduction — its final value depends on
    /// iteration order and cannot be merged.
    OrderSensitive(Vec<String>),
    /// A structural limitation of the executor (allocation inside the
    /// loop, output statements, an unsupported reduction shape, ...).
    Unsupported(String),
    /// The trace-footprint pre-check found a cross-iteration heap
    /// dependence: the loop is commutative but not snapshot-
    /// decomposable. Raised *before any worker thread spawns*.
    NotDecomposable {
        /// The first conflicting `(iter_a, iter_b, address)` witness.
        witness: Conflict,
        /// Distinct heap cells carrying at least one hazard.
        conflicting_cells: u64,
    },
    /// Recording the golden invocation failed.
    Record(RecordError),
    /// A worker (or the oracle) trapped.
    Trapped(Trap),
    /// A worker (or the oracle) ran out of interpreter steps.
    BudgetExhausted,
    /// The merged parallel state does not match the sequential oracle.
    Diverged {
        /// The oracle's live-out fingerprint.
        expected: u128,
        /// The merged parallel fingerprint.
        actual: u128,
        /// First divergent root/cell, when the digest walk found one.
        detail: Option<Box<Divergence>>,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Unresolved(vars) => {
                write!(f, "unresolved loop-carried scalars: {}", vars.join(", "))
            }
            ExecError::OrderSensitive(vars) => {
                write!(f, "order-sensitive live-out scalars: {}", vars.join(", "))
            }
            ExecError::Unsupported(what) => write!(f, "unsupported: {what}"),
            ExecError::NotDecomposable {
                witness,
                conflicting_cells,
            } => {
                write!(
                    f,
                    "not decomposable: {witness} ({conflicting_cells} conflicting cell{})",
                    if *conflicting_cells == 1 { "" } else { "s" }
                )
            }
            ExecError::Record(e) => write!(f, "golden recording failed: {e:?}"),
            ExecError::Trapped(t) => write!(f, "trapped: {t}"),
            ExecError::BudgetExhausted => write!(f, "step budget exhausted"),
            ExecError::Diverged {
                expected,
                actual,
                detail,
            } => {
                write!(
                    f,
                    "parallel execution diverged from the sequential oracle \
                     (expected {expected:032x}, got {actual:032x})"
                )?;
                if let Some(d) = detail {
                    write!(f, ": {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// What one parallel loop execution produced (state lives in the merged
/// machine; this is the accounting).
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The executed loop.
    pub lref: LoopRef,
    /// Its source tag, if any.
    pub tag: Option<String>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Trip count of the executed invocation.
    pub trips: usize,
    /// Dynamic-schedule chunk grabs beyond each worker's first (always 0
    /// under [`Schedule::StaticBlock`]).
    pub steals: u64,
    /// The dynamic chunk size actually used: the configured one for
    /// [`Schedule::Dynamic`] (after the ≥1 clamp), the autotuned one for
    /// [`Schedule::Auto`], `None` under [`Schedule::StaticBlock`].
    pub chunk: Option<usize>,
    /// Reduction combine operations performed during the merge (scalar
    /// tree combines plus histogram cell combines).
    pub combine_steps: u64,
    /// True when the sequential oracle ran and agreed.
    pub validated: bool,
    /// True when the agreement was bit-exact (fingerprint equality);
    /// false under the float-tolerance fallback or when validation was
    /// disabled.
    pub exact: bool,
    /// The merged live-out fingerprint ([`dca_core::hash_live_state`]).
    pub fingerprint: u128,
    /// The sequential oracle's fingerprint, when validation ran. Unlike
    /// [`ExecOutcome::fingerprint`] this is independent of the worker
    /// count even for tolerance-validated float reductions, so it is
    /// the value to compare across execution widths.
    pub oracle_fingerprint: Option<u128>,
}

/// One row of [`execute_commutative`]: the loop, its tag, and what
/// executing it produced.
pub type ExecRun = (LoopRef, Option<String>, Result<ExecOutcome, ExecError>);

/// Executes every loop `report` proved commutative, in report order.
/// Failures are per-loop: one refused or diverging loop does not stop
/// the others.
pub fn execute_commutative(
    module: &Module,
    args: &[Value],
    report: &DcaReport,
    cfg: &ExecConfig,
    obs: &Obs,
) -> Vec<ExecRun> {
    report
        .commutative_loops()
        .map(|r| {
            (
                r.lref,
                r.tag.clone(),
                execute_loop(module, args, r.lref, cfg, obs),
            )
        })
        .collect()
}

/// Runs loop `lref`'s first invocation across a worker pool and merges
/// the results, differentially validating against the sequential oracle
/// (see the module docs for the full protocol).
///
/// # Errors
///
/// Refuses loops the merge cannot cover ([`ExecError::Unresolved`],
/// [`ExecError::OrderSensitive`], [`ExecError::Unsupported`]); propagates
/// recording/trap/budget failures; reports oracle disagreement as
/// [`ExecError::Diverged`].
pub fn execute_loop(
    module: &Module,
    args: &[Value],
    lref: LoopRef,
    cfg: &ExecConfig,
    obs: &Obs,
) -> Result<ExecOutcome, ExecError> {
    let threads = exec_threads(cfg.threads);
    let main = module
        .main()
        .ok_or_else(|| ExecError::Unsupported("module has no main".into()))?;
    let view = FuncView::new(module, lref.func);
    let l = view.loops.get(lref.loop_id).clone();
    let live = Liveness::new(&view);
    let effects = EffectMap::new(module);
    let slice = IteratorSlice::compute_with(&view, &l, &effects);
    let func_ir = module.func(lref.func);
    let var_name = |v: VarId| func_ir.var(v).name.clone();

    let plan = ParallelPlan::build(module, lref);
    if !plan.is_clean() {
        return Err(ExecError::Unresolved(
            plan.unresolved.iter().copied().map(var_name).collect(),
        ));
    }
    // Refuse loops whose live-out scalars no merge rule covers: defined
    // in the loop, not iterator control (covered by the recorded exit
    // values), not a reduction (covered by the partial combine). Their
    // final value is a function of iteration order.
    let roots = digest_roots(&view, &live, &l);
    let defined = live.loop_defs(&l);
    let red_vars: BTreeSet<VarId> = plan.reductions.iter().map(|r| r.var).collect();
    let sensitive: Vec<String> = roots
        .vars
        .iter()
        .zip(&roots.names)
        .filter(|(v, _)| defined.contains(v) && !plan.control.contains(v) && !red_vars.contains(v))
        .map(|(_, name)| name.clone())
        .collect();
    if !sensitive.is_empty() {
        return Err(ExecError::OrderSensitive(sensitive));
    }

    // The footprint profile feeds both the decomposability pre-check and
    // chunk autotuning; when neither is requested, record without hooks
    // so the plain path pays nothing.
    let want_profile = cfg.deps_precheck || cfg.schedule == Schedule::Auto;
    let (golden, profile) = {
        let mut rec = Machine::new(module);
        if want_profile {
            let (g, p) = record_golden_profiled(
                &mut rec,
                main,
                args,
                lref.func,
                func_ir,
                &l,
                &slice,
                0,
                cfg.max_trip,
                cfg.max_steps,
            )
            .map_err(ExecError::Record)?;
            (g, Some(p))
        } else {
            let g = record_golden(
                &mut rec,
                main,
                args,
                lref.func,
                &l,
                &slice,
                0,
                cfg.max_trip,
                cfg.max_steps,
            )
            .map_err(ExecError::Record)?;
            (g, None)
        }
    };
    let n = golden.iters.len();

    // The master machine the harvests merge onto; also used to resolve
    // pre-loop state (reduction seeds, histogram base objects).
    let mut master = Machine::new(module);
    master.restore(&golden.snapshot);

    let mut reds: Vec<ScalarMerge> = Vec::with_capacity(plan.reductions.len());
    for sr in &plan.reductions {
        let bop = if sr.op == ReductionOp::Bitwise {
            Some(
                bitwise_op_for_var(func_ir, &l.blocks, sr.var).ok_or_else(|| {
                    ExecError::Unsupported(format!(
                        "ambiguous bitwise reduction operator for {}",
                        var_name(sr.var)
                    ))
                })?,
            )
        } else {
            None
        };
        let identity = identity_for(sr.op, bop, master.read_var(sr.var))?;
        reds.push(ScalarMerge {
            var: sr.var,
            op: sr.op,
            bop,
            identity,
        });
    }

    let mut hists: Vec<(ObjId, ReductionOp, Option<BinOp>)> = Vec::new();
    for h in &plan.histograms {
        let obj = match h.array {
            ArrayKey::Global(g) => master.global_obj(g),
            ArrayKey::Var(v) => match master.read_var(v) {
                Value::Ptr(o) => o,
                other => {
                    return Err(ExecError::Unsupported(format!(
                        "histogram base {} is not a pointer ({other})",
                        var_name(v)
                    )))
                }
            },
        };
        let bop = if h.op == ReductionOp::Bitwise {
            Some(bitwise_op_in_loop(func_ir, &l.blocks).ok_or_else(|| {
                ExecError::Unsupported("ambiguous bitwise histogram operator".into())
            })?)
        } else {
            None
        };
        if let Some(&(_, prev_op, _)) = hists.iter().find(|&&(o, ..)| o == obj) {
            if prev_op != h.op {
                return Err(ExecError::Unsupported(
                    "aliased histogram arrays with different operators".into(),
                ));
            }
            continue;
        }
        hists.push((obj, h.op, bop));
    }

    // --- Pre-spawn decomposability check (DESIGN.md §18). ---
    // Cells of recognized histogram arrays are exempt: the merge combines
    // them with the reduction operator instead of overwriting. Scalar
    // reduction accumulators live in frame variables, never in the heap,
    // so they need no exclusion.
    if let Some(p) = &profile {
        obs.count("deps.loops_profiled", 1);
        if cfg.deps_precheck {
            // Structural refusals take precedence over the dependence
            // verdict: a *payload* access to an object beyond the
            // loop-entry snapshot means the payload allocates, which the
            // merge cannot support no matter how the iterations overlap.
            // Report it with the same message the post-run worker check
            // uses, so the refusal reason is stable whether or not the
            // pre-check is armed. Iterator-slice allocations (a
            // worklist's pushed links) are fine — the pre-pass replays
            // them identically in every worker. (A truncated profile can
            // miss accesses; the worker check stays behind this as the
            // backstop.)
            let base_heap = master.heap().len() as u32;
            if p.iters.iter().any(|it| {
                it.reads.iter().any(|&(obj, _)| obj >= base_heap)
                    || it.writes.iter().any(|w| w.obj >= base_heap)
            }) {
                return Err(ExecError::Unsupported(
                    "loop allocates heap objects; their identities cannot be merged".into(),
                ));
            }
            let excluded: BTreeSet<u32> = hists.iter().map(|&(o, ..)| o.0).collect();
            match check_decomposable(p, &excluded) {
                DepVerdict::Decomposable | DepVerdict::Unknown => {}
                DepVerdict::Conflicting(report) => {
                    obs.count("deps.conflicts", report.conflicting_cells);
                    obs.count("deps.prespawn_refusals", 1);
                    return Err(ExecError::NotDecomposable {
                        witness: report.first,
                        conflicting_cells: report.conflicting_cells,
                    });
                }
            }
        }
    }

    // Resolve the schedule: `Auto` becomes `Dynamic` with the chunk the
    // profile's step-count distribution tunes to — a deterministic pure
    // function of (profile, worker count), so plans stay byte-stable.
    let schedule = match cfg.schedule {
        Schedule::Auto => {
            let steps: Vec<u64> = profile.as_ref().map(|p| p.iter_steps()).unwrap_or_default();
            obs.count("exec.autotuned_chunks", 1);
            Schedule::Dynamic {
                chunk: autotune_chunk(&steps, threads),
            }
        }
        s => s,
    };
    let chunk = match schedule {
        Schedule::StaticBlock => None,
        Schedule::Dynamic { chunk } => Some(chunk.max(1)),
        Schedule::Auto => unreachable!("Auto resolved above"),
    };

    let red_seed: Vec<(VarId, Value)> = reds.iter().map(|r| (r.var, r.identity)).collect();
    let ctx = WorkerCtx {
        module,
        func: lref.func,
        func_ir,
        l: &l,
        slice: &slice,
        golden: &golden,
        red: &red_seed,
        hists: &hists,
        max_steps: cfg.max_steps,
    };

    let harvests: Vec<Harvest> = if threads <= 1 {
        vec![run_worker(
            &ctx,
            IterSource::Static {
                range: 0..n,
                chunk: 0,
            },
        )?]
    } else {
        let next = AtomicUsize::new(0);
        let results: Vec<Result<Harvest, ExecError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let source = make_source(schedule, w, threads, n, &next);
                    let ctx = &ctx;
                    s.spawn(move || run_worker(ctx, source))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        results.into_iter().collect::<Result<Vec<_>, _>>()?
    };

    let iters: u64 = harvests.iter().map(|h| h.iters).sum();
    debug_assert_eq!(
        iters, n as u64,
        "schedule must partition the iteration space"
    );
    let steals: u64 = harvests.iter().map(|h| h.grabs.saturating_sub(1)).sum();

    // --- Merge, deterministically. ---
    let hist_map: BTreeMap<u32, (ReductionOp, Option<BinOp>)> =
        hists.iter().map(|&(o, op, bop)| (o.0, (op, bop))).collect();
    let mut combine_steps: u64 = 0;

    // Heap write-sets, in worker order. Histogram cells combine (worker
    // partials start from the identity we poked, which is a true
    // identity of the combine operator, so untouched-looking values are
    // safe to fold); everything else — the iterator pre-pass effects,
    // identical in every worker, and doall payload stores, disjoint
    // across workers — overwrites. Cells a worker never wrote are not in
    // its journal and leave the master untouched.
    for h in &harvests {
        for &(addr, post) in &h.cells {
            if let Some(&(op, bop)) = hist_map.get(&addr.obj.0) {
                let merged = combine_value(op, bop, master.read_cell(addr), post)?;
                master.poke_cell(addr, merged);
                combine_steps += 1;
            } else {
                master.poke_cell(addr, post);
            }
        }
    }

    // Scalar reduction partials, combined in chunk order with a pairwise
    // tree, then folded onto the pre-loop accumulator value. Only chunks
    // that ran at least one iteration are flushed as partials, and the
    // seeds are true identities of the combine operators (see
    // [`identity_for`]), so every harvested partial participates — no
    // bit-pattern filtering, which could not tell an untouched chunk
    // from one whose values legitimately combined to the identity (a
    // zero-sum chunk, an all-`+inf` minimum).
    let mut partials: Vec<&(usize, Vec<Value>)> =
        harvests.iter().flat_map(|h| &h.partials).collect();
    partials.sort_by_key(|(chunk, _)| *chunk);
    for (j, r) in reds.iter().enumerate() {
        let mut vals: Vec<Value> = partials.iter().map(|(_, vs)| vs[j]).collect();
        while vals.len() > 1 {
            let mut next_round = Vec::with_capacity(vals.len().div_ceil(2));
            for pair in vals.chunks(2) {
                if let [a, b] = pair {
                    next_round.push(combine_value(r.op, r.bop, *a, *b)?);
                    combine_steps += 1;
                } else {
                    next_round.push(pair[0]);
                }
            }
            vals = next_round;
        }
        if let Some(&p) = vals.first() {
            let s0 = master.read_var(r.var);
            master.write_var(r.var, combine_value(r.op, r.bop, s0, p)?);
            combine_steps += 1;
        }
    }

    // Iterator exit state: the recorded values close the loop exactly as
    // the replay controller's exit phase does.
    for (pos, &v) in golden.rec_vars.iter().enumerate() {
        master.write_var(v, golden.exit_vals[pos]);
    }

    // --- Differential validation. ---
    let mut scratch = DigestScratch::new();
    let mut buf = Vec::new();
    read_roots(&master, &roots.vars, &mut buf);
    let (par_fp, _) = hash_live_state(&master, &buf, &mut scratch);

    let mut validated = false;
    let mut exact = false;
    let mut oracle_fp = None;
    if cfg.validate {
        let mut oracle = Machine::new(module);
        oracle.restore(&golden.snapshot);
        let perm: Vec<usize> = (0..n).collect();
        let mut octl = ReplayController::new(lref.func, func_ir, &l, &slice, &golden, &perm);
        match run_replay(&mut oracle, &mut octl, true, cfg.max_steps) {
            ReplayEnd::LoopExited => {}
            ReplayEnd::Trapped(t) => return Err(ExecError::Trapped(t)),
            ReplayEnd::BudgetExhausted => return Err(ExecError::BudgetExhausted),
            other => {
                return Err(ExecError::Unsupported(format!(
                    "oracle replay ended unexpectedly: {other:?}"
                )))
            }
        }
        let mut obuf = Vec::new();
        read_roots(&oracle, &roots.vars, &mut obuf);
        let (seq_fp, _) = hash_live_state(&oracle, &obuf, &mut scratch);
        oracle_fp = Some(seq_fp);
        validated = true;
        exact = par_fp == seq_fp;
        if !exact {
            let seq_digest = StateDigest::capture(&oracle, &obuf);
            let par_digest = StateDigest::capture(&master, &buf);
            let tol = cfg.float_tolerance;
            if !(tol > 0.0 && seq_digest.matches(&par_digest, tol)) {
                obs.count("exec.divergences", 1);
                return Err(ExecError::Diverged {
                    expected: seq_fp,
                    actual: par_fp,
                    detail: seq_digest
                        .first_divergence(&par_digest, tol, &roots.names)
                        .map(Box::new),
                });
            }
        }
    }

    obs.count("exec.invocations", 1);
    obs.count("exec.iters", iters);
    obs.count("exec.steals", steals);
    obs.count("exec.combine_steps", combine_steps);

    Ok(ExecOutcome {
        lref,
        tag: l.tag.clone(),
        threads,
        trips: n,
        steals,
        chunk,
        combine_steps,
        validated,
        exact,
        fingerprint: par_fp,
        oracle_fingerprint: oracle_fp,
    })
}

/// How one scalar reduction merges.
struct ScalarMerge {
    var: VarId,
    op: ReductionOp,
    bop: Option<BinOp>,
    identity: Value,
}

/// Everything a worker borrows, shared across the pool.
struct WorkerCtx<'a> {
    module: &'a Module,
    func: FuncId,
    func_ir: &'a Function,
    l: &'a Loop,
    slice: &'a IteratorSlice,
    golden: &'a GoldenRecord,
    /// `(accumulator, identity)` seeds for recognized scalar reductions.
    red: &'a [(VarId, Value)],
    /// Histogram base objects with their combine operators.
    hists: &'a [(ObjId, ReductionOp, Option<BinOp>)],
    max_steps: u64,
}

/// What one worker brings home.
struct Harvest {
    /// `(chunk index, accumulator values)` — one entry per chunk the
    /// worker executed, values parallel to [`WorkerCtx::red`].
    partials: Vec<(usize, Vec<Value>)>,
    /// Post-execution values of every heap cell the worker overwrote,
    /// deduplicated, in address order.
    cells: Vec<(Addr, Value)>,
    iters: u64,
    /// Successful dynamic chunk grabs (0 under static scheduling).
    grabs: u64,
}

fn make_source<'a>(
    schedule: Schedule,
    worker: usize,
    threads: usize,
    n: usize,
    next: &'a AtomicUsize,
) -> IterSource<'a> {
    match schedule {
        Schedule::StaticBlock => IterSource::Static {
            range: worker * n / threads..(worker + 1) * n / threads,
            chunk: worker,
        },
        Schedule::Dynamic { chunk } => IterSource::Dynamic {
            next,
            total: n,
            chunk_size: chunk.max(1),
            cur: 0..0,
            grabs: 0,
        },
        // `execute_loop` resolves `Auto` to a tuned `Dynamic` before any
        // worker spawns; this arm is a defensive fallback for direct
        // callers.
        Schedule::Auto => IterSource::Dynamic {
            next,
            total: n,
            chunk_size: DEFAULT_DYNAMIC_CHUNK,
            cur: 0..0,
            grabs: 0,
        },
    }
}

/// Where a worker's iterations come from. Yields `(iteration, chunk)`
/// pairs; the chunk index keys the per-chunk reduction partials so the
/// merge can combine them in a schedule-independent deterministic order
/// (dynamic chunk indices are `start / chunk_size`, a pure function of
/// the iteration space, not of which worker grabbed the chunk).
enum IterSource<'a> {
    Static {
        range: Range<usize>,
        chunk: usize,
    },
    Dynamic {
        next: &'a AtomicUsize,
        total: usize,
        chunk_size: usize,
        cur: Range<usize>,
        grabs: u64,
    },
}

impl IterSource<'_> {
    fn next(&mut self) -> Option<(usize, usize)> {
        match self {
            IterSource::Static { range, chunk } => range.next().map(|i| (i, *chunk)),
            IterSource::Dynamic {
                next,
                total,
                chunk_size,
                cur,
                grabs,
            } => {
                if let Some(i) = cur.next() {
                    return Some((i, i / *chunk_size));
                }
                let start = next.fetch_add(*chunk_size, Ordering::Relaxed);
                if start >= *total {
                    return None;
                }
                *grabs += 1;
                *cur = start..start.saturating_add(*chunk_size).min(*total);
                cur.next().map(|i| (i, i / *chunk_size))
            }
        }
    }

    fn grabs(&self) -> u64 {
        match self {
            IterSource::Static { .. } => 0,
            IterSource::Dynamic { grabs, .. } => *grabs,
        }
    }
}

fn run_worker(ctx: &WorkerCtx<'_>, source: IterSource<'_>) -> Result<Harvest, ExecError> {
    let mut machine = Machine::new(ctx.module);
    machine.restore(&ctx.golden.snapshot);
    let base_heap = machine.heap().len();
    let base_out = machine.output().len();

    // Seed histogram cells with the identity *before* arming the
    // journal, so the worker's write-set reports pure partials.
    for &(obj, op, bop) in ctx.hists {
        let cells = machine.obj_cells(obj).len();
        for cell in 0..cells {
            let addr = Addr {
                obj,
                cell: cell as u32,
            };
            let identity = identity_for(op, bop, machine.read_cell(addr))?;
            machine.poke_cell(addr, identity);
        }
    }
    machine.begin_journal();

    let mut ctl = ExecController::new(ctx, source);
    let budget = machine.steps().saturating_add(ctx.max_steps);
    loop {
        if ctl.loop_exited {
            break;
        }
        if machine.result().is_some() {
            return Err(ExecError::Unsupported(
                "program finished inside the parallel loop".into(),
            ));
        }
        if machine.steps() >= budget {
            return Err(ExecError::BudgetExhausted);
        }
        match machine.step(&mut ctl) {
            Ok(()) => {}
            Err(t) => return Err(ExecError::Trapped(t)),
        }
    }

    if machine.heap().len() > base_heap {
        return Err(ExecError::Unsupported(
            "loop allocates heap objects; their identities cannot be merged".into(),
        ));
    }
    if machine.output().len() > base_out {
        return Err(ExecError::Unsupported(
            "loop writes program output; ordering cannot be merged".into(),
        ));
    }

    let touched: BTreeSet<(u32, u32)> = machine
        .journal_writes()
        .map(|(addr, _old)| (addr.obj.0, addr.cell))
        .collect();
    let cells = touched
        .into_iter()
        .map(|(obj, cell)| {
            let addr = Addr {
                obj: ObjId(obj),
                cell,
            };
            (addr, machine.read_cell(addr))
        })
        .collect();

    Ok(Harvest {
        partials: ctl.partials,
        cells,
        iters: ctl.iters,
        grabs: ctl.source.grabs(),
    })
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Running the iterator alone (linearization semantics).
    PrePass,
    /// Running this worker's payload instances.
    Payload,
    /// This worker's share is done: skip in-loop code, jump to the exit.
    Exiting,
    /// Out of the loop.
    Done,
}

/// The [`Hooks`] implementation driving one worker: a
/// [`dca_core::ReplayController`] whose permutation is pulled
/// incrementally from an [`IterSource`] instead of being fixed up front,
/// with per-chunk reduction partial harvesting at chunk boundaries.
struct ExecController<'a> {
    func: FuncId,
    func_ir: &'a Function,
    header: BlockId,
    blocks: &'a BTreeSet<BlockId>,
    slice: &'a IteratorSlice,
    golden: &'a GoldenRecord,
    red: &'a [(VarId, Value)],
    var_pos: HashMap<VarId, usize>,
    source: IterSource<'a>,
    partials: Vec<(usize, Vec<Value>)>,
    cur_chunk: Option<usize>,
    iters: u64,
    needs_iter_start: bool,
    prepass_arrivals: usize,
    mode: Mode,
    loop_exited: bool,
}

impl<'a> ExecController<'a> {
    fn new(ctx: &WorkerCtx<'a>, source: IterSource<'a>) -> Self {
        let var_pos: HashMap<VarId, usize> = ctx
            .golden
            .rec_vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        ExecController {
            func: ctx.func,
            func_ir: ctx.func_ir,
            header: ctx.l.header,
            blocks: &ctx.l.blocks,
            slice: ctx.slice,
            golden: ctx.golden,
            red: ctx.red,
            var_pos,
            source,
            partials: Vec::new(),
            cur_chunk: None,
            iters: 0,
            needs_iter_start: false,
            prepass_arrivals: 0,
            mode: Mode::PrePass,
            loop_exited: false,
        }
    }

    fn active_at(&self, site: Site, block: BlockId) -> bool {
        site.func == self.func && site.depth == self.golden.depth && self.blocks.contains(&block)
    }

    /// Harvests the current chunk's accumulator values as a partial.
    fn flush_chunk(&mut self, vars: &mut [Value]) {
        if let Some(chunk) = self.cur_chunk.take() {
            let vals = self.red.iter().map(|&(v, _)| vars[v.index()]).collect();
            self.partials.push((chunk, vals));
        }
    }

    /// Binds the recorded values of this worker's next iteration (or
    /// switches to exit mode when its share is exhausted). At chunk
    /// boundaries the previous partial is flushed and the accumulators
    /// reset to the identity.
    fn iter_start(&mut self, vars: &mut [Value]) {
        self.needs_iter_start = false;
        match self.source.next() {
            Some((iter, chunk)) => {
                if self.cur_chunk != Some(chunk) {
                    self.flush_chunk(vars);
                    self.cur_chunk = Some(chunk);
                    for &(v, identity) in self.red {
                        vars[v.index()] = identity;
                    }
                }
                let rec = &self.golden.iters[iter];
                for (v, &pos) in &self.var_pos {
                    vars[v.index()] = rec[pos];
                }
                self.iters += 1;
            }
            None => {
                self.flush_chunk(vars);
                self.mode = Mode::Exiting;
            }
        }
    }

    fn begin_payload(&mut self) {
        self.mode = Mode::Payload;
        self.needs_iter_start = true;
    }

    /// Pre-pass header-arrival cap, as in the replay controller.
    fn prepass_cap(&self) -> usize {
        self.golden.iters.len().saturating_mul(4).saturating_add(16)
    }
}

impl Hooks for ExecController<'_> {
    fn on_block(&mut self, site: Site, block: BlockId, _vars: &mut [Value]) {
        match self.mode {
            Mode::Done => {}
            Mode::PrePass => {
                if site.func == self.func && site.depth == self.golden.depth && block == self.header
                {
                    self.prepass_arrivals += 1;
                    if self.prepass_arrivals > self.prepass_cap() {
                        self.begin_payload();
                    }
                }
            }
            Mode::Payload | Mode::Exiting => {
                if site.func == self.func && site.depth == self.golden.depth {
                    if block == self.header {
                        self.needs_iter_start = true;
                    } else if !self.blocks.contains(&block) {
                        self.mode = Mode::Done;
                        self.loop_exited = true;
                    }
                }
            }
        }
    }

    fn before_inst(
        &mut self,
        site: Site,
        block: BlockId,
        idx: usize,
        vars: &mut [Value],
    ) -> InstAction {
        if matches!(self.mode, Mode::Done) || !self.active_at(site, block) {
            return InstAction::Run;
        }
        match self.mode {
            Mode::PrePass => {
                if self.slice.contains((block, idx)) {
                    InstAction::Run
                } else {
                    InstAction::Skip
                }
            }
            Mode::Payload => {
                if self.needs_iter_start && block == self.header {
                    self.iter_start(vars);
                }
                if matches!(self.mode, Mode::Exiting) {
                    return InstAction::Skip;
                }
                if self.slice.contains((block, idx)) {
                    InstAction::Skip
                } else {
                    InstAction::Run
                }
            }
            Mode::Exiting => InstAction::Skip,
            Mode::Done => InstAction::Run,
        }
    }

    fn on_term(
        &mut self,
        site: Site,
        block: BlockId,
        default_target: Option<BlockId>,
        vars: &mut [Value],
    ) -> TermAction {
        if matches!(self.mode, Mode::Done) || !self.active_at(site, block) {
            return TermAction::Default;
        }
        match self.mode {
            Mode::PrePass => match default_target {
                Some(t) if self.blocks.contains(&t) => TermAction::Default,
                _ => {
                    self.begin_payload();
                    TermAction::Goto(self.header)
                }
            },
            Mode::Payload => {
                if self.needs_iter_start && block == self.header {
                    self.iter_start(vars);
                }
                if matches!(self.mode, Mode::Exiting) {
                    for (v, &pos) in &self.var_pos {
                        vars[v.index()] = self.golden.exit_vals[pos];
                    }
                    return TermAction::Goto(self.golden.exit_target);
                }
                match default_target {
                    Some(t) if self.blocks.contains(&t) => TermAction::Default,
                    _ => TermAction::Goto(in_loop_alternative(
                        &self.func_ir.block(block).term,
                        self.blocks,
                        self.header,
                    )),
                }
            }
            Mode::Exiting => {
                for (v, &pos) in &self.var_pos {
                    vars[v.index()] = self.golden.exit_vals[pos];
                }
                TermAction::Goto(self.golden.exit_target)
            }
            Mode::Done => TermAction::Default,
        }
    }
}

/// The forced-branch alternative (mirrors the replay controller): the
/// terminator's in-loop successor when the default leaves the loop, or
/// the header when no successor stays inside.
fn in_loop_alternative(term: &Terminator, blocks: &BTreeSet<BlockId>, header: BlockId) -> BlockId {
    match term {
        Terminator::Branch {
            then_bb, else_bb, ..
        } => {
            if blocks.contains(then_bb) {
                *then_bb
            } else if blocks.contains(else_bb) {
                *else_bb
            } else {
                header
            }
        }
        _ => header,
    }
}

/// The identity element for `op` at the type of `sample` (the pre-loop
/// accumulator or cell value).
///
/// The float identities are the *true* identities of the interpreter's
/// operators, chosen so that seeding a chunk accumulator is invisible
/// bit-for-bit and no merge-time special-casing is needed:
///
/// * Sum uses `-0.0`, not `0.0`: under round-to-nearest `-0.0 + x == x`
///   for every `x` including both signed zeros, whereas `0.0 + -0.0`
///   is `+0.0` and would flip the sign of an all-negative-zero chunk.
/// * Min/Max use `NaN`: the interpreter's `fmin`/`fmax` are Rust's
///   NaN-ignoring `f64::min`/`max`, under which NaN is a two-sided
///   identity. An infinity seed would be wrong twice over — it absorbs
///   a NaN accumulator (`min(NaN, +inf)` is `+inf`) and is
///   indistinguishable from a genuine infinite value in the data.
fn identity_for(op: ReductionOp, bop: Option<BinOp>, sample: Value) -> Result<Value, ExecError> {
    use ReductionOp as R;
    Ok(match (op, sample) {
        (R::Sum, Value::Int(_)) => Value::Int(0),
        (R::Sum, Value::Float(_)) => Value::Float(-0.0),
        (R::Product, Value::Int(_)) => Value::Int(1),
        (R::Product, Value::Float(_)) => Value::Float(1.0),
        (R::Min, Value::Int(_)) => Value::Int(i64::MAX),
        (R::Min, Value::Float(_)) => Value::Float(f64::NAN),
        (R::Max, Value::Int(_)) => Value::Int(i64::MIN),
        (R::Max, Value::Float(_)) => Value::Float(f64::NAN),
        (R::Bitwise, Value::Int(_)) => match bop {
            Some(BinOp::BitAnd) => Value::Int(-1),
            Some(BinOp::BitOr | BinOp::BitXor) => Value::Int(0),
            _ => {
                return Err(ExecError::Unsupported(
                    "ambiguous bitwise reduction operator".into(),
                ))
            }
        },
        _ => {
            return Err(ExecError::Unsupported(format!(
                "unsupported reduction operand type ({sample})"
            )))
        }
    })
}

/// Combines two partial values with the reduction operator, matching the
/// interpreter's evaluation semantics exactly (wrapping integer
/// arithmetic, IEEE floats, NaN-ignoring `fmin`/`fmax`).
fn combine_value(
    op: ReductionOp,
    bop: Option<BinOp>,
    a: Value,
    b: Value,
) -> Result<Value, ExecError> {
    use ReductionOp as R;
    Ok(match (op, a, b) {
        (R::Sum, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(y)),
        (R::Sum, Value::Float(x), Value::Float(y)) => Value::Float(x + y),
        (R::Product, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_mul(y)),
        (R::Product, Value::Float(x), Value::Float(y)) => Value::Float(x * y),
        (R::Min, Value::Int(x), Value::Int(y)) => Value::Int(x.min(y)),
        (R::Min, Value::Float(x), Value::Float(y)) => Value::Float(x.min(y)),
        (R::Max, Value::Int(x), Value::Int(y)) => Value::Int(x.max(y)),
        (R::Max, Value::Float(x), Value::Float(y)) => Value::Float(x.max(y)),
        (R::Bitwise, Value::Int(x), Value::Int(y)) => match bop {
            Some(BinOp::BitAnd) => Value::Int(x & y),
            Some(BinOp::BitOr) => Value::Int(x | y),
            Some(BinOp::BitXor) => Value::Int(x ^ y),
            _ => {
                return Err(ExecError::Unsupported(
                    "ambiguous bitwise reduction operator".into(),
                ))
            }
        },
        _ => {
            return Err(ExecError::Unsupported(format!(
                "mismatched reduction operand types ({a} vs {b})"
            )))
        }
    })
}

/// The concrete bitwise operator applied to `var` inside the loop, when
/// it is unambiguous. [`ReductionOp::Bitwise`] conflates `&`/`|`/`^`;
/// the identity and combine differ, so the executor re-derives the
/// operator from the loop body.
fn bitwise_op_for_var(func_ir: &Function, blocks: &BTreeSet<BlockId>, var: VarId) -> Option<BinOp> {
    let mut found: Option<BinOp> = None;
    for &b in blocks {
        for inst in &func_ir.block(b).insts {
            if let Inst::Bin { op, a, b: rhs, .. } = inst {
                let touches = matches!(a, Operand::Var(v) if *v == var)
                    || matches!(rhs, Operand::Var(v) if *v == var);
                if touches && matches!(op, BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor) {
                    match found {
                        None => found = Some(*op),
                        Some(prev) if prev == *op => {}
                        Some(_) => return None,
                    }
                }
            }
        }
    }
    found
}

/// Like [`bitwise_op_for_var`], for histogram updates: the single
/// bitwise operator used anywhere in the loop body, when unambiguous.
fn bitwise_op_in_loop(func_ir: &Function, blocks: &BTreeSet<BlockId>) -> Option<BinOp> {
    let mut found: Option<BinOp> = None;
    for &b in blocks {
        for inst in &func_ir.block(b).insts {
            if let Inst::Bin { op, .. } = inst {
                if matches!(op, BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor) {
                    match found {
                        None => found = Some(*op),
                        Some(prev) if prev == *op => {}
                        Some(_) => return None,
                    }
                }
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec_tagged(src: &str, tag: &str, cfg: &ExecConfig) -> Result<ExecOutcome, ExecError> {
        let m = dca_ir::compile(src).expect("compile");
        let lref = dca_ir::all_loops(&m)
            .into_iter()
            .find(|(_, t)| t.as_deref() == Some(tag))
            .expect("tagged loop")
            .0;
        execute_loop(&m, &[], lref, cfg, &Obs::disabled())
    }

    fn widths() -> [usize; 3] {
        [1, 2, 4]
    }

    #[test]
    fn doall_map_is_exact_at_every_width() {
        let src = "fn main() -> int { let a: [int; 64]; let s: int = 0; \
             @l: for (let i: int = 0; i < 64; i = i + 1) { a[i] = i * i % 97; } \
             for (let i: int = 0; i < 64; i = i + 1) { s = s + a[i]; } return s; }";
        let mut fps = Vec::new();
        for w in widths() {
            let cfg = ExecConfig {
                threads: w,
                ..ExecConfig::default()
            };
            let out = exec_tagged(src, "l", &cfg).expect("execute");
            assert!(out.validated && out.exact, "width {w}");
            assert_eq!(out.trips, 64);
            fps.push(out.fingerprint);
        }
        assert!(fps.windows(2).all(|p| p[0] == p[1]), "width-independent");
    }

    #[test]
    fn int_reduction_is_exact_and_counts_combines() {
        let src = "fn main() -> int { let s: int = 7; \
             @l: for (let i: int = 0; i < 100; i = i + 1) { s = s + i * i; } \
             return s; }";
        let cfg = ExecConfig {
            threads: 4,
            ..ExecConfig::default()
        };
        let out = exec_tagged(src, "l", &cfg).expect("execute");
        assert!(out.exact);
        assert!(out.combine_steps >= 4, "4 partials need >= 4 combines");
    }

    #[test]
    fn dynamic_zero_chunk_is_clamped_and_terminates() {
        let src = "fn main() -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < 37; i = i + 1) { s = s + i; } return s; }";
        let cfg = ExecConfig {
            threads: 3,
            schedule: Schedule::Dynamic { chunk: 0 },
            ..ExecConfig::default()
        };
        let out = exec_tagged(src, "l", &cfg).expect("execute");
        assert!(out.exact);
        assert_eq!(out.trips, 37);
    }

    #[test]
    fn dynamic_schedule_reduction_is_deterministic_across_widths() {
        let src = "fn main() -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < 100; i = i + 1) { s = s + i * 3; } \
             return s; }";
        let mut fps = Vec::new();
        for w in widths() {
            let cfg = ExecConfig {
                threads: w,
                schedule: Schedule::Dynamic { chunk: 8 },
                ..ExecConfig::default()
            };
            let out = exec_tagged(src, "l", &cfg).expect("execute");
            assert!(out.exact, "width {w}");
            fps.push(out.fingerprint);
        }
        assert!(fps.windows(2).all(|p| p[0] == p[1]));
    }

    #[test]
    fn histogram_loop_merges_per_cell() {
        let src = "fn main() -> int { let hist: [int; 7]; \
             @l: for (let i: int = 0; i < 80; i = i + 1) { \
               let b: int = i * i % 7; hist[b] = hist[b] + 1; } \
             let s: int = 0; \
             for (let k: int = 0; k < 7; k = k + 1) { s = s * 100 + hist[k]; } \
             return s; }";
        let cfg = ExecConfig {
            threads: 4,
            ..ExecConfig::default()
        };
        let out = exec_tagged(src, "l", &cfg).expect("execute");
        assert!(out.exact);
        assert!(out.combine_steps > 0, "histogram cells combine");
    }

    #[test]
    fn float_min_with_nan_accumulator_is_exact() {
        // The accumulator enters the loop as NaN (0.0/0.0); `fmin` is
        // NaN-ignoring, so the sequential result is the plain minimum —
        // and an identity-seeded parallel merge must not let the
        // +inf identity absorb anything it shouldn't.
        let src = "fn main() -> float { let s: float = 0.0 / 0.0; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { \
               s = fmin(s, (i as float - 8.0) * (i as float - 8.0) + 2.0); } \
             return s; }";
        for w in widths() {
            let cfg = ExecConfig {
                threads: w,
                float_tolerance: 0.0,
                ..ExecConfig::default()
            };
            let out = exec_tagged(src, "l", &cfg).expect("execute");
            assert!(out.exact, "width {w}");
        }
    }

    #[test]
    fn order_sensitive_live_out_is_refused() {
        // `first` is live out, defined in the loop, and not a reduction:
        // its final value depends on iteration order.
        let src = "fn main() -> int { let a: [int; 8]; let first: int = 0 - 1; \
             for (let i: int = 0; i < 8; i = i + 1) { a[i] = i * 13 % 8; } \
             @l: for (let i: int = 0; i < 8; i = i + 1) { \
               if (a[i] > 4 && first < 0) { first = i; } } \
             return first; }";
        let cfg = ExecConfig {
            threads: 2,
            ..ExecConfig::default()
        };
        match exec_tagged(src, "l", &cfg) {
            Err(ExecError::OrderSensitive(vars) | ExecError::Unresolved(vars)) => {
                assert!(vars.iter().any(|v| v == "first"), "vars: {vars:?}");
            }
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn worklist_drain_executes_in_parallel() {
        // The destructive-iterator worklist sum (paper Fig. 2 style):
        // every worker applies the pops once in the pre-pass; payload
        // sums merge as a reduction.
        let src = "struct Cell { v: int, next: *Cell }\n\
             struct List { head: *Cell }\n\
             fn push(l: *List, v: int) { \
               let c: *Cell = new Cell; c.v = v; c.next = l.head; l.head = c; }\n\
             fn main() -> int {\n\
               let wl: *List = new List;\n\
               for (let i: int = 0; i < 12; i = i + 1) { push(wl, i * i); }\n\
               let sum: int = 0;\n\
               @drain: while (wl.head != null) {\n\
                 let c: *Cell = wl.head;\n\
                 wl.head = c.next;\n\
                 sum = sum + c.v;\n\
               }\n\
               return sum;\n\
             }";
        for w in widths() {
            let cfg = ExecConfig {
                threads: w,
                ..ExecConfig::default()
            };
            let out = exec_tagged(src, "drain", &cfg).expect("execute");
            assert!(out.validated && out.exact, "width {w}");
            assert_eq!(out.trips, 12);
        }
    }

    #[test]
    fn zero_trip_invocation_executes_cleanly() {
        let src = "fn main() -> int { let s: int = 5; let n: int = 0; \
             @l: for (let i: int = 0; i < n; i = i + 1) { s = s + i; } \
             return s; }";
        let cfg = ExecConfig {
            threads: 4,
            ..ExecConfig::default()
        };
        let out = exec_tagged(src, "l", &cfg).expect("execute");
        assert!(out.exact);
        assert_eq!(out.trips, 0);
    }

    #[test]
    fn exec_threads_resolves_env_and_explicit() {
        assert_eq!(exec_threads(3), 3);
        assert!(exec_threads(0) >= 1);
    }

    /// A loop with genuine cross-iteration heap flow: `a[i]` reads
    /// `a[i-1]`, which the previous iteration wrote.
    const FLOW_SRC: &str = "fn main() -> int { let a: [int; 16]; a[0] = 1; let s: int = 0; \
         @l: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] + i; } \
         for (let i: int = 0; i < 16; i = i + 1) { s = s + a[i] * (i + 1); } \
         return s; }";

    #[test]
    fn flow_dependent_loop_is_refused_before_any_spawn() {
        // The footprint pre-check refuses at every width — including
        // width 1 — with the same concrete witness, and the obs counters
        // are bit-identical across widths (the verdict is a pure
        // function of the golden recording, not of the thread count).
        for w in widths() {
            let obs = Obs::enabled();
            let m = dca_ir::compile(FLOW_SRC).expect("compile");
            let lref = dca_ir::all_loops(&m)
                .into_iter()
                .find(|(_, t)| t.as_deref() == Some("l"))
                .expect("tagged loop")
                .0;
            let cfg = ExecConfig {
                threads: w,
                ..ExecConfig::default()
            };
            match execute_loop(&m, &[], lref, &cfg, &obs) {
                Err(ExecError::NotDecomposable {
                    witness,
                    conflicting_cells,
                }) => {
                    assert_eq!(witness.kind, crate::ConflictKind::Flow, "width {w}");
                    assert_eq!(
                        (witness.iter_a, witness.iter_b),
                        (0, 1),
                        "iteration 1 reads what iteration 0 wrote (width {w})"
                    );
                    assert!(conflicting_cells >= 1, "width {w}");
                }
                other => panic!("width {w}: expected pre-spawn refusal, got {other:?}"),
            }
            let counters = obs.rollup().expect("enabled obs").counters;
            assert_eq!(counters.get("deps.prespawn_refusals"), Some(&1));
            assert_eq!(counters.get("deps.loops_profiled"), Some(&1));
            assert_eq!(
                counters.get("exec.invocations"),
                None,
                "refusal happened before the executor counted an invocation"
            );
        }
    }

    #[test]
    fn validator_agrees_with_precheck_on_flow_loop() {
        // Defense-in-depth: with the pre-check disarmed, the same loop
        // reaches the workers and the differential validator rejects the
        // merged state instead — the two layers refuse the same loop.
        let cfg = ExecConfig {
            threads: 2,
            deps_precheck: false,
            ..ExecConfig::default()
        };
        match exec_tagged(FLOW_SRC, "l", &cfg) {
            Err(ExecError::Diverged { .. }) => {}
            other => panic!("expected validator divergence, got {other:?}"),
        }
    }

    #[test]
    fn auto_schedule_resolves_deterministic_chunk_and_validates() {
        let src = "fn main() -> int { let a: [int; 64]; let s: int = 0; \
             @l: for (let i: int = 0; i < 64; i = i + 1) { a[i] = i * 7 % 31; } \
             for (let i: int = 0; i < 64; i = i + 1) { s = s + a[i]; } return s; }";
        for w in widths() {
            let obs = Obs::enabled();
            let m = dca_ir::compile(src).expect("compile");
            let lref = dca_ir::all_loops(&m)
                .into_iter()
                .find(|(_, t)| t.as_deref() == Some("l"))
                .expect("tagged loop")
                .0;
            let cfg = ExecConfig {
                threads: w,
                schedule: Schedule::Auto,
                ..ExecConfig::default()
            };
            let a = execute_loop(&m, &[], lref, &cfg, &obs).expect("execute");
            let b = execute_loop(&m, &[], lref, &cfg, &Obs::disabled()).expect("re-execute");
            assert!(a.validated && a.exact, "width {w}");
            assert_eq!(a.chunk, b.chunk, "autotuned chunk is deterministic");
            let chunk = a.chunk.expect("auto resolves to a dynamic chunk");
            assert!(
                chunk >= 1 && chunk <= 64usize.div_ceil(w.max(1)),
                "width {w}: chunk {chunk} within the candidate ladder"
            );
            // Uniform iterations tune to one grab per worker — the
            // largest candidate.
            if w > 1 {
                assert_eq!(chunk, 64 / w, "width {w}");
            }
            let counters = obs.rollup().expect("enabled obs").counters;
            assert_eq!(
                counters.get("exec.autotuned_chunks"),
                Some(&1),
                "one tuning decision per invocation regardless of width"
            );
        }
    }

    #[test]
    fn fixed_schedules_report_their_chunk() {
        let src = "fn main() -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < 40; i = i + 1) { s = s + i; } return s; }";
        let stat = exec_tagged(
            src,
            "l",
            &ExecConfig {
                threads: 2,
                ..ExecConfig::default()
            },
        )
        .expect("static");
        assert_eq!(stat.chunk, None, "static block has no chunk");
        let dyn_ = exec_tagged(
            src,
            "l",
            &ExecConfig {
                threads: 2,
                schedule: Schedule::Dynamic { chunk: 5 },
                ..ExecConfig::default()
            },
        )
        .expect("dynamic");
        assert_eq!(dyn_.chunk, Some(5));
    }

    #[test]
    fn default_dynamic_chunk_constant_agrees_across_crates() {
        // The one authoritative default lives in dca-deps; every alias
        // and call site must agree (hoisting regression guard).
        assert_eq!(DEFAULT_DYNAMIC_CHUNK, dca_deps::DEFAULT_DYNAMIC_CHUNK);
        assert_eq!(
            dca_core::DcaConfig::DEFAULT_DYNAMIC_CHUNK,
            dca_deps::DEFAULT_DYNAMIC_CHUNK
        );
        match Schedule::default_dynamic() {
            Schedule::Dynamic { chunk } => assert_eq!(chunk, dca_deps::DEFAULT_DYNAMIC_CHUNK),
            other => panic!("default_dynamic is not Dynamic: {other:?}"),
        }
    }

    #[test]
    fn execute_commutative_runs_proven_loops() {
        let src = "fn main() -> int { let a: [int; 32]; let s: int = 0; \
             @w: for (let i: int = 0; i < 32; i = i + 1) { a[i] = i * 2; } \
             @r: for (let i: int = 0; i < 32; i = i + 1) { s = s + a[i]; } \
             return s; }";
        let m = dca_ir::compile(src).expect("compile");
        let report = dca_core::Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        let cfg = ExecConfig {
            threads: 2,
            ..ExecConfig::default()
        };
        let runs = execute_commutative(&m, &[], &report, &cfg, &Obs::disabled());
        assert!(!runs.is_empty(), "commutative loops found");
        for (lref, tag, res) in &runs {
            let out = res
                .as_ref()
                .unwrap_or_else(|e| panic!("loop {lref} ({tag:?}): {e}"));
            assert!(out.validated, "loop {lref} validated");
        }
    }
}
