//! Parallel code generation planning (paper §IV-C).
//!
//! The paper's parallelization stage is deliberately simple: loop-level
//! OpenMP-style parallelism with privatization of iteration-local
//! variables and recognized reductions, following Tournavitis et al. A
//! [`ParallelPlan`] captures exactly the clauses such a code generator
//! would emit for one loop.

use dca_analysis::{EffectMap, Histogram, IteratorSlice, Liveness, ReductionInfo, ScalarReduction};
use dca_ir::{FuncView, LoopRef, Module, VarId};
use std::collections::BTreeSet;

/// The OpenMP-like clauses for one parallelized loop.
#[derive(Debug, Clone)]
pub struct ParallelPlan {
    /// The loop.
    pub lref: LoopRef,
    /// Its source tag, if any.
    pub tag: Option<String>,
    /// Variables to privatize (defined and consumed within an iteration).
    pub private: BTreeSet<VarId>,
    /// Iterator-slice variables (the loop control; privatized implicitly
    /// by the work-sharing construct).
    pub control: BTreeSet<VarId>,
    /// Scalar reductions with their combining operators.
    pub reductions: Vec<ScalarReduction>,
    /// Array (histogram) reductions.
    pub histograms: Vec<Histogram>,
    /// Loop-carried scalars that no clause explains. A non-empty set means
    /// plain loop parallelism is unsafe without further transformation;
    /// DCA-detected loops may still carry these when their effect is
    /// order-insensitive (the paper leans on user approval here, §IV-D).
    pub unresolved: BTreeSet<VarId>,
}

impl ParallelPlan {
    /// Builds the plan for `lref`.
    pub fn build(module: &Module, lref: LoopRef) -> ParallelPlan {
        let view = FuncView::new(module, lref.func);
        let live = Liveness::new(&view);
        let effects = EffectMap::new(module);
        let l = view.loops.get(lref.loop_id);
        let slice = IteratorSlice::compute_with(&view, l, &effects);
        let red = ReductionInfo::compute(&view, &live, l, &slice.slice_vars);
        let carried = live.loop_carried(l);
        let defined = live.loop_defs(l);
        // Private: defined in the loop, not carried, not live out of it.
        let live_outs = live.loop_live_outs(l);
        let private: BTreeSet<VarId> = defined
            .iter()
            .copied()
            .filter(|v| {
                !carried.contains(v) && !live_outs.contains(v) && !slice.slice_vars.contains(v)
            })
            .collect();
        let reduction_vars: BTreeSet<VarId> = red.reductions.iter().map(|r| r.var).collect();
        let unresolved: BTreeSet<VarId> = carried
            .iter()
            .copied()
            .filter(|v| !slice.slice_vars.contains(v) && !reduction_vars.contains(v))
            .collect();
        ParallelPlan {
            lref,
            tag: l.tag.clone(),
            private,
            control: slice.slice_vars.clone(),
            reductions: red.reductions,
            histograms: red.histograms,
            unresolved,
        }
    }

    /// True when the plan needs no unexplained loop-carried state — the
    /// cases the simple scheme parallelizes without user approval.
    pub fn is_clean(&self) -> bool {
        self.unresolved.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_for(src: &str, tag: &str) -> (dca_ir::Module, ParallelPlan) {
        let m = dca_ir::compile(src).expect("compile");
        let lref = dca_ir::all_loops(&m)
            .into_iter()
            .find(|(_, t)| t.as_deref() == Some(tag))
            .expect("tagged loop")
            .0;
        let plan = ParallelPlan::build(&m, lref);
        (m, plan)
    }

    #[test]
    fn map_loop_plan_is_clean() {
        let (_, p) = plan_for(
            "fn main() { let a: [int; 16]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { \
               let t: int = i * 2; a[i] = t; } }",
            "l",
        );
        assert!(p.is_clean());
        assert!(!p.private.is_empty(), "t and temporaries are private");
        assert!(p.reductions.is_empty());
    }

    #[test]
    fn reduction_loop_plan_has_clause() {
        let (_, p) = plan_for(
            "fn main() -> float { let s: float = 0.0; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { s = s + i as float; } \
             return s; }",
            "l",
        );
        assert!(p.is_clean());
        assert_eq!(p.reductions.len(), 1);
    }

    #[test]
    fn recurrence_plan_is_not_clean() {
        let (_, p) = plan_for(
            "fn main() -> int { let x: int = 1; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { x = x * 3 + 1; } return x; }",
            "l",
        );
        assert!(!p.is_clean());
        assert_eq!(p.unresolved.len(), 1);
    }

    #[test]
    fn pointer_chase_control_vars_in_plan() {
        let (_, p) = plan_for(
            "struct N { v: int, next: *N }\n\
             fn main() { let p: *N = new N; \
             @walk: while (p != null) { p.v = p.v + 1; p = p.next; } }",
            "walk",
        );
        // The chased pointer is loop control, not an unresolved carried
        // scalar (DCA hands such loops to the code generator with the
        // iterator prerecorded).
        assert!(p.is_clean());
        assert!(!p.control.is_empty());
    }
}
