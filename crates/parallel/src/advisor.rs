//! The parallelism advisor: per-loop advice with OpenMP-style pragmas.
//!
//! The paper envisions DCA "as part of an interactive or semi-automatic
//! parallelism advisor, where the user has the final word over any code
//! transformations" (§I), generating OpenMP loop parallelism with
//! privatization and reduction clauses (§IV-C). This module renders that
//! advice: for every commutative loop, the pragma a code generator would
//! emit, its measured coverage, an estimated speedup, and whether the
//! user's approval is required (unexplained loop-carried state, §IV-D).

use crate::costs::measure_costs;
use crate::plan::ParallelPlan;
use crate::sim::{simulate_invocation, Schedule, SimConfig};
use dca_analysis::ReductionOp;
use dca_core::DcaReport;
use dca_interp::{Trap, Value};
use dca_ir::{LoopRef, Module};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Advice for one loop.
#[derive(Debug, Clone)]
pub struct Advice {
    /// The loop.
    pub lref: LoopRef,
    /// Source tag, if any.
    pub tag: Option<String>,
    /// DCA's verdict, rendered.
    pub verdict: String,
    /// True if DCA found the loop commutative.
    pub commutative: bool,
    /// The OpenMP-style pragma a code generator would emit (commutative
    /// loops only).
    pub pragma: Option<String>,
    /// Fraction of sequential execution inside this loop, in percent.
    pub coverage_pct: f64,
    /// Whole-program speedup if only this loop were parallelized.
    pub est_speedup: f64,
    /// The paper's §IV-D safety valve: true when the plan carries state no
    /// clause explains, so the user must approve the transformation.
    pub needs_approval: bool,
}

fn op_symbol(op: ReductionOp) -> &'static str {
    match op {
        ReductionOp::Sum => "+",
        ReductionOp::Product => "*",
        ReductionOp::Min => "min",
        ReductionOp::Max => "max",
        ReductionOp::Bitwise => "|",
    }
}

fn pragma_for(module: &Module, plan: &ParallelPlan) -> String {
    let func = module.func(plan.lref.func);
    let mut text = String::from("#pragma omp parallel for");
    let named: Vec<&str> = plan
        .private
        .iter()
        .map(|&v| func.var(v))
        .filter(|vi| !vi.is_temp)
        .map(|vi| vi.name.as_str())
        .collect();
    if !named.is_empty() {
        let _ = write!(text, " private({})", named.join(", "));
    }
    for r in &plan.reductions {
        let _ = write!(
            text,
            " reduction({}:{})",
            op_symbol(r.op),
            func.var(r.var).name
        );
    }
    for h in &plan.histograms {
        let name = match h.array {
            dca_analysis::ArrayKey::Global(g) => module.globals[g.index()].name.clone(),
            dca_analysis::ArrayKey::Var(v) => func.var(v).name.clone(),
        };
        let _ = write!(text, " reduction({}:{}[:])", op_symbol(h.op), name);
    }
    text
}

/// The `schedule(...)` clause for the configured policy, or `None` for
/// the (default) static block schedule, which OpenMP implies. Under
/// [`Schedule::Auto`] the chunk comes from the measured per-iteration
/// cost distribution of the loop's first invocation — the same
/// deterministic tuner the real executor uses
/// ([`dca_deps::autotune_chunk`]).
fn schedule_clause(cfg: &SimConfig, iter_costs: Option<&[u64]>) -> Option<String> {
    match cfg.schedule {
        Schedule::StaticBlock => None,
        Schedule::Dynamic { chunk } => Some(format!(" schedule(dynamic, {})", chunk.max(1))),
        Schedule::Auto => {
            let chunk = iter_costs.map_or(dca_deps::DEFAULT_DYNAMIC_CHUNK, |c| {
                dca_deps::autotune_chunk(c, cfg.cores)
            });
            Some(format!(" schedule(dynamic, {chunk})"))
        }
    }
}

/// Produces advice for every loop in `report`, measuring coverage and
/// simulating per-loop speedups on `cfg`.
///
/// # Errors
///
/// Propagates interpreter traps from the measurement run.
pub fn advise(
    module: &Module,
    args: &[Value],
    report: &DcaReport,
    cfg: &SimConfig,
) -> Result<Vec<Advice>, Trap> {
    let all: BTreeSet<LoopRef> = report.iter().map(|r| r.lref).collect();
    let profile = measure_costs(module, args, &all, u64::MAX)?;
    let total = profile.total_steps.max(1) as f64;
    let mut out = Vec::new();
    for r in report.iter() {
        let commutative = r.verdict.is_commutative();
        let plan = ParallelPlan::build(module, r.lref);
        let loop_cfg = SimConfig {
            reduction_vars: plan.reductions.len(),
            ..*cfg
        };
        let mut seq = 0.0;
        let mut par = 0.0;
        for inv in profile.per_loop.get(&r.lref).map_or(&[][..], |v| v) {
            let s = simulate_invocation(&inv.iter_costs, &loop_cfg);
            seq += s.seq_steps as f64;
            par += s.par_steps as f64;
        }
        let est_speedup = if commutative && seq > 0.0 {
            total / (total - seq + par).max(1.0)
        } else {
            1.0
        };
        let first_costs = profile
            .per_loop
            .get(&r.lref)
            .and_then(|invs| invs.iter().find(|inv| !inv.nested))
            .map(|inv| inv.iter_costs.as_slice());
        out.push(Advice {
            lref: r.lref,
            tag: r.tag.clone(),
            verdict: r.verdict.to_string(),
            commutative,
            pragma: commutative.then(|| {
                let mut p = pragma_for(module, &plan);
                if let Some(clause) = schedule_clause(cfg, first_costs) {
                    p.push_str(&clause);
                }
                p
            }),
            coverage_pct: 100.0 * seq / total,
            est_speedup,
            // All profile-guided advice is formally subject to user
            // approval (§IV-D); this flag is the *loud* case — carried
            // state no clause explains.
            needs_approval: commutative && !plan.is_clean(),
        });
    }
    // Hottest first.
    out.sort_by(|a, b| {
        b.coverage_pct
            .partial_cmp(&a.coverage_pct)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

/// Renders the advice as a human-readable report.
pub fn render(advice: &[Advice]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<16} {:>8} {:>9} {:<34} pragma",
        "loop", "cov(%)", "speedup", "verdict"
    );
    for a in advice {
        let name = a
            .tag
            .as_deref()
            .map(|t| format!("@{t}"))
            .unwrap_or_else(|| a.lref.to_string());
        let _ = writeln!(
            s,
            "{:<16} {:>8.1} {:>8.2}x {:<34} {}",
            name,
            a.coverage_pct,
            a.est_speedup,
            a.verdict,
            a.pragma.as_deref().unwrap_or("-"),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_core::{Dca, DcaConfig};

    fn advice_for(src: &str) -> (Module, Vec<Advice>) {
        let m = dca_ir::compile(src).expect("compile");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        let advice = advise(&m, &[], &report, &SimConfig::paper_host()).expect("advise");
        (m, advice)
    }

    #[test]
    fn reduction_pragma_has_clause() {
        let (_, advice) = advice_for(
            "fn main() -> float { let acc: float = 0.0; \
             @red: for (let i: int = 0; i < 64; i = i + 1) { \
               acc = acc + (i as float) * 0.5; } return acc; }",
        );
        let a = advice
            .iter()
            .find(|a| a.tag.as_deref() == Some("red"))
            .expect("red advice");
        assert!(a.commutative);
        let pragma = a.pragma.as_deref().expect("pragma");
        assert!(pragma.contains("reduction(+:acc)"), "{pragma}");
    }

    #[test]
    fn map_with_locals_privatizes_them() {
        let (_, advice) = advice_for(
            "fn main() { let a: [int; 64]; \
             @map: for (let i: int = 0; i < 64; i = i + 1) { \
               let t: int = i * 3; a[i] = t + 1; } }",
        );
        let a = advice
            .iter()
            .find(|a| a.tag.as_deref() == Some("map"))
            .expect("map advice");
        let pragma = a.pragma.as_deref().expect("pragma");
        assert!(
            pragma.contains("private(") && pragma.contains('t'),
            "{pragma}"
        );
    }

    #[test]
    fn non_commutative_loops_get_no_pragma() {
        let (_, advice) = advice_for(
            "fn main() -> int { let a: [int; 16]; a[0] = 2; let s: int = 0; \
             @rec: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] * 2 + 1; } \
             for (let i: int = 0; i < 16; i = i + 1) { s = s + a[i] * (i + 1); } \
             return s; }",
        );
        let a = advice
            .iter()
            .find(|a| a.tag.as_deref() == Some("rec"))
            .expect("rec advice");
        assert!(!a.commutative);
        assert!(a.pragma.is_none());
        assert_eq!(a.est_speedup, 1.0);
    }

    #[test]
    fn schedule_clause_follows_the_configured_policy() {
        let src = "fn main() -> int { let acc: int = 0; \
             @red: for (let i: int = 0; i < 64; i = i + 1) { acc = acc + i * i; } \
             return acc; }";
        let m = dca_ir::compile(src).expect("compile");
        let report = Dca::new(DcaConfig::fast())
            .analyze_module(&m)
            .expect("analyze");
        let pragma_under = |schedule| {
            let cfg = SimConfig {
                schedule,
                ..SimConfig::with_cores(4)
            };
            let advice = advise(&m, &[], &report, &cfg).expect("advise");
            advice
                .iter()
                .find(|a| a.tag.as_deref() == Some("red"))
                .and_then(|a| a.pragma.clone())
                .expect("pragma")
        };
        assert!(
            !pragma_under(Schedule::StaticBlock).contains("schedule("),
            "static is OpenMP's implied default"
        );
        assert!(pragma_under(Schedule::Dynamic { chunk: 16 }).contains("schedule(dynamic, 16)"));
        let auto = pragma_under(Schedule::Auto);
        assert!(auto.contains("schedule(dynamic, "), "{auto}");
        assert_eq!(auto, pragma_under(Schedule::Auto), "deterministic tuning");
    }

    #[test]
    fn advice_sorted_by_coverage_and_renders() {
        let (_, advice) = advice_for(
            "fn main() { let a: [int; 64]; let s: int = 0; \
             @hot: for (let i: int = 0; i < 64; i = i + 1) { \
               for (let j: int = 0; j < 16; j = j + 1) { a[i] = a[i] + j; } } \
             @cold: for (let i: int = 0; i < 8; i = i + 1) { s = s + a[i]; } }",
        );
        let hot_pos = advice
            .iter()
            .position(|a| a.tag.as_deref() == Some("hot"))
            .expect("hot");
        let cold_pos = advice
            .iter()
            .position(|a| a.tag.as_deref() == Some("cold"))
            .expect("cold");
        assert!(hot_pos < cold_pos, "hotter loops come first");
        let text = render(&advice);
        assert!(text.contains("@hot"));
        assert!(text.contains("#pragma omp parallel for"));
    }
}
