//! Zero-dependency structured observability for the DCA pipeline.
//!
//! Three primitives, all off by default and all cheap enough to leave
//! compiled into every build:
//!
//! * **Counters** — named monotonic `u64` totals ([`Obs::count`]). The
//!   engine only records counters from data carried through its
//!   deterministic fold, so for a given configuration and workload the
//!   final counter map is identical for every worker-thread count.
//! * **Spans** — named wall-time accumulators ([`Obs::span_start`] /
//!   [`Obs::span_end`], or [`Obs::record_span`] for durations measured
//!   elsewhere). A span's *count* is deterministic like a counter; its
//!   *duration* is wall time and varies run to run.
//! * **Trace events** — a JSONL sink ([`Obs::trace_event`]) for
//!   diagnostics that are inherently scheduling-dependent (per-worker
//!   queue waits, stop-index races). One JSON object per line; the schema
//!   is documented in DESIGN.md §11.
//!
//! A disabled [`Obs`] ([`Obs::disabled`]) reduces every call to a branch
//! on an `Option` — no clock reads, no allocation, no locking — so
//! instrumentation sites can call unconditionally. The
//! `obs_overhead` bench asserts this stays immeasurable.
//!
//! # Example
//!
//! ```
//! use dca_obs::Obs;
//!
//! let obs = Obs::enabled();
//! let t = obs.span_start();
//! obs.count("work.items", 3);
//! obs.span_end("work", t);
//! let rollup = obs.rollup().expect("enabled");
//! assert_eq!(rollup.counter("work.items"), 3);
//! assert_eq!(rollup.spans["work"].count, 1);
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod rollup;
pub mod trace;

pub use json::{parse_json, Json};
pub use rollup::{ObsRollup, SpanStat};
pub use trace::{json_escape, TraceSink, TraceVal};

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
// Locks recover from poisoning instead of panicking: a panic in one
// engine worker is contained and classified (see `dca-core`'s fault
// module), and must not cascade into every later metrics record on the
// surviving workers. The guarded data stays consistent under poisoning —
// each critical section is a single insert/add.
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Accumulated metrics behind the mutex. Counter and span maps are keyed
/// by `&'static str` so recording never allocates.
#[derive(Debug, Default)]
struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, SpanStat>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    metrics: Mutex<Metrics>,
    trace: Option<Mutex<TraceSink>>,
}

/// A handle to one observability session (typically one engine run).
///
/// Shared by reference across worker threads; all methods take `&self`.
#[derive(Debug)]
pub struct Obs {
    inner: Option<Inner>,
}

impl Obs {
    /// An observer that records nothing. Every method call is a cheap
    /// early return.
    #[must_use]
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An observer that accumulates counters and spans (no trace file).
    #[must_use]
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Inner {
                epoch: Instant::now(),
                metrics: Mutex::new(Metrics::default()),
                trace: None,
            }),
        }
    }

    /// An observer that accumulates counters and spans *and* streams
    /// trace events to a JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn with_trace(path: &Path) -> io::Result<Self> {
        let sink = TraceSink::create(path)?;
        Ok(Obs {
            inner: Some(Inner {
                epoch: Instant::now(),
                metrics: Mutex::new(Metrics::default()),
                trace: Some(Mutex::new(sink)),
            }),
        })
    }

    /// True when this observer records anything at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when trace events are being written to a sink. Lets callers
    /// skip building event payloads that would go nowhere.
    #[must_use]
    pub fn has_trace(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.trace.is_some())
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        if delta == 0 {
            return;
        }
        let mut m = inner.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        *m.counters.entry(name).or_insert(0) += delta;
    }

    /// Starts a span timer. Returns `None` (without reading the clock)
    /// when disabled; pass the result to [`Obs::span_end`].
    #[inline]
    #[must_use]
    pub fn span_start(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Ends a span started with [`Obs::span_start`], accumulating its
    /// wall time under `name` and emitting a `span` trace event.
    #[inline]
    pub fn span_end(&self, name: &'static str, start: Option<Instant>) {
        let (Some(inner), Some(start)) = (&self.inner, start) else {
            return;
        };
        let dur = start.elapsed();
        {
            let mut m = inner.metrics.lock().unwrap_or_else(PoisonError::into_inner);
            m.spans.entry(name).or_default().add(dur, 1);
        }
        self.emit(
            "span",
            &[
                ("name", TraceVal::Str(name)),
                ("dur_us", TraceVal::U64(dur.as_micros() as u64)),
            ],
        );
    }

    /// Accumulates an externally measured duration under `name`,
    /// counting `count` occurrences. This is how the engine attributes
    /// durations carried through its deterministic fold (per-permutation
    /// restore/replay/verify times), keeping span *counts* identical for
    /// every worker-thread count.
    #[inline]
    pub fn record_span(&self, name: &'static str, dur: Duration, count: u64) {
        let Some(inner) = &self.inner else { return };
        if count == 0 && dur.is_zero() {
            return;
        }
        let mut m = inner.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        m.spans.entry(name).or_default().add(dur, count);
    }

    /// Emits a structured trace event (JSONL). A no-op unless this
    /// observer was created with [`Obs::with_trace`].
    #[inline]
    pub fn trace_event(&self, kind: &str, fields: &[(&str, TraceVal<'_>)]) {
        self.emit(kind, fields);
    }

    fn emit(&self, kind: &str, fields: &[(&str, TraceVal<'_>)]) {
        let Some(inner) = &self.inner else { return };
        let Some(trace) = &inner.trace else { return };
        let ts_us = inner.epoch.elapsed().as_micros() as u64;
        let mut sink = trace.lock().unwrap_or_else(PoisonError::into_inner);
        sink.write_event(ts_us, kind, fields);
    }

    /// Flushes the trace sink, if any.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Some(trace) = &inner.trace {
                trace.lock().unwrap_or_else(PoisonError::into_inner).flush();
            }
        }
    }

    /// A snapshot of everything accumulated so far, or `None` when
    /// disabled. Also flushes the trace sink so the file is complete up
    /// to this point.
    #[must_use]
    pub fn rollup(&self) -> Option<ObsRollup> {
        let inner = self.inner.as_ref()?;
        self.flush();
        let m = inner.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        Some(ObsRollup {
            counters: m
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            spans: m
                .spans
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.count("x", 5);
        let t = obs.span_start();
        assert!(t.is_none());
        obs.span_end("s", t);
        obs.record_span("r", Duration::from_millis(1), 1);
        obs.trace_event("e", &[("k", TraceVal::U64(1))]);
        assert!(obs.rollup().is_none());
    }

    #[test]
    fn counters_and_spans_accumulate() {
        let obs = Obs::enabled();
        obs.count("a", 2);
        obs.count("a", 3);
        obs.count("b", 1);
        obs.count("zero", 0); // no entry for zero deltas
        let t = obs.span_start();
        obs.span_end("io", t);
        obs.record_span("io", Duration::from_micros(50), 4);
        let r = obs.rollup().expect("enabled");
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 1);
        assert_eq!(r.counter("missing"), 0);
        assert!(!r.counters.contains_key("zero"));
        assert_eq!(r.spans["io"].count, 5);
        assert!(r.spans["io"].total >= Duration::from_micros(50));
    }

    #[test]
    fn concurrent_counts_sum_exactly() {
        let obs = Obs::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        obs.count("hits", 1);
                    }
                });
            }
        });
        assert_eq!(obs.rollup().expect("enabled").counter("hits"), 4000);
    }

    #[test]
    fn trace_file_gets_one_json_object_per_line() {
        let dir = std::env::temp_dir().join(format!("dca-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("trace.jsonl");
        let obs = Obs::with_trace(&path).expect("create trace");
        obs.trace_event(
            "worker",
            &[
                ("pool", TraceVal::Str("replay")),
                ("worker", TraceVal::U64(2)),
                ("note", TraceVal::Str("a \"quoted\" label\n")),
            ],
        );
        let t = obs.span_start();
        obs.span_end("stage.replay", t);
        obs.flush();
        let text = std::fs::read_to_string(&path).expect("read trace");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ts_us\":"));
        assert!(lines[0].contains("\"kind\":\"worker\""));
        assert!(lines[0].contains("\"pool\":\"replay\""));
        assert!(lines[0].contains("\\\"quoted\\\""));
        assert!(lines[1].contains("\"kind\":\"span\""));
        assert!(lines[1].contains("\"name\":\"stage.replay\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
