//! The JSONL trace-event sink.
//!
//! One JSON object per line, written through a buffered writer and
//! flushed on drop. The line shape is
//! `{"ts_us":<u64>,"kind":"<kind>",<fields...>}` where `ts_us` is
//! microseconds since the observer was created. Field values are written
//! with a hand-rolled serializer (the workspace builds offline, without
//! serde); strings are escaped per JSON.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A trace-event field value.
#[derive(Debug, Clone, Copy)]
pub enum TraceVal<'a> {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (written with enough digits to round-trip).
    F64(f64),
    /// A string (JSON-escaped on write).
    Str(&'a str),
}

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A buffered JSONL writer for trace events.
#[derive(Debug)]
pub struct TraceSink {
    w: BufWriter<File>,
}

impl TraceSink {
    /// Creates (truncates) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(TraceSink {
            w: BufWriter::new(File::create(path)?),
        })
    }

    /// Appends one event line. Write errors are deliberately swallowed:
    /// tracing must never fail the analysis it observes.
    pub fn write_event(&mut self, ts_us: u64, kind: &str, fields: &[(&str, TraceVal<'_>)]) {
        let mut line = String::with_capacity(64);
        let _ = write!(
            line,
            "{{\"ts_us\":{ts_us},\"kind\":\"{}\"",
            json_escape(kind)
        );
        for (name, val) in fields {
            let _ = write!(line, ",\"{}\":", json_escape(name));
            match val {
                TraceVal::U64(v) => {
                    let _ = write!(line, "{v}");
                }
                TraceVal::I64(v) => {
                    let _ = write!(line, "{v}");
                }
                TraceVal::F64(v) => {
                    if v.is_finite() {
                        let _ = write!(line, "{v}");
                    } else {
                        let _ = write!(line, "null");
                    }
                }
                TraceVal::Str(v) => {
                    let _ = write!(line, "\"{}\"", json_escape(v));
                }
            }
        }
        line.push('}');
        line.push('\n');
        let _ = self.w.write_all(line.as_bytes());
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn events_serialize_every_value_kind() {
        let dir = std::env::temp_dir().join(format!("dca-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("t.jsonl");
        {
            let mut sink = TraceSink::create(&path).expect("create");
            sink.write_event(
                7,
                "k",
                &[
                    ("u", TraceVal::U64(1)),
                    ("i", TraceVal::I64(-2)),
                    ("f", TraceVal::F64(1.5)),
                    ("nan", TraceVal::F64(f64::NAN)),
                    ("s", TraceVal::Str("v")),
                ],
            );
        }
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(
            text,
            "{\"ts_us\":7,\"kind\":\"k\",\"u\":1,\"i\":-2,\"f\":1.5,\"nan\":null,\"s\":\"v\"}\n"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
