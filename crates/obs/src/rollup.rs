//! The aggregated result of one observability session.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Accumulated wall time for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many times the span was recorded.
    pub count: u64,
    /// Total wall time across all recordings.
    pub total: Duration,
}

impl SpanStat {
    /// Folds one more recording in.
    pub fn add(&mut self, dur: Duration, count: u64) {
        self.count += count;
        self.total += dur;
    }

    /// Mean duration per recording (zero when never recorded).
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.count).unwrap_or(u32::MAX)
        }
    }
}

/// Final counter and span totals of one observability session.
///
/// Counter values (and span *counts*) are deterministic for a given
/// engine configuration and workload — identical for every worker-thread
/// count; span *durations* are wall time and vary run to run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsRollup {
    /// Monotonic counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Span statistics by name.
    pub spans: BTreeMap<String, SpanStat>,
}

impl ObsRollup {
    /// A counter's value (0 when never recorded).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Merges another rollup in (counters and span stats add).
    pub fn merge(&mut self, other: &ObsRollup) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.spans {
            self.spans
                .entry(k.clone())
                .or_default()
                .add(v.total, v.count);
        }
    }
}

impl fmt::Display for ObsRollup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "observability rollup:")?;
        for (name, stat) in &self.spans {
            writeln!(
                f,
                "  span    {name:<28} {:>8}x  total {:>12.3?}  mean {:>12.3?}",
                stat.count,
                stat.total,
                stat.mean()
            )?;
        }
        for (name, value) in &self.counters {
            writeln!(f, "  counter {name:<28} {value:>10}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_spans() {
        let mut a = ObsRollup::default();
        a.counters.insert("x".into(), 2);
        a.spans.insert(
            "s".into(),
            SpanStat {
                count: 1,
                total: Duration::from_micros(10),
            },
        );
        let mut b = ObsRollup::default();
        b.counters.insert("x".into(), 3);
        b.counters.insert("y".into(), 1);
        b.spans.insert(
            "s".into(),
            SpanStat {
                count: 2,
                total: Duration::from_micros(5),
            },
        );
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.spans["s"].count, 3);
        assert_eq!(a.spans["s"].total, Duration::from_micros(15));
    }

    #[test]
    fn span_mean() {
        let s = SpanStat {
            count: 4,
            total: Duration::from_micros(100),
        };
        assert_eq!(s.mean(), Duration::from_micros(25));
        assert_eq!(SpanStat::default().mean(), Duration::ZERO);
    }

    #[test]
    fn display_lists_everything() {
        let mut r = ObsRollup::default();
        r.counters.insert("engine.replays".into(), 7);
        r.spans.insert(
            "stage.replay".into(),
            SpanStat {
                count: 7,
                total: Duration::from_millis(2),
            },
        );
        let text = r.to_string();
        assert!(text.contains("engine.replays"));
        assert!(text.contains("stage.replay"));
    }
}
