//! A minimal JSON value type, writer and parser — just the subset the
//! workspace's hand-rolled machine-readable formats need.
//!
//! The build environment is offline, so nothing here may depend on an
//! external crate. Three consumers share this module: the benchmark
//! reports (`dca-bench`, schema `dca-bench/1`), the benchmark diffs
//! (`dca-benchdiff/1`), and the persistent verdict cache (`dca-core`,
//! schema `dca-cache/1`). Keeping the one parser here means a
//! malformed-input fix lands in every consumer at once.

use crate::trace::json_escape;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as f64; all workspace schemas fit losslessly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Serializes the value as valid JSON. JSON has no representation for
/// non-finite numbers — emitting them raw (`inf`, `NaN`) would corrupt
/// the document — so they degrade to `null`, the same convention the
/// trace-event writer uses.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if !n.is_finite() => f.write_str("null"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "\"{}\"", json_escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "\"{}\": {v}", json_escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        // An overflowing literal like `1e999` parses to infinity; accepting
        // it would smuggle a non-finite value past the writer's guard.
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos - 1)),
                }
            }
            c => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8".to_string())?);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_writer_guards_non_finite_numbers() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_string(), "null");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        // A document holding non-finite numbers still serializes to
        // valid, parseable JSON.
        let doc = Json::Arr(vec![
            Json::Num(f64::NAN),
            Json::Num(1.0),
            Json::Str("q\"x".to_string()),
        ]);
        let back = parse_json(&doc.to_string()).expect("writer output must parse");
        assert_eq!(
            back,
            Json::Arr(vec![
                Json::Null,
                Json::Num(1.0),
                Json::Str("q\"x".to_string())
            ])
        );
        // And the parser refuses to manufacture one from an overflowing
        // literal.
        assert!(parse_json("1e999").is_err());
    }

    #[test]
    fn json_writer_round_trips_structures() {
        let text = r#"{"a": [1, 2.5, {"b": "q\"\nA"}], "c": null, "d": true}"#;
        let v = parse_json(text).expect("parse");
        let again = parse_json(&v.to_string()).expect("reparse");
        assert_eq!(v, again);
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v =
            parse_json(r#"{"a": [1, 2.5, {"b": "q\"\nA"}], "c": null, "d": true}"#).expect("parse");
        let obj = v.as_object().expect("object");
        let arr = obj["a"].as_array().expect("array");
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], Json::Num(2.5));
        let inner = arr[2].as_object().expect("object");
        assert_eq!(inner["b"].as_str(), Some("q\"\nA"));
        assert_eq!(obj["c"], Json::Null);
        assert_eq!(obj["d"], Json::Bool(true));
        assert_eq!(obj["d"].as_bool(), Some(true));
        assert_eq!(obj["c"].as_bool(), None);
        assert_eq!(arr[0].as_bool(), None);
    }

    #[test]
    fn parser_rejects_truncations_without_panicking() {
        let full = r#"{"a": [1, {"b": "x"}], "n": 1.5}"#;
        for cut in 0..full.len() {
            let _ = parse_json(&full[..cut]);
        }
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,").is_err());
        assert!(parse_json("\"open").is_err());
    }
}
