//! Trace-footprint dependence analysis (DESIGN.md §18).
//!
//! Dynamic commutativity — the property the DCA engine proves — says the
//! loop's observable outcome is invariant under *sequential* permutation
//! of its iterations. Snapshot-decomposability — the property the real
//! executor (`dca-parallel::exec`) needs — is strictly stronger: every
//! iteration must also compute the right values when it runs against the
//! loop-entry snapshot instead of against its predecessors' effects. Six
//! suite loops sit in the gap, and before this crate existed they were
//! only caught *after* worker threads had spawned, merged and diverged
//! from the sequential oracle.
//!
//! This crate closes the gap on the recording side:
//!
//! * [`FootprintProbe`] rides the golden recording and captures, per
//!   committed iteration, the heap cells read and written (with the
//!   written values, at object/cell granularity — the same granularity
//!   as the interpreter's write journal), the scalar variables defined
//!   by payload instructions, and the interpreter step count. Iterator
//!   (slice) accesses are kept separate from payload accesses because
//!   the executor replicates the iterator pre-pass in every worker.
//! * [`check_decomposable`] scans the profile for cross-iteration
//!   read∩write and write∩write overlaps and returns either
//!   [`DepVerdict::Decomposable`] or the first conflicting
//!   `(iter_a, iter_b, address)` witness.
//! * [`autotune_chunk`] turns the per-iteration step counts into a
//!   dynamic-schedule chunk size balancing steal traffic against tail
//!   imbalance — a deterministic pure function of the profile.
//!
//! Everything here is pure data in, pure data out: no interpreter state,
//! no I/O, no clocks — profiles and verdicts are bit-stable across runs
//! and across execution widths.

#![warn(missing_docs)]

mod autotune;
mod overlap;
mod profile;

pub use autotune::{autotune_chunk, DEFAULT_DYNAMIC_CHUNK, GRAB_OVERHEAD_STEPS};
pub use overlap::{check_decomposable, Conflict, ConflictKind, DepReport, DepVerdict};
pub use profile::{
    canonical_bits, CellWrite, FootprintProbe, IterFootprint, LoopProfile, DEFAULT_FOOTPRINT_CAP,
};
