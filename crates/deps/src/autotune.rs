//! Profile-driven chunk autotuning for dynamic scheduling.

/// The default `schedule(dynamic, N)` chunk when no profile is available
/// to tune from. Every consumer — the executor's fallback, the advisor's
/// pragma rendering, the scaling benches — must use this one constant
/// (`DcaConfig::DEFAULT_DYNAMIC_CHUNK` aliases it); a regression test
/// pins the agreement.
pub const DEFAULT_DYNAMIC_CHUNK: usize = 64;

/// Modeled cost (in interpreter steps) of one dynamic chunk grab: the
/// atomic fetch-add plus scheduling slack. Mirrors the simulator's
/// default `per_chunk_overhead` so the autotuner and the simulator agree
/// on the steal-traffic side of the trade-off.
pub const GRAB_OVERHEAD_STEPS: u64 = 6;

/// Picks a dynamic-schedule chunk size from the recorded per-iteration
/// step counts: large enough to keep steal traffic (one
/// [`GRAB_OVERHEAD_STEPS`] per grab) negligible, small enough to avoid
/// tail imbalance when iteration costs are skewed.
///
/// Deterministic pure function of `(iter_steps, workers)`: candidates
/// are the powers of two up to `ceil(n / workers)` (the static block
/// size — any larger and some worker idles from the start), each scored
/// by greedy list-schedule makespan, ties broken toward the larger chunk
/// (fewer grabs). Always returns at least 1.
#[must_use]
pub fn autotune_chunk(iter_steps: &[u64], workers: usize) -> usize {
    let n = iter_steps.len();
    if n == 0 {
        return DEFAULT_DYNAMIC_CHUNK;
    }
    let workers = workers.max(1);
    if workers == 1 {
        // One worker: a single grab of everything is trivially optimal.
        return n;
    }
    let max_chunk = n.div_ceil(workers).max(1);
    let mut best_cost = u64::MAX;
    let mut best_chunk = 1usize;
    let mut chunk = 1usize;
    loop {
        let cost = makespan(iter_steps, workers, chunk);
        if cost <= best_cost {
            // `<=` breaks ties toward the larger chunk.
            best_cost = cost;
            best_chunk = chunk;
        }
        if chunk >= max_chunk {
            break;
        }
        chunk = (chunk * 2).min(max_chunk);
    }
    best_chunk
}

/// Greedy list-schedule makespan of dealing `iter_steps` in `chunk`-sized
/// grabs to `workers` workers (the simulator's dynamic model).
fn makespan(iter_steps: &[u64], workers: usize, chunk: usize) -> u64 {
    let mut loads = vec![0u64; workers];
    for c in iter_steps.chunks(chunk) {
        let min = loads.iter_mut().min().expect("workers >= 1");
        *min += c.iter().sum::<u64>() + GRAB_OVERHEAD_STEPS;
    }
    loads.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_prefer_big_chunks() {
        // With uniform iterations there is no imbalance to fix: the
        // tuner should go straight to the static block size and pay the
        // minimum number of grabs.
        let steps = vec![100u64; 2048];
        let c = autotune_chunk(&steps, 4);
        assert_eq!(c, 512, "uniform work wants one chunk per worker");
    }

    #[test]
    fn skewed_costs_prefer_small_chunks() {
        // A heavy tail: big chunks strand the heavy iterations on one
        // worker, so the tuner must pick something finer than the block.
        let steps: Vec<u64> = (0..512).map(|i| if i >= 480 { 5000 } else { 10 }).collect();
        let c = autotune_chunk(&steps, 4);
        assert!(c < 128, "skewed work needs fine-grained chunks, got {c}");
        // And the choice beats the static block under the same model.
        let block = 512usize.div_ceil(4);
        assert!(makespan(&steps, 4, c) <= makespan(&steps, 4, block));
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        assert_eq!(autotune_chunk(&[], 4), DEFAULT_DYNAMIC_CHUNK);
        assert_eq!(autotune_chunk(&[10], 4), 1);
        assert_eq!(autotune_chunk(&[10, 20, 30], 0), 3, "workers clamp to 1");
        assert_eq!(autotune_chunk(&[10; 7], 1), 7, "single worker grabs all");
        assert!(autotune_chunk(&[0; 16], 4) >= 1);
    }

    #[test]
    fn autotune_is_deterministic() {
        let steps: Vec<u64> = (0..300).map(|i| (i * 37 % 91) + 1).collect();
        let a = autotune_chunk(&steps, 8);
        let b = autotune_chunk(&steps, 8);
        assert_eq!(a, b);
    }
}
