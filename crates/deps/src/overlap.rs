//! Cross-iteration overlap test over a recorded [`LoopProfile`].
//!
//! The executor runs every iteration against the loop-entry snapshot and
//! merges journaled writes afterwards, so the payload hazard is:
//!
//! * **Flow** — iteration `b` has an upward-exposed read of a cell an
//!   earlier iteration `a` changed: sequentially `b` sees `a`'s value,
//!   in parallel it sees the snapshot.
//!
//! Two classic hazards are *safe* here by construction:
//!
//! * **Anti-dependences** (read in `a`, write in `b > a`): both
//!   iteration sources hand each worker its iterations in ascending
//!   order and every worker reads from its private snapshot restore, so
//!   a reader can never observe a later iteration's write.
//! * **Cross-iteration overwrites** (two iterations store different
//!   values, nobody between them reads): the merge applies write-sets in
//!   worker order, and the static block partition gives the
//!   highest-indexed worker the highest iterations, so the surviving
//!   value is the globally-last writer's — exactly the sequential
//!   outcome. (Dynamic chunk grabs are racy and can break this; the
//!   differential validator stays armed behind the pre-check as the
//!   guard for that corner.)
//!
//! Silent writes (the iteration's net effect leaves the cell's canonical
//! bits unchanged, see [`CellWrite::is_silent`]) participate in no
//! hazard. Iterator-slice accesses are checked separately: the pre-pass
//! replays slice effects identically in every worker *before* any
//! payload runs, so a payload access overlapping a slice-*changed* cell
//! (or a slice read of a payload-changed cell) observes a different
//! interleaving than the sequential run did.

use crate::profile::LoopProfile;
use std::collections::{BTreeMap, BTreeSet};

/// What kind of cross-iteration hazard a [`Conflict`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// A read observed (or failed to observe) another iteration's write.
    Flow,
    /// A payload write and the replicated slice pre-pass both changed the
    /// same cell, so the surviving value depends on the interleaving.
    WriteWrite,
}

impl std::fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConflictKind::Flow => write!(f, "flow dependence"),
            ConflictKind::WriteWrite => write!(f, "write/write conflict"),
        }
    }
}

/// The first cross-iteration hazard found, as a concrete witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// The earlier of the two conflicting iterations (the writer for
    /// payload flow hazards). Slice/payload conflicts may report
    /// `iter_a == iter_b`: the hazard there is pre-pass replication,
    /// not iteration ordering.
    pub iter_a: usize,
    /// The later, dependent iteration.
    pub iter_b: usize,
    /// Object id of the conflicting cell.
    pub obj: u32,
    /// Cell index of the conflicting cell.
    pub cell: u32,
    /// Hazard kind.
    pub kind: ConflictKind,
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on obj{}[{}] between iterations {} and {}",
            self.kind, self.obj, self.cell, self.iter_a, self.iter_b
        )
    }
}

/// Everything the overlap scan found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepReport {
    /// Number of distinct heap cells carrying at least one hazard.
    pub conflicting_cells: u64,
    /// The first hazard in deterministic scan order (ascending iteration,
    /// then ascending cell address).
    pub first: Conflict,
}

/// Outcome of [`check_decomposable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepVerdict {
    /// No cross-iteration overlap outside the excluded cells: iterations
    /// may run against the snapshot and merge in any worker order.
    Decomposable,
    /// At least one hazard; the report carries the first witness.
    Conflicting(DepReport),
    /// The profile is incomplete (access-set cap hit): no claim either
    /// way. Callers fall back to the differential validator alone.
    Unknown,
}

#[derive(Default)]
struct CellState {
    /// `Some((latest changing writer iteration, current canonical bits))`
    /// once any iteration has changed the cell away from its snapshot
    /// value.
    changed: Option<(usize, u128)>,
}

/// Scans `profile` for cross-iteration hazards. Cells of the objects in
/// `excluded_objs` — recognized histogram/reduction arrays, which the
/// executor merges with the reduction operator instead of overwriting —
/// are exempt from the test.
#[must_use]
pub fn check_decomposable(profile: &LoopProfile, excluded_objs: &BTreeSet<u32>) -> DepVerdict {
    if profile.truncated {
        return DepVerdict::Unknown;
    }

    // Global slice footprint: the pre-pass replays every slice effect in
    // every worker before payload starts, so slice/payload overlaps are
    // hazardous regardless of iteration order. Map each cell to the
    // first slice iteration touching it (for the witness).
    let mut slice_changed: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    let mut slice_read: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for (k, it) in profile.iters.iter().enumerate() {
        for w in &it.slice_writes {
            if !w.is_silent() && !excluded_objs.contains(&w.obj) {
                slice_changed.entry((w.obj, w.cell)).or_insert(k);
            }
        }
        for &(obj, cell) in &it.slice_reads {
            if !excluded_objs.contains(&obj) {
                slice_read.entry((obj, cell)).or_insert(k);
            }
        }
    }

    let mut cells: BTreeMap<(u32, u32), CellState> = BTreeMap::new();
    let mut first: Option<Conflict> = None;
    let mut conflicting_cells: u64 = 0;
    let mut flagged: BTreeSet<(u32, u32)> = BTreeSet::new();

    let mut record = |flagged: &mut BTreeSet<(u32, u32)>, c: Conflict| {
        if flagged.insert((c.obj, c.cell)) {
            conflicting_cells += 1;
        }
        if first.is_none() {
            first = Some(c);
        }
    };

    for (b, it) in profile.iters.iter().enumerate() {
        for &(obj, cell) in &it.reads {
            if excluded_objs.contains(&obj) {
                continue;
            }
            // Flow from an earlier payload writer.
            if let Some(st) = cells.get(&(obj, cell)) {
                if let Some((a, _)) = st.changed {
                    if a != b {
                        record(
                            &mut flagged,
                            Conflict {
                                iter_a: a,
                                iter_b: b,
                                obj,
                                cell,
                                kind: ConflictKind::Flow,
                            },
                        );
                    }
                }
            }
            // Flow from the replicated slice pre-pass (any iteration:
            // sequentially the read sees only slice effects of earlier
            // iterations, in parallel it sees all of them).
            if let Some(&a) = slice_changed.get(&(obj, cell)) {
                record(
                    &mut flagged,
                    Conflict {
                        iter_a: a.min(b),
                        iter_b: a.max(b),
                        obj,
                        cell,
                        kind: ConflictKind::Flow,
                    },
                );
            }
        }
        for w in &it.writes {
            if excluded_objs.contains(&w.obj) {
                continue;
            }
            let st = cells.entry((w.obj, w.cell)).or_default();
            match st.changed {
                None => {
                    if !w.is_silent() {
                        st.changed = Some((b, w.last_new));
                        // A changing payload write to a cell the slice
                        // also touches races the replicated pre-pass.
                        if let Some(&a) = slice_changed.get(&(w.obj, w.cell)) {
                            record(
                                &mut flagged,
                                Conflict {
                                    iter_a: a.min(b),
                                    iter_b: a.max(b),
                                    obj: w.obj,
                                    cell: w.cell,
                                    kind: ConflictKind::WriteWrite,
                                },
                            );
                        } else if let Some(&a) = slice_read.get(&(w.obj, w.cell)) {
                            record(
                                &mut flagged,
                                Conflict {
                                    iter_a: a.min(b),
                                    iter_b: a.max(b),
                                    obj: w.obj,
                                    cell: w.cell,
                                    kind: ConflictKind::Flow,
                                },
                            );
                        }
                    }
                }
                // A later overwrite is not itself a hazard (see the
                // module docs); it just moves the changing-writer mark
                // forward for subsequent reads' witnesses.
                Some(_) => st.changed = Some((b, w.last_new)),
            }
        }
    }

    match first {
        None => DepVerdict::Decomposable,
        Some(first) => DepVerdict::Conflicting(DepReport {
            conflicting_cells,
            first,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{CellWrite, FootprintProbe, IterFootprint};
    use dca_interp::Value;

    fn write(obj: u32, cell: u32, old: i64, new: i64) -> CellWrite {
        CellWrite {
            obj,
            cell,
            first_old: crate::canonical_bits(Value::Int(old)),
            last_new: crate::canonical_bits(Value::Int(new)),
        }
    }

    fn profile(iters: Vec<IterFootprint>) -> LoopProfile {
        LoopProfile {
            iters,
            truncated: false,
        }
    }

    #[test]
    fn disjoint_writes_are_decomposable() {
        let p = profile(
            (0..8)
                .map(|i| IterFootprint {
                    writes: vec![write(1, i, 0, i64::from(i) + 1)],
                    ..IterFootprint::default()
                })
                .collect(),
        );
        assert_eq!(
            check_decomposable(&p, &BTreeSet::new()),
            DepVerdict::Decomposable
        );
    }

    #[test]
    fn flow_dependence_yields_first_witness() {
        // Iteration 2 reads the cell iteration 1 changed.
        let p = profile(vec![
            IterFootprint::default(),
            IterFootprint {
                writes: vec![write(5, 3, 0, 42)],
                ..IterFootprint::default()
            },
            IterFootprint {
                reads: vec![(5, 3)],
                ..IterFootprint::default()
            },
        ]);
        match check_decomposable(&p, &BTreeSet::new()) {
            DepVerdict::Conflicting(r) => {
                assert_eq!(r.conflicting_cells, 1);
                assert_eq!(
                    r.first,
                    Conflict {
                        iter_a: 1,
                        iter_b: 2,
                        obj: 5,
                        cell: 3,
                        kind: ConflictKind::Flow,
                    }
                );
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn anti_dependence_is_safe() {
        // Read in iteration 0, write in iteration 1: snapshot isolation
        // plus ascending per-worker order makes this safe.
        let p = profile(vec![
            IterFootprint {
                reads: vec![(2, 0)],
                ..IterFootprint::default()
            },
            IterFootprint {
                writes: vec![write(2, 0, 0, 9)],
                ..IterFootprint::default()
            },
        ]);
        assert_eq!(
            check_decomposable(&p, &BTreeSet::new()),
            DepVerdict::Decomposable
        );
    }

    #[test]
    fn same_value_and_silent_writers_are_safe() {
        // Both iterations write 7 (WW but value-equal); a third writes
        // silently.
        let p = profile(vec![
            IterFootprint {
                writes: vec![write(1, 0, 0, 7)],
                ..IterFootprint::default()
            },
            IterFootprint {
                writes: vec![write(1, 0, 7, 7)],
                ..IterFootprint::default()
            },
            IterFootprint {
                writes: vec![write(1, 1, 3, 3)],
                ..IterFootprint::default()
            },
        ]);
        assert_eq!(
            check_decomposable(&p, &BTreeSet::new()),
            DepVerdict::Decomposable
        );
    }

    #[test]
    fn cross_iteration_overwrite_without_reads_is_safe() {
        // Two iterations leave different values but nobody reads the
        // stale one: the merge's worker-ordered overwrite reproduces the
        // sequential last-writer-wins outcome (module docs).
        let p = profile(vec![
            IterFootprint {
                writes: vec![write(1, 0, 0, 7)],
                ..IterFootprint::default()
            },
            IterFootprint {
                writes: vec![write(1, 0, 7, 8)],
                ..IterFootprint::default()
            },
        ]);
        assert_eq!(
            check_decomposable(&p, &BTreeSet::new()),
            DepVerdict::Decomposable
        );
    }

    #[test]
    fn scratch_buffer_refill_is_decomposable() {
        // The EP idiom: every iteration fills a shared scratch buffer,
        // then consumes it. The probe drops the locally-satisfied reads,
        // so only the (safe) overwrites remain.
        let mut p = FootprintProbe::new();
        p.begin_invocation(0);
        for k in 0..3 {
            p.set_payload(true);
            p.store(2, 0, Value::Int(k), Value::Int(k + 1));
            p.store(2, 1, Value::Int(10 * k), Value::Int(10 * (k + 1)));
            p.read(2, 0);
            p.read(2, 1);
            p.commit_iter(u64::try_from(k).unwrap() * 10 + 10);
        }
        let prof = p.finish();
        assert!(prof.iters.iter().all(|it| it.reads.is_empty()));
        assert_eq!(
            check_decomposable(&prof, &BTreeSet::new()),
            DepVerdict::Decomposable
        );
    }

    #[test]
    fn upward_exposed_read_still_conflicts_after_overwrite() {
        // Iteration 1 reads before writing: the read is upward-exposed
        // and must flag flow from iteration 0's change.
        let mut p = FootprintProbe::new();
        p.begin_invocation(0);
        p.set_payload(true);
        p.store(1, 0, Value::Int(0), Value::Int(5));
        p.commit_iter(10);
        p.set_payload(true);
        p.read(1, 0);
        p.store(1, 0, Value::Int(5), Value::Int(6));
        p.commit_iter(20);
        let prof = p.finish();
        match check_decomposable(&prof, &BTreeSet::new()) {
            DepVerdict::Conflicting(r) => {
                assert_eq!(r.first.kind, ConflictKind::Flow);
                assert_eq!((r.first.iter_a, r.first.iter_b), (0, 1));
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn excluded_objects_are_exempt() {
        let p = profile(vec![
            IterFootprint {
                writes: vec![write(9, 0, 0, 1)],
                ..IterFootprint::default()
            },
            IterFootprint {
                writes: vec![write(9, 0, 1, 2)],
                reads: vec![(9, 0)],
                ..IterFootprint::default()
            },
        ]);
        assert_eq!(
            check_decomposable(&p, &BTreeSet::from([9])),
            DepVerdict::Decomposable
        );
    }

    #[test]
    fn payload_read_of_slice_changed_cell_conflicts() {
        // The slice pops a worklist head; a payload read of that head
        // cell would see the fully-drained list in parallel.
        let p = profile(vec![
            IterFootprint {
                slice_writes: vec![write(4, 0, 10, 20)],
                reads: vec![(4, 0)],
                ..IterFootprint::default()
            },
            IterFootprint {
                slice_writes: vec![write(4, 0, 20, 30)],
                ..IterFootprint::default()
            },
        ]);
        match check_decomposable(&p, &BTreeSet::new()) {
            DepVerdict::Conflicting(r) => assert_eq!(r.first.kind, ConflictKind::Flow),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_slice_writes_and_payload_reads_coexist() {
        // The worklist-drain shape: slice writes the head cell, payload
        // reads element cells nobody writes.
        let p = profile(vec![
            IterFootprint {
                slice_writes: vec![write(4, 0, 10, 20)],
                slice_reads: vec![(4, 0), (7, 1)],
                reads: vec![(7, 0)],
                ..IterFootprint::default()
            },
            IterFootprint {
                slice_writes: vec![write(4, 0, 20, 30)],
                slice_reads: vec![(4, 0), (8, 1)],
                reads: vec![(8, 0)],
                ..IterFootprint::default()
            },
        ]);
        assert_eq!(
            check_decomposable(&p, &BTreeSet::new()),
            DepVerdict::Decomposable
        );
    }

    #[test]
    fn truncated_profile_is_unknown() {
        let mut p = FootprintProbe::with_cap(0);
        p.begin_invocation(0);
        p.set_payload(true);
        p.read(0, 0);
        p.commit_iter(1);
        let prof = p.finish();
        assert!(prof.truncated);
        assert_eq!(
            check_decomposable(&prof, &BTreeSet::new()),
            DepVerdict::Unknown
        );
    }
}
