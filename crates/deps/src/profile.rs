//! Per-iteration memory footprints mined from the golden recording.

use dca_interp::Value;

/// Default cap on recorded heap accesses per profile. A loop that touches
/// more cells than this stops accumulating sets (the profile is marked
/// [`LoopProfile::truncated`] and the overlap check returns
/// [`crate::DepVerdict::Unknown`]); step counts keep recording so the
/// autotuner still works. The cap bounds the probe's memory to a few
/// hundred MiB in the worst case, mirroring the analysis heap budgets.
pub const DEFAULT_FOOTPRINT_CAP: usize = 1 << 22;

/// A heap cell key: `(object id, cell index)`.
type Cell = (u32, u32);

/// Canonical bit pattern of a [`Value`], used to compare stored values
/// across iterations. Matches the live-state fingerprint's equivalence:
/// every NaN collapses to one canonical NaN and `-0.0` to `+0.0`, so two
/// writes that the validator would call equal compare equal here too.
/// The tag occupies the high 64 bits so values of different types never
/// collide.
#[must_use]
#[inline]
pub fn canonical_bits(v: Value) -> u128 {
    let (tag, bits) = match v {
        Value::Int(x) => (1u64, x as u64),
        Value::Float(x) => {
            let c = if x.is_nan() {
                f64::NAN
            } else if x == 0.0 {
                0.0
            } else {
                x
            };
            (2u64, c.to_bits())
        }
        Value::Bool(b) => (3u64, u64::from(b)),
        Value::Ptr(o) => (4u64, u64::from(o.0)),
        Value::Null => (5u64, 0),
    };
    (u128::from(tag) << 64) | u128::from(bits)
}

/// The net effect of one iteration on one heap cell: the value the cell
/// held when the iteration first stored to it and the value it left
/// behind. Intermediate stores collapse (only the endpoints matter for
/// cross-iteration dependences).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellWrite {
    /// Object id of the cell.
    pub obj: u32,
    /// Cell index within the object.
    pub cell: u32,
    /// Canonical bits of the value the cell held before the iteration's
    /// first store to it.
    pub first_old: u128,
    /// Canonical bits of the value the iteration's last store left.
    pub last_new: u128,
}

impl CellWrite {
    /// A *silent* write leaves the cell exactly as the iteration found
    /// it: the net effect is indistinguishable from not writing at all,
    /// so it participates in no dependence.
    #[must_use]
    pub fn is_silent(&self) -> bool {
        self.first_old == self.last_new
    }
}

/// One committed iteration's footprint.
#[derive(Debug, Clone, Default)]
pub struct IterFootprint {
    /// Heap cells read by payload instructions, sorted, deduplicated.
    /// Only *upward-exposed* reads appear: a read preceded by this same
    /// iteration's own write to the cell is satisfied locally (the worker
    /// executes the iteration in program order), so it exposes no
    /// cross-iteration dependence — the scratch-buffer idiom (fill a
    /// private buffer, then consume it, every iteration) stays clean.
    pub reads: Vec<Cell>,
    /// Net payload writes per cell, sorted by cell.
    pub writes: Vec<CellWrite>,
    /// Heap cells read by iterator-slice instructions.
    pub slice_reads: Vec<Cell>,
    /// Net iterator-slice writes per cell (a destructive iterator's pop,
    /// for example), sorted by cell.
    pub slice_writes: Vec<CellWrite>,
    /// Interpreter steps from this iteration's header arrival to the
    /// next (slice work included).
    pub steps: u64,
}

/// The whole invocation's footprint: one [`IterFootprint`] per committed
/// iteration, aligned 1:1 with the golden record's iteration tuples.
#[derive(Debug, Clone, Default)]
pub struct LoopProfile {
    /// Per-iteration footprints in original order.
    pub iters: Vec<IterFootprint>,
    /// True when the access-set cap was hit: read/write sets are
    /// incomplete and the overlap check must not claim decomposability.
    /// Step counts remain complete.
    pub truncated: bool,
}

impl LoopProfile {
    /// Per-iteration step counts, in original order (autotuner input).
    #[must_use]
    pub fn iter_steps(&self) -> Vec<u64> {
        self.iters.iter().map(|it| it.steps).collect()
    }
}

/// In-flight accumulation for the current (uncommitted) iteration: a raw
/// event log, sealed into sorted footprint sets at commit. The hook path
/// runs once per heap access of the golden run, so it must be a plain
/// `Vec` push; all dedup, net-write collapsing and upward-exposure
/// filtering happens once per iteration by sort-and-scan.
#[derive(Default)]
struct CurIter {
    /// Next event sequence number (orders reads against stores).
    seq: u32,
    /// `(cell, seq, payload?)` per heap read.
    reads: Vec<(Cell, u32, bool)>,
    /// `(cell, seq, payload?, old bits, new bits)` per heap store.
    stores: Vec<(Cell, u32, bool, u128, u128)>,
}

impl CurIter {
    fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.stores.is_empty()
    }
}

/// Accumulates a [`LoopProfile`] while the golden recorder drives the
/// interpreter. The recorder composition calls [`FootprintProbe::read`] /
/// [`FootprintProbe::store`] from the memory hooks, flips
/// [`FootprintProbe::set_payload`] as control crosses slice/payload
/// instructions, and marks iteration boundaries with
/// [`FootprintProbe::begin_invocation`], [`FootprintProbe::commit_iter`],
/// [`FootprintProbe::abort_invocation`] and
/// [`FootprintProbe::drop_partial`].
pub struct FootprintProbe {
    active: bool,
    payload: bool,
    cap: usize,
    /// Heap events still accepted: zero both while inactive and once the
    /// cap is hit, so the per-access hot path gates on one branch.
    events_left: usize,
    iter_start_steps: u64,
    cur: CurIter,
    /// Commit-time scratch: per-cell first-write kill points.
    kills: Vec<(Cell, u32, u32)>,
    iters: Vec<IterFootprint>,
    truncated: bool,
}

impl Default for FootprintProbe {
    fn default() -> Self {
        FootprintProbe::new()
    }
}

impl FootprintProbe {
    /// A probe with the [`DEFAULT_FOOTPRINT_CAP`].
    #[must_use]
    pub fn new() -> Self {
        FootprintProbe::with_cap(DEFAULT_FOOTPRINT_CAP)
    }

    /// A probe whose access sets stop growing after `cap` recorded heap
    /// events (the profile is then [`LoopProfile::truncated`]).
    #[must_use]
    pub fn with_cap(cap: usize) -> Self {
        FootprintProbe {
            active: false,
            payload: false,
            cap,
            events_left: 0,
            iter_start_steps: 0,
            cur: CurIter::default(),
            kills: Vec::new(),
            iters: Vec::new(),
            truncated: false,
        }
    }

    /// The tested invocation's first header arrival: start accumulating.
    pub fn begin_invocation(&mut self, steps: u64) {
        self.active = true;
        self.payload = false;
        self.events_left = self.cap;
        self.iter_start_steps = steps;
        self.cur = CurIter::default();
    }

    /// The recorder discarded the in-flight invocation (too short, or a
    /// skipped eligible one): forget everything accumulated so far.
    pub fn abort_invocation(&mut self) {
        self.active = false;
        self.events_left = 0;
        self.truncated = false;
        self.cur = CurIter::default();
        self.iters.clear();
    }

    /// An iteration boundary: seal the current accumulation as one
    /// committed iteration ending at step count `steps`.
    pub fn commit_iter(&mut self, steps: u64) {
        // The event buffers are drained, not replaced: their capacity
        // (and the kill scratch vector's) is reused across iterations so
        // the steady state allocates only the footprint vectors it keeps.
        let cur = &mut self.cur;
        cur.seq = 0;

        // Collapse stores: per cell, per side, the first store's old value
        // and the last store's new value are the net effect. Alongside,
        // record each cell's first-write sequence numbers — the kill
        // points for upward-exposure filtering below.
        cur.stores
            .sort_unstable_by_key(|&(cell, seq, ..)| (cell, seq));
        let mut writes = Vec::new();
        let mut slice_writes = Vec::new();
        // `(cell, first store seq of any side, first slice-store seq)`.
        let kills = &mut self.kills;
        kills.clear();
        let mut i = 0;
        while i < cur.stores.len() {
            let cell = cur.stores[i].0;
            let first_seq = cur.stores[i].1;
            let mut first_slice_seq = u32::MAX;
            let mut pay: Option<(u128, u128)> = None;
            let mut sli: Option<(u128, u128)> = None;
            while i < cur.stores.len() && cur.stores[i].0 == cell {
                let (_, seq, payload, old, new) = cur.stores[i];
                let side = if payload { &mut pay } else { &mut sli };
                match side {
                    Some((_, last)) => *last = new,
                    None => *side = Some((old, new)),
                }
                if !payload {
                    first_slice_seq = first_slice_seq.min(seq);
                }
                i += 1;
            }
            kills.push((cell, first_seq, first_slice_seq));
            for (net, out) in [(pay, &mut writes), (sli, &mut slice_writes)] {
                if let Some((first_old, last_new)) = net {
                    out.push(CellWrite {
                        obj: cell.0,
                        cell: cell.1,
                        first_old,
                        last_new,
                    });
                }
            }
        }

        // Upward-exposure: a payload read survives only when it precedes
        // the iteration's first write (either side) to the cell; a slice
        // read only when it precedes the first *slice* write. Sorting by
        // `(cell, seq)` makes the earliest read of each cell the first
        // seen, so a `last()` check dedups each side.
        cur.reads
            .sort_unstable_by_key(|&(cell, seq, _)| (cell, seq));
        let mut reads: Vec<Cell> = Vec::new();
        let mut slice_reads: Vec<Cell> = Vec::new();
        for &(cell, seq, payload) in &cur.reads {
            let kill = kills
                .binary_search_by_key(&cell, |&(c, ..)| c)
                .ok()
                .map(|k| if payload { kills[k].1 } else { kills[k].2 });
            if kill.is_some_and(|k| seq > k) {
                continue;
            }
            let out = if payload {
                &mut reads
            } else {
                &mut slice_reads
            };
            if out.last() != Some(&cell) {
                out.push(cell);
            }
        }

        self.iters.push(IterFootprint {
            reads,
            writes,
            slice_reads,
            slice_writes,
            steps: steps.saturating_sub(self.iter_start_steps),
        });
        cur.reads.clear();
        cur.stores.clear();
        self.iter_start_steps = steps;
    }

    /// The invocation ended without committing the in-flight partial
    /// (the header check failed): its accesses belong to the exit test,
    /// not to any iteration.
    pub fn drop_partial(&mut self) {
        self.active = false;
        self.events_left = 0;
        self.cur = CurIter::default();
    }

    /// Whether subsequent accesses attribute to payload (`true`) or to
    /// the iterator slice (`false`).
    pub fn set_payload(&mut self, payload: bool) {
        self.payload = payload;
    }

    /// A heap cell was read. Reads the current iteration already wrote
    /// (payload reads after any same-iteration write, slice reads after a
    /// same-iteration slice write) are satisfied locally — the worker
    /// replays the iteration in program order — and are dropped when the
    /// iteration commits.
    #[inline]
    pub fn read(&mut self, obj: u32, cell: u32) {
        if self.events_left == 0 {
            self.dropped();
            return;
        }
        self.events_left -= 1;
        let seq = self.cur.seq;
        self.cur.seq += 1;
        self.cur.reads.push(((obj, cell), seq, self.payload));
    }

    /// A heap cell was stored to; `old`/`new` are the cell's value before
    /// and after the store.
    #[inline]
    pub fn store(&mut self, obj: u32, cell: u32, old: Value, new: Value) {
        if self.events_left == 0 {
            self.dropped();
            return;
        }
        self.events_left -= 1;
        let seq = self.cur.seq;
        self.cur.seq += 1;
        self.cur.stores.push((
            (obj, cell),
            seq,
            self.payload,
            canonical_bits(old),
            canonical_bits(new),
        ));
    }

    /// Seals the probe into the finished profile.
    #[must_use]
    pub fn finish(mut self) -> LoopProfile {
        if !self.cur.is_empty() {
            // An unsealed partial at finish time means the driver ended
            // without a boundary signal; keep the committed prefix only.
            self.cur = CurIter::default();
        }
        LoopProfile {
            iters: self.iters,
            truncated: self.truncated,
        }
    }

    /// A heap event arrived with no budget left: either the probe is
    /// inactive (nothing to note) or the cap was hit (the profile's
    /// access sets are now incomplete).
    #[cold]
    fn dropped(&mut self) {
        if self.active {
            self.truncated = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_bits_collapse_nan_and_negative_zero() {
        assert_eq!(
            canonical_bits(Value::Float(f64::NAN)),
            canonical_bits(Value::Float(-f64::NAN))
        );
        assert_eq!(
            canonical_bits(Value::Float(-0.0)),
            canonical_bits(Value::Float(0.0))
        );
        assert_ne!(
            canonical_bits(Value::Int(0)),
            canonical_bits(Value::Float(0.0)),
            "tags separate types"
        );
        assert_ne!(
            canonical_bits(Value::Null),
            canonical_bits(Value::Bool(false))
        );
    }

    #[test]
    fn probe_collapses_stores_and_attributes_slice() {
        let mut p = FootprintProbe::new();
        p.begin_invocation(100);
        p.set_payload(true);
        p.read(1, 0);
        p.read(1, 0);
        p.store(1, 2, Value::Int(0), Value::Int(5));
        p.store(1, 2, Value::Int(5), Value::Int(9));
        p.set_payload(false);
        p.read(3, 0);
        p.store(3, 1, Value::Int(7), Value::Int(8));
        p.commit_iter(150);
        let prof = p.finish();
        assert_eq!(prof.iters.len(), 1);
        let it = &prof.iters[0];
        assert_eq!(it.reads, vec![(1, 0)]);
        assert_eq!(it.writes.len(), 1);
        assert_eq!(it.writes[0].first_old, canonical_bits(Value::Int(0)));
        assert_eq!(it.writes[0].last_new, canonical_bits(Value::Int(9)));
        assert_eq!(it.slice_reads, vec![(3, 0)]);
        assert_eq!(it.slice_writes.len(), 1);
        assert_eq!(it.steps, 50);
    }

    #[test]
    fn silent_write_detected_from_endpoints() {
        let mut p = FootprintProbe::new();
        p.begin_invocation(0);
        p.set_payload(true);
        // 3 -> 7 -> 3: the net effect is silent.
        p.store(0, 0, Value::Int(3), Value::Int(7));
        p.store(0, 0, Value::Int(7), Value::Int(3));
        p.commit_iter(10);
        let prof = p.finish();
        assert!(prof.iters[0].writes[0].is_silent());
    }

    #[test]
    fn abort_discards_everything_cap_marks_truncated() {
        let mut p = FootprintProbe::with_cap(2);
        p.begin_invocation(0);
        p.set_payload(true);
        p.read(0, 0);
        p.commit_iter(1);
        p.abort_invocation();
        p.begin_invocation(5);
        p.set_payload(true);
        p.read(0, 1);
        p.read(0, 2);
        p.read(0, 3); // over cap
        p.commit_iter(9);
        let prof = p.finish();
        assert_eq!(prof.iters.len(), 1, "aborted invocation left no trace");
        assert_eq!(prof.iters[0].reads.len(), 2);
        assert!(prof.truncated);
        assert_eq!(prof.iter_steps(), vec![4], "steps survive truncation");
    }
}
