//! Frontend error type shared by the lexer, parser and type checker.

use crate::token::Pos;
use std::fmt;

/// Which frontend stage produced an [`Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Lexical error (bad character, malformed literal, ...).
    Lex,
    /// Syntactic error (unexpected token, ...).
    Parse,
    /// Semantic error (type mismatch, unknown name, ...).
    Type,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Lex => write!(f, "lex error"),
            ErrorKind::Parse => write!(f, "parse error"),
            ErrorKind::Type => write!(f, "type error"),
        }
    }
}

/// A frontend diagnostic: stage, message and source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    message: String,
    pos: Pos,
}

impl Error {
    /// Creates an error of the given kind at `pos`.
    pub fn new(kind: ErrorKind, message: impl Into<String>, pos: Pos) -> Self {
        Error {
            kind,
            message: message.into(),
            pos,
        }
    }

    /// The stage that produced the error.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable message (lowercase, no trailing punctuation).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source position the error points at.
    pub fn pos(&self) -> Pos {
        self.pos
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.pos, self.message)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_position_and_message() {
        let e = Error::new(ErrorKind::Parse, "expected `;`", Pos::new(4, 2));
        assert_eq!(e.to_string(), "parse error at 4:2: expected `;`");
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
