//! Hand-written lexer for mini-C.
//!
//! Produces a flat [`Token`] stream terminated by [`TokenKind::Eof`]. Line
//! comments (`// ...`) and block comments (`/* ... */`, non-nesting) are
//! skipped.

use crate::error::{Error, ErrorKind};
use crate::token::{Pos, Token, TokenKind};

/// Lexes `source` into a token stream ending with an `Eof` token.
///
/// # Errors
///
/// Returns a [`Error`] with [`ErrorKind::Lex`] on the first malformed
/// character or literal.
pub fn lex(source: &str) -> Result<Vec<Token>, Error> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    at: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            at: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.at + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.at += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::new(ErrorKind::Lex, msg, self.pos())
    }

    fn run(mut self) -> Result<Vec<Token>, Error> {
        while let Some(c) = self.peek() {
            let pos = self.pos();
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(self.err("unterminated block comment")),
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                        }
                    }
                }
                b'0'..=b'9' => self.number(pos)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(pos),
                b'"' => self.string(pos)?,
                _ => self.punct(pos)?,
            }
        }
        let pos = self.pos();
        self.out.push(Token::new(TokenKind::Eof, pos));
        Ok(self.out)
    }

    fn number(&mut self, pos: Pos) -> Result<(), Error> {
        let start = self.at;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        // A fractional part: `.` followed by a digit (so `a[0].f` still works
        // if we ever allowed it; field access needs an identifier anyway).
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        // Exponent: e or E, optional sign, digits.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mut look = self.at + 1;
            if matches!(self.src.get(look), Some(b'+' | b'-')) {
                look += 1;
            }
            if matches!(self.src.get(look), Some(b'0'..=b'9')) {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.at]).expect("ascii digits");
        let kind = if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| Error::new(ErrorKind::Lex, "malformed float literal", pos))?;
            TokenKind::Float(v)
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| Error::new(ErrorKind::Lex, "integer literal out of range", pos))?;
            TokenKind::Int(v)
        };
        self.out.push(Token::new(kind, pos));
        Ok(())
    }

    fn ident(&mut self, pos: Pos) {
        let start = self.at;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.at]).expect("ascii ident");
        let kind = match text {
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "struct" => TokenKind::Struct,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "return" => TokenKind::Return,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "null" => TokenKind::Null,
            "new" => TokenKind::New,
            "print" => TokenKind::Print,
            "int" => TokenKind::TyInt,
            "float" => TokenKind::TyFloat,
            "bool" => TokenKind::TyBool,
            "as" => TokenKind::As,
            _ => TokenKind::Ident(text.to_owned()),
        };
        self.out.push(Token::new(kind, pos));
    }

    fn string(&mut self, pos: Pos) -> Result<(), Error> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return Err(self.err("unterminated string literal")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => text.push('\n'),
                    Some(b't') => text.push('\t'),
                    Some(b'"') => text.push('"'),
                    Some(b'\\') => text.push('\\'),
                    _ => return Err(self.err("unknown escape in string literal")),
                },
                Some(c) => text.push(c as char),
            }
        }
        self.out.push(Token::new(TokenKind::Str(text), pos));
        Ok(())
    }

    fn punct(&mut self, pos: Pos) -> Result<(), Error> {
        use TokenKind::*;
        let c = self.bump().expect("peeked");
        let two = |l: &mut Self, second: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == Some(second) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b',' => Comma,
            b';' => Semi,
            b':' => Colon,
            b'.' => Dot,
            b'@' => At,
            b'+' => Plus,
            b'*' => Star,
            b'/' => Slash,
            b'%' => Percent,
            b'^' => Caret,
            b'-' => two(self, b'>', Arrow, Minus),
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    EqEq
                } else if self.peek() == Some(b'>') {
                    self.bump();
                    FatArrow
                } else {
                    Assign
                }
            }
            b'!' => two(self, b'=', NotEq, Bang),
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Le
                } else if self.peek() == Some(b'<') {
                    self.bump();
                    Shl
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ge
                } else if self.peek() == Some(b'>') {
                    self.bump();
                    Shr
                } else {
                    Gt
                }
            }
            b'&' => two(self, b'&', AndAnd, Amp),
            b'|' => two(self, b'|', OrOr, Pipe),
            other => {
                return Err(Error::new(
                    ErrorKind::Lex,
                    format!("unexpected character `{}`", other as char),
                    pos,
                ))
            }
        };
        self.out.push(Token::new(kind, pos));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex failure")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("fn main while whilex"),
            vec![Fn, Ident("main".into()), While, Ident("whilex".into()), Eof]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("0 42 3.5 1e-8 2E3 7."),
            vec![
                Int(0),
                Int(42),
                Float(3.5),
                Float(1e-8),
                Float(2e3),
                Int(7),
                Dot,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("-> <= >= == != && || << >> ="),
            vec![Arrow, Le, Ge, EqEq, NotEq, AndAnd, OrOr, Shl, Shr, Assign, Eof]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("1 // comment\n 2 /* multi\nline */ 3"),
            vec![Int(1), Int(2), Int(3), Eof]
        );
    }

    #[test]
    fn tracks_positions_across_lines() {
        let toks = lex("a\n  b").expect("lex failure");
        assert_eq!(toks[0].pos, Pos::new(1, 1));
        assert_eq!(toks[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(kinds(r#""a\nb""#), vec![Str("a\nb".into()), Eof]);
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = lex("\"abc").expect_err("should fail");
        assert_eq!(err.kind(), ErrorKind::Lex);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a ? b").expect_err("should fail");
        assert_eq!(err.kind(), ErrorKind::Lex);
        assert!(err.message().contains('?'));
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(kinds("a-b a->b"), {
            vec![
                Ident("a".into()),
                Minus,
                Ident("b".into()),
                Ident("a".into()),
                Arrow,
                Ident("b".into()),
                Eof,
            ]
        });
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(lex("99999999999999999999").is_err());
    }
}
