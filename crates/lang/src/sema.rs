//! Type checker for mini-C.
//!
//! Resolves names, checks types, and produces a [`CheckedProgram`]: the AST
//! plus a [`TypeMap`] giving every expression its resolved [`Ty`] and a
//! resolved struct table. The IR lowering in `dca-ir` consumes this.
//!
//! ## Language rules enforced here
//!
//! * No implicit numeric conversions; use `as` casts.
//! * Struct values live on the heap only: variables, fields and parameters
//!   of struct type must be pointers (`*Name`).
//! * Fixed arrays (`[T; N]`) exist only as locals and globals, cannot be
//!   assigned or passed whole, and have scalar/pointer elements. Heap arrays
//!   (`new [T; n]`) are shared via their pointer.
//! * `null` coerces to any pointer type from context.
//! * `break`/`continue` must be inside a loop; loop tags must be unique
//!   within a function.

use crate::ast::*;
use crate::error::{Error, ErrorKind};
use crate::token::Pos;
use std::collections::HashMap;

/// A resolved (semantic) type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Boolean.
    Bool,
    /// No value (unit-function call used as a statement).
    Unit,
    /// Pointer to a heap object with the given element/struct type.
    Ptr(Box<Ty>),
    /// Fixed-size array (locals/globals only).
    Array(Box<Ty>, usize),
    /// A struct, by index into [`CheckedProgram::structs`].
    Struct(usize),
    /// The type of a bare `null` with no pointer context; coerces to any
    /// `Ptr`.
    NullPtr,
}

impl Ty {
    /// True for `int`, `float`, `bool` and pointers — the types that fit in
    /// one memory cell.
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Ty::Int | Ty::Float | Ty::Bool | Ty::Ptr(_) | Ty::NullPtr
        )
    }

    /// True if a value of type `self` can be supplied where `target` is
    /// expected (equality, or `null` into any pointer).
    pub fn coerces_to(&self, target: &Ty) -> bool {
        self == target || (matches!(self, Ty::NullPtr) && matches!(target, Ty::Ptr(_)))
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Float => write!(f, "float"),
            Ty::Bool => write!(f, "bool"),
            Ty::Unit => write!(f, "()"),
            Ty::Ptr(t) => write!(f, "*{t}"),
            Ty::Array(t, n) => write!(f, "[{t}; {n}]"),
            Ty::Struct(i) => write!(f, "struct#{i}"),
            Ty::NullPtr => write!(f, "*_"),
        }
    }
}

/// A resolved struct: name plus field names and types in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(String, Ty)>,
}

impl StructInfo {
    /// Index of a field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }
}

/// Signature of a function (or builtin).
#[derive(Debug, Clone, PartialEq)]
pub struct FnSig {
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type (`Ty::Unit` for none).
    pub ret: Ty,
}

/// Side table mapping every [`ExprId`] to its resolved type.
#[derive(Debug, Clone, Default)]
pub struct TypeMap {
    types: Vec<Option<Ty>>,
}

impl TypeMap {
    fn new(expr_count: u32) -> Self {
        TypeMap {
            types: vec![None; expr_count as usize],
        }
    }

    fn set(&mut self, id: ExprId, ty: Ty) {
        self.types[id.0 as usize] = Some(ty);
    }

    /// The resolved type of an expression.
    ///
    /// # Panics
    ///
    /// Panics if the expression was never checked (an internal invariant
    /// violation).
    pub fn ty(&self, id: ExprId) -> &Ty {
        self.types[id.0 as usize]
            .as_ref()
            .expect("expression was not type-checked")
    }
}

/// Output of [`check`]: the program plus all resolved type information.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    /// The (unchanged) AST.
    pub ast: Program,
    /// Expression types.
    pub types: TypeMap,
    /// Resolved structs; `Ty::Struct(i)` indexes this.
    pub structs: Vec<StructInfo>,
    /// Function signatures by name (user functions only).
    pub fn_sigs: HashMap<String, FnSig>,
}

/// Builtin math intrinsics available to programs.
///
/// All are pure (no memory access, no I/O); the IR lowers them to
/// `Intrinsic` instructions rather than calls.
pub const BUILTINS: &[(&str, &[Ty], Ty)] = &[
    ("sqrt", &[Ty::Float], Ty::Float),
    ("sin", &[Ty::Float], Ty::Float),
    ("cos", &[Ty::Float], Ty::Float),
    ("exp", &[Ty::Float], Ty::Float),
    ("log", &[Ty::Float], Ty::Float),
    ("fabs", &[Ty::Float], Ty::Float),
    ("pow", &[Ty::Float, Ty::Float], Ty::Float),
    ("fmin", &[Ty::Float, Ty::Float], Ty::Float),
    ("fmax", &[Ty::Float, Ty::Float], Ty::Float),
    ("iabs", &[Ty::Int], Ty::Int),
    ("imin", &[Ty::Int, Ty::Int], Ty::Int),
    ("imax", &[Ty::Int, Ty::Int], Ty::Int),
];

/// Type-checks a parsed program.
///
/// # Errors
///
/// Returns an [`Error`] with [`ErrorKind::Type`] on the first semantic
/// error (unknown name, type mismatch, misplaced `break`, duplicate
/// definition, ...).
pub fn check(ast: Program) -> Result<CheckedProgram, Error> {
    let mut checker = Checker::new(&ast)?;
    for f in &ast.functions {
        checker.check_fn(f)?;
    }
    Ok(CheckedProgram {
        types: checker.types,
        structs: checker.structs,
        fn_sigs: checker.fn_sigs,
        ast,
    })
}

struct Checker {
    types: TypeMap,
    structs: Vec<StructInfo>,
    struct_ids: HashMap<String, usize>,
    globals: HashMap<String, Ty>,
    fn_sigs: HashMap<String, FnSig>,
    /// Stack of lexical scopes for locals.
    scopes: Vec<HashMap<String, Ty>>,
    /// Return type of the function being checked.
    current_ret: Ty,
    loop_depth: u32,
    seen_tags: Vec<String>,
}

fn err(msg: impl Into<String>, pos: Pos) -> Error {
    Error::new(ErrorKind::Type, msg, pos)
}

impl Checker {
    fn new(ast: &Program) -> Result<Self, Error> {
        // Pass 1: struct names.
        let mut struct_ids = HashMap::new();
        for (i, s) in ast.structs.iter().enumerate() {
            if struct_ids.insert(s.name.clone(), i).is_some() {
                return Err(err(format!("duplicate struct `{}`", s.name), s.pos));
            }
        }
        let mut checker = Checker {
            types: TypeMap::new(ast.expr_count),
            structs: Vec::new(),
            struct_ids,
            globals: HashMap::new(),
            fn_sigs: HashMap::new(),
            scopes: Vec::new(),
            current_ret: Ty::Unit,
            loop_depth: 0,
            seen_tags: Vec::new(),
        };
        // Pass 2: struct fields (may reference any struct by pointer).
        for s in &ast.structs {
            let mut fields = Vec::new();
            for (fname, fty) in &s.fields {
                let ty = checker.resolve_ty(fty, s.pos)?;
                if !ty.is_scalar() {
                    return Err(err(
                        format!(
                            "field `{}.{}` must be scalar or pointer, found `{ty}`",
                            s.name, fname
                        ),
                        s.pos,
                    ));
                }
                if fields.iter().any(|(n, _)| n == fname) {
                    return Err(err(
                        format!("duplicate field `{}` in struct `{}`", fname, s.name),
                        s.pos,
                    ));
                }
                fields.push((fname.clone(), ty));
            }
            checker.structs.push(StructInfo {
                name: s.name.clone(),
                fields,
            });
        }
        // Pass 3: globals.
        for g in &ast.globals {
            let ty = checker.resolve_ty(&g.ty, g.pos)?;
            match &ty {
                Ty::Int | Ty::Float | Ty::Bool | Ty::Ptr(_) => {}
                Ty::Array(elem, _) if elem.is_scalar() => {}
                other => {
                    return Err(err(
                        format!("global `{}` has unsupported type `{other}`", g.name),
                        g.pos,
                    ))
                }
            }
            if checker.globals.insert(g.name.clone(), ty).is_some() {
                return Err(err(format!("duplicate global `{}`", g.name), g.pos));
            }
        }
        // Pass 4: function signatures.
        for f in &ast.functions {
            if BUILTINS.iter().any(|(n, _, _)| *n == f.name) {
                return Err(err(
                    format!("function `{}` shadows a builtin", f.name),
                    f.pos,
                ));
            }
            let mut params = Vec::new();
            for (pname, pty) in &f.params {
                let ty = checker.resolve_ty(pty, f.pos)?;
                if !ty.is_scalar() {
                    return Err(err(
                        format!(
                            "parameter `{pname}` of `{}` must be scalar or pointer",
                            f.name
                        ),
                        f.pos,
                    ));
                }
                params.push(ty);
            }
            let ret = match &f.ret {
                None => Ty::Unit,
                Some(t) => {
                    let ty = checker.resolve_ty(t, f.pos)?;
                    if !ty.is_scalar() {
                        return Err(err(
                            format!("return type of `{}` must be scalar or pointer", f.name),
                            f.pos,
                        ));
                    }
                    ty
                }
            };
            let sig = FnSig { params, ret };
            if checker.fn_sigs.insert(f.name.clone(), sig).is_some() {
                return Err(err(format!("duplicate function `{}`", f.name), f.pos));
            }
        }
        Ok(checker)
    }

    fn resolve_ty(&self, t: &TyAst, pos: Pos) -> Result<Ty, Error> {
        Ok(match t {
            TyAst::Int => Ty::Int,
            TyAst::Float => Ty::Float,
            TyAst::Bool => Ty::Bool,
            TyAst::Ptr(inner) => Ty::Ptr(Box::new(self.resolve_ty(inner, pos)?)),
            TyAst::Array(elem, n) => {
                let e = self.resolve_ty(elem, pos)?;
                if !e.is_scalar() {
                    return Err(err("array elements must be scalar or pointer", pos));
                }
                Ty::Array(Box::new(e), *n)
            }
            TyAst::Named(name) => match self.struct_ids.get(name) {
                Some(&i) => Ty::Struct(i),
                None => return Err(err(format!("unknown type `{name}`"), pos)),
            },
        })
    }

    fn lookup(&self, name: &str) -> Option<&Ty> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(t);
            }
        }
        self.globals.get(name)
    }

    fn declare(&mut self, name: &str, ty: Ty, pos: Pos) -> Result<(), Error> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_owned(), ty).is_some() {
            return Err(err(format!("duplicate variable `{name}` in scope"), pos));
        }
        Ok(())
    }

    fn check_fn(&mut self, f: &FnDef) -> Result<(), Error> {
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        self.seen_tags.clear();
        self.loop_depth = 0;
        for (pname, pty) in &f.params {
            let ty = self.resolve_ty(pty, f.pos)?;
            self.declare(pname, ty, f.pos)?;
        }
        self.current_ret = match &f.ret {
            None => Ty::Unit,
            Some(t) => self.resolve_ty(t, f.pos)?,
        };
        self.check_block(&f.body)?;
        self.scopes.pop();
        Ok(())
    }

    fn check_block(&mut self, body: &[Stmt]) -> Result<(), Error> {
        self.scopes.push(HashMap::new());
        for s in body {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), Error> {
        match &s.kind {
            StmtKind::Let { name, ty, init } => {
                let ty = self.resolve_ty(ty, s.pos)?;
                match &ty {
                    Ty::Int | Ty::Float | Ty::Bool | Ty::Ptr(_) => {}
                    Ty::Array(elem, _) if elem.is_scalar() => {
                        if init.is_some() {
                            return Err(err("array locals cannot have initializers", s.pos));
                        }
                    }
                    other => {
                        return Err(err(
                            format!("local `{name}` has unsupported type `{other}`"),
                            s.pos,
                        ))
                    }
                }
                if let Some(e) = init {
                    let et = self.check_expr(e, Some(&ty))?;
                    if !et.coerces_to(&ty) {
                        return Err(err(
                            format!("initializer of `{name}` has type `{et}`, expected `{ty}`"),
                            s.pos,
                        ));
                    }
                }
                self.declare(name, ty, s.pos)
            }
            StmtKind::Assign { target, value } => {
                let tt = self.check_lvalue(target)?;
                let vt = self.check_expr(value, Some(&tt))?;
                if !vt.coerces_to(&tt) {
                    return Err(err(
                        format!("cannot assign `{vt}` to lvalue of type `{tt}`"),
                        s.pos,
                    ));
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                if !matches!(e.kind, ExprKind::Call(..)) {
                    return Err(err("expression statement must be a call", s.pos));
                }
                self.check_expr(e, None)?;
                Ok(())
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.check_cond(cond)?;
                self.check_block(then_body)?;
                self.check_block(else_body)
            }
            StmtKind::While { tag, cond, body } => {
                self.note_tag(tag, s.pos)?;
                self.check_cond(cond)?;
                self.loop_depth += 1;
                let r = self.check_block(body);
                self.loop_depth -= 1;
                r
            }
            StmtKind::For {
                tag,
                init,
                cond,
                step,
                body,
            } => {
                self.note_tag(tag, s.pos)?;
                // The induction variable's scope covers cond/step/body.
                self.scopes.push(HashMap::new());
                self.check_stmt(init)?;
                self.check_cond(cond)?;
                self.loop_depth += 1;
                let r = self.check_stmt(step).and_then(|()| self.check_block(body));
                self.loop_depth -= 1;
                self.scopes.pop();
                r
            }
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(err("`break`/`continue` outside of a loop", s.pos));
                }
                Ok(())
            }
            StmtKind::Return(value) => match (value, &self.current_ret) {
                (None, Ty::Unit) => Ok(()),
                (None, other) => Err(err(
                    format!("missing return value of type `{other}`"),
                    s.pos,
                )),
                (Some(_), Ty::Unit) => Err(err("returning a value from a unit function", s.pos)),
                (Some(e), ret) => {
                    let ret = ret.clone();
                    let t = self.check_expr(e, Some(&ret))?;
                    if !t.coerces_to(&ret) {
                        return Err(err(
                            format!("return type `{t}` does not match `{ret}`"),
                            s.pos,
                        ));
                    }
                    Ok(())
                }
            },
            StmtKind::Print(args) => {
                for a in args {
                    if let PrintArg::Value(e) = a {
                        let t = self.check_expr(e, None)?;
                        if !matches!(t, Ty::Int | Ty::Float | Ty::Bool) {
                            return Err(err(format!("cannot print value of type `{t}`"), s.pos));
                        }
                    }
                }
                Ok(())
            }
            StmtKind::Block(body) => self.check_block(body),
        }
    }

    fn note_tag(&mut self, tag: &Option<String>, pos: Pos) -> Result<(), Error> {
        if let Some(t) = tag {
            if self.seen_tags.contains(t) {
                return Err(err(format!("duplicate loop tag `@{t}`"), pos));
            }
            self.seen_tags.push(t.clone());
        }
        Ok(())
    }

    fn check_cond(&mut self, e: &Expr) -> Result<(), Error> {
        let t = self.check_expr(e, Some(&Ty::Bool))?;
        if t != Ty::Bool {
            return Err(err(format!("condition must be `bool`, found `{t}`"), e.pos));
        }
        Ok(())
    }

    fn check_lvalue(&mut self, e: &Expr) -> Result<Ty, Error> {
        match &e.kind {
            ExprKind::Var(_) | ExprKind::Index(..) | ExprKind::Field(..) => {
                let t = self.check_expr(e, None)?;
                if let Ty::Array(..) = t {
                    return Err(err("cannot assign to a whole array", e.pos));
                }
                Ok(t)
            }
            _ => Err(err("invalid assignment target", e.pos)),
        }
    }

    fn check_expr(&mut self, e: &Expr, expected: Option<&Ty>) -> Result<Ty, Error> {
        let ty = self.expr_ty(e, expected)?;
        self.types.set(e.id, ty.clone());
        Ok(ty)
    }

    fn expr_ty(&mut self, e: &Expr, expected: Option<&Ty>) -> Result<Ty, Error> {
        match &e.kind {
            ExprKind::IntLit(_) => Ok(Ty::Int),
            ExprKind::FloatLit(_) => Ok(Ty::Float),
            ExprKind::BoolLit(_) => Ok(Ty::Bool),
            ExprKind::NullLit => match expected {
                Some(t @ Ty::Ptr(_)) => Ok(t.clone()),
                _ => Ok(Ty::NullPtr),
            },
            ExprKind::Var(name) => match self.lookup(name) {
                Some(t) => Ok(t.clone()),
                None => Err(err(format!("unknown variable `{name}`"), e.pos)),
            },
            ExprKind::Unary(op, a) => {
                let t = self.check_expr(a, None)?;
                match (op, &t) {
                    (UnOp::Neg, Ty::Int) | (UnOp::Neg, Ty::Float) => Ok(t),
                    (UnOp::Not, Ty::Bool) => Ok(Ty::Bool),
                    _ => Err(err(format!("cannot apply `{op}` to `{t}`"), e.pos)),
                }
            }
            ExprKind::Binary(op, a, b) => self.binary_ty(*op, a, b, e.pos),
            ExprKind::Index(base, idx) => {
                let bt = self.check_expr(base, None)?;
                let it = self.check_expr(idx, None)?;
                if it != Ty::Int {
                    return Err(err(format!("index must be `int`, found `{it}`"), e.pos));
                }
                match bt {
                    Ty::Array(elem, _) => Ok(*elem),
                    Ty::Ptr(elem) if elem.is_scalar() => Ok(*elem),
                    other => Err(err(format!("cannot index into `{other}`"), e.pos)),
                }
            }
            ExprKind::Field(base, fname) => {
                let bt = self.check_expr(base, None)?;
                let sid = match bt {
                    Ty::Ptr(inner) => match *inner {
                        Ty::Struct(i) => i,
                        other => {
                            return Err(err(
                                format!("field access on non-struct pointer `*{other}`"),
                                e.pos,
                            ))
                        }
                    },
                    other => {
                        return Err(err(
                            format!("field access requires a struct pointer, found `{other}`"),
                            e.pos,
                        ))
                    }
                };
                match self.structs[sid].fields.iter().find(|(n, _)| n == fname) {
                    Some((_, t)) => Ok(t.clone()),
                    None => Err(err(
                        format!("struct `{}` has no field `{fname}`", self.structs[sid].name),
                        e.pos,
                    )),
                }
            }
            ExprKind::Call(name, args) => {
                if let Some((_, ptys, ret)) = BUILTINS.iter().find(|(n, _, _)| n == name) {
                    if args.len() != ptys.len() {
                        return Err(err(
                            format!("builtin `{name}` expects {} arguments", ptys.len()),
                            e.pos,
                        ));
                    }
                    for (a, pt) in args.iter().zip(ptys.iter()) {
                        let at = self.check_expr(a, Some(pt))?;
                        if !at.coerces_to(pt) {
                            return Err(err(
                                format!("argument of `{name}` has type `{at}`, expected `{pt}`"),
                                a.pos,
                            ));
                        }
                    }
                    return Ok(ret.clone());
                }
                let sig = match self.fn_sigs.get(name) {
                    Some(s) => s.clone(),
                    None => return Err(err(format!("unknown function `{name}`"), e.pos)),
                };
                if args.len() != sig.params.len() {
                    return Err(err(
                        format!(
                            "`{name}` expects {} arguments, found {}",
                            sig.params.len(),
                            args.len()
                        ),
                        e.pos,
                    ));
                }
                for (a, pt) in args.iter().zip(sig.params.iter()) {
                    let at = self.check_expr(a, Some(pt))?;
                    if !at.coerces_to(pt) {
                        return Err(err(
                            format!("argument of `{name}` has type `{at}`, expected `{pt}`"),
                            a.pos,
                        ));
                    }
                }
                Ok(sig.ret)
            }
            ExprKind::NewStruct(name) => match self.struct_ids.get(name) {
                Some(&i) => Ok(Ty::Ptr(Box::new(Ty::Struct(i)))),
                None => Err(err(format!("unknown struct `{name}`"), e.pos)),
            },
            ExprKind::NewArray(elem, len) => {
                let et = self.resolve_ty(elem, e.pos)?;
                if !et.is_scalar() {
                    return Err(err("heap array elements must be scalar or pointer", e.pos));
                }
                let lt = self.check_expr(len, None)?;
                if lt != Ty::Int {
                    return Err(err(
                        format!("array length must be `int`, found `{lt}`"),
                        e.pos,
                    ));
                }
                Ok(Ty::Ptr(Box::new(et)))
            }
            ExprKind::Cast(inner, to) => {
                let to = self.resolve_ty(to, e.pos)?;
                let from = self.check_expr(inner, None)?;
                match (&from, &to) {
                    (Ty::Int, Ty::Float)
                    | (Ty::Float, Ty::Int)
                    | (Ty::Int, Ty::Int)
                    | (Ty::Float, Ty::Float) => Ok(to),
                    _ => Err(err(format!("cannot cast `{from}` to `{to}`"), e.pos)),
                }
            }
        }
    }

    fn binary_ty(&mut self, op: BinOp, a: &Expr, b: &Expr, pos: Pos) -> Result<Ty, Error> {
        use BinOp::*;
        let at = self.check_expr(a, None)?;
        // Let `p == null` see the pointer type from the left side.
        let bt = self.check_expr(b, Some(&at))?;
        match op {
            Add | Sub | Mul | Div => match (&at, &bt) {
                (Ty::Int, Ty::Int) => Ok(Ty::Int),
                (Ty::Float, Ty::Float) => Ok(Ty::Float),
                _ => Err(err(
                    format!("cannot apply `{op}` to `{at}` and `{bt}`"),
                    pos,
                )),
            },
            Rem | BitAnd | BitOr | BitXor | Shl | Shr => {
                if at == Ty::Int && bt == Ty::Int {
                    Ok(Ty::Int)
                } else {
                    Err(err(
                        format!("`{op}` requires `int` operands, found `{at}` and `{bt}`"),
                        pos,
                    ))
                }
            }
            Lt | Le | Gt | Ge => match (&at, &bt) {
                (Ty::Int, Ty::Int) | (Ty::Float, Ty::Float) => Ok(Ty::Bool),
                _ => Err(err(
                    format!("cannot compare `{at}` and `{bt}` with `{op}`"),
                    pos,
                )),
            },
            Eq | Ne => {
                let ok = matches!(
                    (&at, &bt),
                    (Ty::Int, Ty::Int)
                        | (Ty::Float, Ty::Float)
                        | (Ty::Bool, Ty::Bool)
                        | (Ty::Ptr(_), Ty::Ptr(_))
                        | (Ty::Ptr(_), Ty::NullPtr)
                        | (Ty::NullPtr, Ty::Ptr(_))
                        | (Ty::NullPtr, Ty::NullPtr)
                ) && (!matches!((&at, &bt), (Ty::Ptr(x), Ty::Ptr(y)) if x != y));
                if ok {
                    Ok(Ty::Bool)
                } else {
                    Err(err(
                        format!("cannot compare `{at}` and `{bt}` for equality"),
                        pos,
                    ))
                }
            }
            And | Or => {
                if at == Ty::Bool && bt == Ty::Bool {
                    Ok(Ty::Bool)
                } else {
                    Err(err(
                        format!("`{op}` requires `bool` operands, found `{at}` and `{bt}`"),
                        pos,
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lex, parse};

    fn check_src(src: &str) -> Result<CheckedProgram, Error> {
        check(parse(&lex(src).expect("lex")).expect("parse"))
    }

    fn ok(src: &str) -> CheckedProgram {
        check_src(src).expect("should type-check")
    }

    fn fails(src: &str) -> Error {
        let e = check_src(src).expect_err("should fail to type-check");
        assert_eq!(e.kind(), ErrorKind::Type);
        e
    }

    #[test]
    fn simple_function_checks() {
        ok("fn main() -> int { let x: int = 1; return x + 2; }");
    }

    #[test]
    fn no_implicit_numeric_conversion() {
        let e = fails("fn main() -> float { return 1; }");
        assert!(e.message().contains("return type"));
        fails("fn main() -> int { let x: float = 0.0; return 1 + x; }");
        ok("fn main() -> float { let x: int = 3; return x as float * 2.0; }");
    }

    #[test]
    fn struct_and_field_access() {
        ok("struct Node { val: int, next: *Node }\n\
             fn main() -> int { let p: *Node = new Node; p.val = 3; \
             p.next = null; return p.val; }");
        let e = fails(
            "struct Node { val: int }\n\
             fn main() -> int { let p: *Node = new Node; return p.bad; }",
        );
        assert!(e.message().contains("no field"));
    }

    #[test]
    fn null_coerces_to_pointer_contexts() {
        ok("struct N { next: *N }\n\
             fn take(p: *N) { }\n\
             fn main() { let p: *N = null; take(null); \
             if (p == null) { } while (p != null) { p = p.next; } }");
    }

    #[test]
    fn index_rules() {
        ok("fn main() -> int { let a: [int; 4]; a[0] = 1; return a[0]; }");
        ok("fn main() -> int { let a: *int = new [int; 10]; a[5] = 2; return a[5]; }");
        fails("fn main() -> int { let a: [int; 4]; return a[1.0 as int + a[0.5]]; }");
        let e = fails("fn main() -> int { let x: int = 3; return x[0]; }");
        assert!(e.message().contains("cannot index"));
    }

    #[test]
    fn whole_array_assignment_rejected() {
        let e = fails("fn main() { let a: [int; 2]; let b: [int; 2]; a = b; }");
        assert!(e.message().contains("whole array"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        fails("fn main() { break; }");
        ok("fn main() { while (true) { break; } }");
    }

    #[test]
    fn duplicate_loop_tags_rejected() {
        fails("fn main() { @a: while (false) { } @a: while (false) { } }");
    }

    #[test]
    fn condition_must_be_bool() {
        let e = fails("fn main() { while (1) { } }");
        assert!(e.message().contains("bool"));
    }

    #[test]
    fn builtins_check() {
        ok("fn main() -> float { return sqrt(2.0) + pow(2.0, 10.0); }");
        fails("fn main() -> float { return sqrt(2); }");
        fails("fn sqrt(x: float) -> float { return x; }");
    }

    #[test]
    fn call_arity_and_types() {
        let e = fails("fn f(x: int) -> int { return x; } fn main() { f(1, 2); }");
        assert!(e.message().contains("expects 1 arguments"));
        fails("fn f(x: int) -> int { return x; } fn main() { f(1.5); }");
    }

    #[test]
    fn expression_types_recorded() {
        let p = ok("fn main() -> int { return 1 + 2; }");
        // Every expression in this tiny program got a type.
        let mut found_int = 0;
        for id in 0..p.ast.expr_count {
            if *p.types.ty(ExprId(id)) == Ty::Int {
                found_int += 1;
            }
        }
        assert_eq!(found_int, 3); // 1, 2, and 1+2
    }

    #[test]
    fn shadowing_in_nested_scope_allowed() {
        ok("fn main() { let x: int = 1; { let x: float = 2.0; x = x + 1.0; } x = x + 1; }");
        fails("fn main() { let x: int = 1; let x: int = 2; }");
    }

    #[test]
    fn for_scope_covers_header_and_body() {
        ok("fn main() -> int { let s: int = 0; \
            for (let i: int = 0; i < 3; i = i + 1) { s = s + i; } return s; }");
        // `i` does not leak out of the for.
        fails("fn main() -> int { for (let i: int = 0; i < 3; i = i + 1) { } return i; }");
    }

    #[test]
    fn unit_calls_only_as_statements() {
        ok("fn go() { } fn main() { go(); }");
        fails("fn go() { } fn main() { let x: int = go(); }");
    }

    #[test]
    fn print_rules() {
        ok(r#"fn main() { print("x", 1, 2.0, true); }"#);
        fails(r#"struct N { v: int } fn main() { let p: *N = new N; print(p); }"#);
    }

    #[test]
    fn pointer_equality_requires_same_pointee() {
        fails(
            "struct A { v: int } struct B { v: int } \
             fn main() { let a: *A = new A; let b: *B = new B; if (a == b) { } }",
        );
    }

    #[test]
    fn heap_array_of_pointers() {
        ok("struct N { v: int }\n\
             fn main() { let a: **N = new [*N; 8]; a[0] = new N; a[0].v = 1; }");
    }
}
