//! Abstract syntax tree for mini-C.
//!
//! Every expression carries a unique [`ExprId`] assigned by the parser; the
//! type checker publishes a side table mapping ids to resolved types
//! (see [`crate::sema::TypeMap`]), which the IR lowering consults.

use crate::token::Pos;
use std::fmt;

/// Unique id of an expression node within one [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(pub u32);

/// A syntactic type annotation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TyAst {
    /// `int` — 64-bit signed integer.
    Int,
    /// `float` — 64-bit IEEE float.
    Float,
    /// `bool`.
    Bool,
    /// `*T` — pointer to a heap object (struct or heap array).
    Ptr(Box<TyAst>),
    /// `[T; N]` — fixed-size array (locals and globals only).
    Array(Box<TyAst>, usize),
    /// A named struct type. Struct values live on the heap and are always
    /// manipulated through `*Name` pointers; a bare struct type is only legal
    /// under `Ptr` or in `new`.
    Named(String),
}

impl fmt::Display for TyAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TyAst::Int => write!(f, "int"),
            TyAst::Float => write!(f, "float"),
            TyAst::Bool => write!(f, "bool"),
            TyAst::Ptr(t) => write!(f, "*{t}"),
            TyAst::Array(t, n) => write!(f, "[{t}; {n}]"),
            TyAst::Named(n) => write!(f, "{n}"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
    /// `&` (integers)
    BitAnd,
    /// `|` (integers)
    BitOr,
    /// `^` (integers)
    BitXor,
    /// `<<` (integers)
    Shl,
    /// `>>` (integers, arithmetic)
    Shr,
}

impl BinOp {
    /// True for `==`, `!=`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for the short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean not.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
        }
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique id (used by the type side table).
    pub id: ExprId,
    /// Source position.
    pub pos: Pos,
    /// The expression itself.
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// `true` / `false`.
    BoolLit(bool),
    /// `null` pointer literal.
    NullLit,
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation (including short-circuit `&&`/`||`).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `base[index]` on a fixed array or heap-array pointer.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` / `base->field` on a struct pointer.
    Field(Box<Expr>, String),
    /// Function call `f(args...)`; may resolve to a builtin intrinsic.
    Call(String, Vec<Expr>),
    /// `new Name` — heap-allocate a zeroed struct, yields `*Name`.
    NewStruct(String),
    /// `new [T; len]` — heap-allocate a zeroed array of dynamic length,
    /// yields `*T`.
    NewArray(TyAst, Box<Expr>),
    /// `expr as T` numeric cast (int ↔ float).
    Cast(Box<Expr>, TyAst),
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Source position.
    pub pos: Pos,
    /// The statement itself.
    pub kind: StmtKind,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let name: ty = init;` — locals are zero-initialized if `init` is
    /// absent.
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: TyAst,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `lvalue = expr;`
    Assign {
        /// Target lvalue (variable, index or field expression).
        target: Expr,
        /// Value to store.
        value: Expr,
    },
    /// Bare expression statement (must be a call).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition (bool).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`, optionally tagged `@name: while ...`.
    While {
        /// Optional loop tag used by expert annotations and reports.
        tag: Option<String>,
        /// Condition (bool).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { .. }`, optionally tagged.
    For {
        /// Optional loop tag.
        tag: Option<String>,
        /// Init statement (let or assign), runs once.
        init: Box<Stmt>,
        /// Condition (bool), checked before each iteration.
        cond: Expr,
        /// Step statement (assign or expr), runs after each iteration.
        step: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break;` out of the innermost loop.
    Break,
    /// `continue;` to the innermost loop's step/condition.
    Continue,
    /// `return expr?;`
    Return(Option<Expr>),
    /// `print(args...);` — observable output; marks the containing loop as
    /// having I/O, which excludes it from DCA candidacy (paper §IV-E).
    /// String-literal arguments label output; other arguments are evaluated.
    Print(Vec<PrintArg>),
    /// A nested block `{ .. }` introducing a scope.
    Block(Vec<Stmt>),
}

/// One argument of a `print` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PrintArg {
    /// A literal label, not evaluated.
    Label(String),
    /// An expression whose value is printed.
    Value(Expr),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Field names and types, in declaration order.
    pub fields: Vec<(String, TyAst)>,
    /// Source position.
    pub pos: Pos,
}

/// A global variable definition. Globals are zero-initialized; scalar
/// globals may carry a constant initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Global name.
    pub name: String,
    /// Declared type (scalar or fixed array).
    pub ty: TyAst,
    /// Optional constant initializer (scalars only).
    pub init: Option<Expr>,
    /// Source position.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, TyAst)>,
    /// Return type; `None` for unit functions.
    pub ret: Option<TyAst>,
    /// Function body.
    pub body: Vec<Stmt>,
    /// Source position.
    pub pos: Pos,
}

/// A whole parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Global definitions.
    pub globals: Vec<GlobalDef>,
    /// Function definitions.
    pub functions: Vec<FnDef>,
    /// Number of expression ids allocated (ids are `0..expr_count`).
    pub expr_count: u32,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&FnDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_display() {
        let t = TyAst::Ptr(Box::new(TyAst::Named("Node".into())));
        assert_eq!(t.to_string(), "*Node");
        let a = TyAst::Array(Box::new(TyAst::Float), 8);
        assert_eq!(a.to_string(), "[float; 8]");
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }

    #[test]
    fn program_lookup() {
        let mut p = Program::default();
        p.functions.push(FnDef {
            name: "main".into(),
            params: vec![],
            ret: None,
            body: vec![],
            pos: Pos::default(),
        });
        assert!(p.function("main").is_some());
        assert!(p.function("other").is_none());
        assert!(p.struct_def("Node").is_none());
    }
}
