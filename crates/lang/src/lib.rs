//! Mini-C frontend for the DCA reproduction.
//!
//! The paper's prototype analyzes C programs lowered to LLVM IR. This crate
//! provides the equivalent substrate: a small, deterministic C-like language
//! ("mini-C") rich enough to express both the regular array-based NAS kernels
//! and the irregular pointer-linked data structure (PLDS) programs of the
//! paper's evaluation — structs, pointers, heap allocation, fixed arrays,
//! loops with `break`/`continue`, functions, and a `print` statement that
//! doubles as the observable-I/O marker DCA uses to exclude loops.
//!
//! The pipeline is [`lex`] → [`parse`] → [`check`], usually driven through
//! the one-shot [`frontend`] helper:
//!
//! ```
//! let program = dca_lang::frontend(
//!     "fn main() -> int { let x: int = 2; return x * 21; }",
//! )?;
//! assert_eq!(program.ast.functions.len(), 1);
//! # Ok::<(), dca_lang::Error>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use ast::Program;
pub use error::{Error, ErrorKind};
pub use lexer::lex;
pub use parser::parse;
pub use sema::{check, CheckedProgram, TypeMap};

/// Runs the full frontend: lex, parse and type-check `source`.
///
/// Returns the checked program (AST plus expression-type table), ready to be
/// lowered to IR by `dca-ir`.
///
/// # Errors
///
/// Returns the first lexical, syntactic or type error encountered, with a
/// line/column position into `source`.
pub fn frontend(source: &str) -> Result<CheckedProgram, Error> {
    let tokens = lex(source)?;
    let ast = parse(&tokens)?;
    check(ast)
}
