//! Token definitions for the mini-C lexer.

use std::fmt;

/// A source position, 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position from 1-based line and column numbers.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Floating point literal, e.g. `3.5` or `1e-8`.
    Float(f64),
    /// Identifier, e.g. `frontier`.
    Ident(String),
    /// String literal (only used by `print`), e.g. `"dist"`.
    Str(String),

    // Keywords.
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `struct`
    Struct,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `new`
    New,
    /// `print`
    Print,
    /// `int`
    TyInt,
    /// `float`
    TyFloat,
    /// `bool`
    TyBool,
    /// `as`
    As,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `->` (field access through a pointer; alias for `.`)
    Arrow,
    /// `=>` unused, reserved
    FatArrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `@` (loop tag marker)
    At,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(v) => write!(f, "{v}"),
            Float(v) => write!(f, "{v}"),
            Ident(s) => write!(f, "{s}"),
            Str(s) => write!(f, "{s:?}"),
            Fn => write!(f, "fn"),
            Let => write!(f, "let"),
            Struct => write!(f, "struct"),
            If => write!(f, "if"),
            Else => write!(f, "else"),
            While => write!(f, "while"),
            For => write!(f, "for"),
            Break => write!(f, "break"),
            Continue => write!(f, "continue"),
            Return => write!(f, "return"),
            True => write!(f, "true"),
            False => write!(f, "false"),
            Null => write!(f, "null"),
            New => write!(f, "new"),
            Print => write!(f, "print"),
            TyInt => write!(f, "int"),
            TyFloat => write!(f, "float"),
            TyBool => write!(f, "bool"),
            As => write!(f, "as"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            Comma => write!(f, ","),
            Semi => write!(f, ";"),
            Colon => write!(f, ":"),
            Dot => write!(f, "."),
            Arrow => write!(f, "->"),
            FatArrow => write!(f, "=>"),
            Assign => write!(f, "="),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            EqEq => write!(f, "=="),
            NotEq => write!(f, "!="),
            Lt => write!(f, "<"),
            Le => write!(f, "<="),
            Gt => write!(f, ">"),
            Ge => write!(f, ">="),
            AndAnd => write!(f, "&&"),
            OrOr => write!(f, "||"),
            Bang => write!(f, "!"),
            Amp => write!(f, "&"),
            Pipe => write!(f, "|"),
            Caret => write!(f, "^"),
            Shl => write!(f, "<<"),
            Shr => write!(f, ">>"),
            At => write!(f, "@"),
            Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts in the source.
    pub pos: Pos,
}

impl Token {
    /// Creates a token at a position.
    pub fn new(kind: TokenKind, pos: Pos) -> Self {
        Token { kind, pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display() {
        assert_eq!(Pos::new(3, 7).to_string(), "3:7");
    }

    #[test]
    fn token_kind_display_round_trip_punctuation() {
        for (k, s) in [
            (TokenKind::Arrow, "->"),
            (TokenKind::Le, "<="),
            (TokenKind::AndAnd, "&&"),
            (TokenKind::Shl, "<<"),
        ] {
            assert_eq!(k.to_string(), s);
        }
    }

    #[test]
    fn pos_ordering_is_line_major() {
        assert!(Pos::new(1, 9) < Pos::new(2, 1));
        assert!(Pos::new(2, 1) < Pos::new(2, 2));
    }
}
