//! Recursive-descent parser for mini-C.
//!
//! Operator precedence follows C (with Rust-style `as` casts binding tighter
//! than any binary operator). Loops may be tagged `@name:` so that expert
//! annotations and reports can refer to them stably.

use crate::ast::*;
use crate::error::{Error, ErrorKind};
use crate::token::{Pos, Token, TokenKind};

/// Parses a token stream (as produced by [`crate::lex`]) into a [`Program`].
///
/// # Errors
///
/// Returns a [`Error`] with [`ErrorKind::Parse`] on the first syntax error.
pub fn parse(tokens: &[Token]) -> Result<Program, Error> {
    Parser {
        tokens,
        at: 0,
        next_expr: 0,
        depth: 0,
    }
    .program()
}

/// Zero-sized token proving `enter` succeeded (forces paired `leave`).
struct DepthGuard;

/// Maximum nesting depth of expressions, statements and types. The parser
/// is recursive-descent; without a bound, adversarial input like ten
/// thousand `(`s overflows the stack instead of reporting an error. The
/// bound is conservative because debug-build frames are large: ~13 frames
/// per nesting level must fit a 2 MiB test-thread stack.
const MAX_DEPTH: u32 = 96;

struct Parser<'a> {
    tokens: &'a [Token],
    at: usize,
    next_expr: u32,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.at.min(self.tokens.len() - 1)].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at.min(self.tokens.len() - 1)].pos
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.peek().clone();
        if self.at < self.tokens.len() - 1 {
            self.at += 1;
        }
        k
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: &TokenKind) -> Result<(), Error> {
        if self.eat(k) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{k}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::new(ErrorKind::Parse, msg, self.pos())
    }

    fn fresh(&mut self) -> ExprId {
        let id = ExprId(self.next_expr);
        self.next_expr += 1;
        id
    }

    fn enter(&mut self) -> Result<DepthGuard, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(self.err("nesting too deep"));
        }
        Ok(DepthGuard)
    }

    fn leave(&mut self, _guard: DepthGuard) {
        self.depth -= 1;
    }

    fn ident(&mut self) -> Result<String, Error> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    // ---- items ----------------------------------------------------------

    fn program(mut self) -> Result<Program, Error> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Struct => prog.structs.push(self.struct_def()?),
                TokenKind::Let => prog.globals.push(self.global_def()?),
                TokenKind::Fn => prog.functions.push(self.fn_def()?),
                other => return Err(self.err(format!("expected item, found `{other}`"))),
            }
        }
        prog.expr_count = self.next_expr;
        Ok(prog)
    }

    fn struct_def(&mut self) -> Result<StructDef, Error> {
        let pos = self.pos();
        self.expect(&TokenKind::Struct)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let fname = self.ident()?;
            self.expect(&TokenKind::Colon)?;
            let fty = self.ty()?;
            fields.push((fname, fty));
            if !self.eat(&TokenKind::Comma) {
                self.expect(&TokenKind::RBrace)?;
                break;
            }
        }
        Ok(StructDef { name, fields, pos })
    }

    fn global_def(&mut self) -> Result<GlobalDef, Error> {
        let pos = self.pos();
        self.expect(&TokenKind::Let)?;
        let name = self.ident()?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.ty()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(GlobalDef {
            name,
            ty,
            init,
            pos,
        })
    }

    fn fn_def(&mut self) -> Result<FnDef, Error> {
        let pos = self.pos();
        self.expect(&TokenKind::Fn)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        while !self.eat(&TokenKind::RParen) {
            let pname = self.ident()?;
            self.expect(&TokenKind::Colon)?;
            let pty = self.ty()?;
            params.push((pname, pty));
            if !self.eat(&TokenKind::Comma) {
                self.expect(&TokenKind::RParen)?;
                break;
            }
        }
        let ret = if self.eat(&TokenKind::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            ret,
            body,
            pos,
        })
    }

    fn ty(&mut self) -> Result<TyAst, Error> {
        let g = self.enter()?;
        let r = self.ty_inner();
        self.leave(g);
        r
    }

    fn ty_inner(&mut self) -> Result<TyAst, Error> {
        match self.peek().clone() {
            TokenKind::TyInt => {
                self.bump();
                Ok(TyAst::Int)
            }
            TokenKind::TyFloat => {
                self.bump();
                Ok(TyAst::Float)
            }
            TokenKind::TyBool => {
                self.bump();
                Ok(TyAst::Bool)
            }
            TokenKind::Star => {
                self.bump();
                Ok(TyAst::Ptr(Box::new(self.ty()?)))
            }
            TokenKind::LBracket => {
                self.bump();
                let elem = self.ty()?;
                self.expect(&TokenKind::Semi)?;
                let n = match self.bump() {
                    TokenKind::Int(n) if n >= 0 => n as usize,
                    other => {
                        return Err(self.err(format!("expected array length, found `{other}`")))
                    }
                };
                self.expect(&TokenKind::RBracket)?;
                Ok(TyAst::Array(Box::new(elem), n))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(TyAst::Named(name))
            }
            other => Err(self.err(format!("expected type, found `{other}`"))),
        }
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, Error> {
        self.expect(&TokenKind::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, Error> {
        let g = self.enter()?;
        let r = self.stmt_inner();
        self.leave(g);
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, Error> {
        let pos = self.pos();
        match self.peek().clone() {
            TokenKind::At => {
                self.bump();
                let tag = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                match self.peek() {
                    TokenKind::While => self.while_stmt(Some(tag)),
                    TokenKind::For => self.for_stmt(Some(tag)),
                    other => Err(self.err(format!(
                        "loop tag must precede `while` or `for`, found `{other}`"
                    ))),
                }
            }
            TokenKind::Let => {
                self.bump();
                let name = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.ty()?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Let { name, ty, init },
                })
            }
            TokenKind::If => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.eat(&TokenKind::Else) {
                    if *self.peek() == TokenKind::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt {
                    pos,
                    kind: StmtKind::If {
                        cond,
                        then_body,
                        else_body,
                    },
                })
            }
            TokenKind::While => self.while_stmt(None),
            TokenKind::For => self.for_stmt(None),
            TokenKind::Break => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Break,
                })
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Continue,
                })
            }
            TokenKind::Return => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Return(value),
                })
            }
            TokenKind::Print => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut args = Vec::new();
                while !self.eat(&TokenKind::RParen) {
                    if let TokenKind::Str(s) = self.peek().clone() {
                        self.bump();
                        args.push(PrintArg::Label(s));
                    } else {
                        args.push(PrintArg::Value(self.expr()?));
                    }
                    if !self.eat(&TokenKind::Comma) {
                        self.expect(&TokenKind::RParen)?;
                        break;
                    }
                }
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Print(args),
                })
            }
            TokenKind::LBrace => {
                let body = self.block()?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Block(body),
                })
            }
            _ => self.assign_or_expr_stmt(),
        }
    }

    fn while_stmt(&mut self, tag: Option<String>) -> Result<Stmt, Error> {
        let pos = self.pos();
        self.expect(&TokenKind::While)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt {
            pos,
            kind: StmtKind::While { tag, cond, body },
        })
    }

    fn for_stmt(&mut self, tag: Option<String>) -> Result<Stmt, Error> {
        let pos = self.pos();
        self.expect(&TokenKind::For)?;
        self.expect(&TokenKind::LParen)?;
        // `init` ends with the `;` consumed by the sub-statement parse.
        let init = if *self.peek() == TokenKind::Let {
            Box::new(self.stmt()?)
        } else {
            Box::new(self.assign_or_expr_stmt()?)
        };
        let cond = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        // `step` has no trailing `;` before the `)`.
        let step = Box::new(self.assign_no_semi()?);
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt {
            pos,
            kind: StmtKind::For {
                tag,
                init,
                cond,
                step,
                body,
            },
        })
    }

    fn assign_or_expr_stmt(&mut self) -> Result<Stmt, Error> {
        let stmt = self.assign_no_semi()?;
        self.expect(&TokenKind::Semi)?;
        Ok(stmt)
    }

    fn assign_no_semi(&mut self) -> Result<Stmt, Error> {
        let pos = self.pos();
        let first = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let value = self.expr()?;
            Ok(Stmt {
                pos,
                kind: StmtKind::Assign {
                    target: first,
                    value,
                },
            })
        } else {
            Ok(Stmt {
                pos,
                kind: StmtKind::Expr(first),
            })
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, Error> {
        let g = self.enter()?;
        let r = self.binary(0);
        self.leave(g);
        r
    }

    /// Binary precedence levels, loosest (0) to tightest.
    fn level_op(&self, level: u8) -> Option<BinOp> {
        use BinOp::*;
        use TokenKind as T;
        let op = match (level, self.peek()) {
            (0, T::OrOr) => Or,
            (1, T::AndAnd) => And,
            (2, T::Pipe) => BitOr,
            (3, T::Caret) => BitXor,
            (4, T::Amp) => BitAnd,
            (5, T::EqEq) => Eq,
            (5, T::NotEq) => Ne,
            (6, T::Lt) => Lt,
            (6, T::Le) => Le,
            (6, T::Gt) => Gt,
            (6, T::Ge) => Ge,
            (7, T::Shl) => Shl,
            (7, T::Shr) => Shr,
            (8, T::Plus) => Add,
            (8, T::Minus) => Sub,
            (9, T::Star) => Mul,
            (9, T::Slash) => Div,
            (9, T::Percent) => Rem,
            _ => return None,
        };
        Some(op)
    }

    fn binary(&mut self, level: u8) -> Result<Expr, Error> {
        if level > 9 {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        while let Some(op) = self.level_op(level) {
            let pos = self.pos();
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr {
                id: self.fresh(),
                pos,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Error> {
        let pos = self.pos();
        if self.eat(&TokenKind::Minus) {
            let e = self.unary()?;
            return Ok(Expr {
                id: self.fresh(),
                pos,
                kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
            });
        }
        if self.eat(&TokenKind::Bang) {
            let e = self.unary()?;
            return Ok(Expr {
                id: self.fresh(),
                pos,
                kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, Error> {
        let mut e = self.primary()?;
        loop {
            let pos = self.pos();
            if self.eat(&TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(&TokenKind::RBracket)?;
                e = Expr {
                    id: self.fresh(),
                    pos,
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                };
            } else if self.eat(&TokenKind::Dot) || self.eat(&TokenKind::Arrow) {
                let name = self.ident()?;
                e = Expr {
                    id: self.fresh(),
                    pos,
                    kind: ExprKind::Field(Box::new(e), name),
                };
            } else if self.eat(&TokenKind::As) {
                let ty = self.ty()?;
                e = Expr {
                    id: self.fresh(),
                    pos,
                    kind: ExprKind::Cast(Box::new(e), ty),
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, Error> {
        let pos = self.pos();
        let id = self.fresh();
        let kind = match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                ExprKind::IntLit(v)
            }
            TokenKind::Float(v) => {
                self.bump();
                ExprKind::FloatLit(v)
            }
            TokenKind::True => {
                self.bump();
                ExprKind::BoolLit(true)
            }
            TokenKind::False => {
                self.bump();
                ExprKind::BoolLit(false)
            }
            TokenKind::Null => {
                self.bump();
                ExprKind::NullLit
            }
            TokenKind::New => {
                self.bump();
                if self.eat(&TokenKind::LBracket) {
                    let elem = self.ty()?;
                    self.expect(&TokenKind::Semi)?;
                    let len = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    ExprKind::NewArray(elem, Box::new(len))
                } else {
                    let name = self.ident()?;
                    ExprKind::NewStruct(name)
                }
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(inner);
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    while !self.eat(&TokenKind::RParen) {
                        args.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            self.expect(&TokenKind::RParen)?;
                            break;
                        }
                    }
                    ExprKind::Call(name, args)
                } else {
                    ExprKind::Var(name)
                }
            }
            other => return Err(self.err(format!("expected expression, found `{other}`"))),
        };
        Ok(Expr { id, pos, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).expect("lex")).expect("parse")
    }

    fn parse_expr(src: &str) -> Expr {
        let prog = parse_src(&format!("fn main() -> int {{ return {src}; }}"));
        match &prog.functions[0].body[0].kind {
            StmtKind::Return(Some(e)) => e.clone(),
            other => panic!("expected return, got {other:?}"),
        }
    }

    fn shape(e: &Expr) -> String {
        match &e.kind {
            ExprKind::IntLit(v) => v.to_string(),
            ExprKind::FloatLit(v) => v.to_string(),
            ExprKind::BoolLit(v) => v.to_string(),
            ExprKind::NullLit => "null".into(),
            ExprKind::Var(n) => n.clone(),
            ExprKind::Unary(op, a) => format!("({op}{})", shape(a)),
            ExprKind::Binary(op, a, b) => format!("({} {op} {})", shape(a), shape(b)),
            ExprKind::Index(a, i) => format!("{}[{}]", shape(a), shape(i)),
            ExprKind::Field(a, f) => format!("{}.{f}", shape(a)),
            ExprKind::Call(f, args) => format!(
                "{f}({})",
                args.iter().map(shape).collect::<Vec<_>>().join(",")
            ),
            ExprKind::NewStruct(n) => format!("new {n}"),
            ExprKind::NewArray(t, n) => format!("new[{t};{}]", shape(n)),
            ExprKind::Cast(a, t) => format!("({} as {t})", shape(a)),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(shape(&parse_expr("1 + 2 * 3")), "(1 + (2 * 3))");
    }

    #[test]
    fn precedence_cmp_over_logic() {
        assert_eq!(
            shape(&parse_expr("a < b && c >= d || e == f")),
            "(((a < b) && (c >= d)) || (e == f))"
        );
    }

    #[test]
    fn precedence_shift_between_cmp_and_add() {
        assert_eq!(shape(&parse_expr("a < b << 1 + c")), "(a < (b << (1 + c)))");
    }

    #[test]
    fn postfix_chain() {
        assert_eq!(shape(&parse_expr("p.next.val")), "p.next.val");
        assert_eq!(shape(&parse_expr("a[i][j]")), "a[i][j]");
        assert_eq!(shape(&parse_expr("p->next->val")), "p.next.val");
    }

    #[test]
    fn cast_binds_tighter_than_binary() {
        assert_eq!(shape(&parse_expr("x + i as float")), "(x + (i as float))");
    }

    #[test]
    fn unary_chain() {
        assert_eq!(shape(&parse_expr("- -x")), "(-(-x))");
        assert_eq!(shape(&parse_expr("!a && b")), "((!a) && b)");
    }

    #[test]
    fn parses_struct_global_fn() {
        let p = parse_src(
            "struct Node { val: int, next: *Node }\n\
             let g: [int; 10];\n\
             fn id(x: int) -> int { return x; }",
        );
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 2);
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn parses_tagged_loops() {
        let p = parse_src(
            "fn main() { @hot: for (let i: int = 0; i < 4; i = i + 1) { } \
             @scan: while (false) { } }",
        );
        let body = &p.functions[0].body;
        match (&body[0].kind, &body[1].kind) {
            (StmtKind::For { tag: Some(a), .. }, StmtKind::While { tag: Some(b), .. }) => {
                assert_eq!(a, "hot");
                assert_eq!(b, "scan");
            }
            other => panic!("unexpected statements: {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse_src(
            "fn f(x: int) -> int { if (x < 0) { return 0; } else if (x < 10) { return 1; } \
             else { return 2; } }",
        );
        match &p.functions[0].body[0].kind {
            StmtKind::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0].kind, StmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_print_with_labels() {
        let p = parse_src(r#"fn main() { print("sum", 1 + 2); }"#);
        match &p.functions[0].body[0].kind {
            StmtKind::Print(args) => {
                assert!(matches!(args[0], PrintArg::Label(ref s) if s == "sum"));
                assert!(matches!(args[1], PrintArg::Value(_)));
            }
            other => panic!("expected print, got {other:?}"),
        }
    }

    #[test]
    fn parses_new_forms() {
        assert_eq!(shape(&parse_expr("new Node")), "new Node");
        assert_eq!(
            shape(&parse_expr("new [float; n * 2]")),
            "new[float;(n * 2)]"
        );
    }

    #[test]
    fn expr_ids_are_unique() {
        let p = parse_src("fn main() -> int { return 1 + 2 * 3 - 4; }");
        assert!(p.expr_count >= 7);
    }

    #[test]
    fn nesting_depth_is_bounded_not_fatal() {
        // Moderate nesting parses; adversarial nesting errors cleanly
        // instead of overflowing the parser's stack.
        for (depth, ok) in [(64usize, true), (200, false), (5000, false)] {
            let expr = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
            let src = format!("fn main() -> int {{ return {expr}; }}");
            let toks = lex(&src).expect("lex");
            let result = parse(&toks);
            assert_eq!(result.is_ok(), ok, "depth {depth}");
            if !ok {
                assert!(result
                    .expect_err("deep nesting must error")
                    .message()
                    .contains("nesting too deep"));
            }
        }
    }

    #[test]
    fn error_on_missing_semicolon() {
        let toks = lex("fn main() { let x: int = 1 }").expect("lex");
        let err = parse(&toks).expect_err("should fail");
        assert_eq!(err.kind(), ErrorKind::Parse);
    }

    #[test]
    fn error_on_tag_without_loop() {
        let toks = lex("fn main() { @t: if (true) { } }").expect("lex");
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn for_loop_components() {
        let p = parse_src("fn main() { for (let i: int = 0; i < 8; i = i + 2) { break; } }");
        match &p.functions[0].body[0].kind {
            StmtKind::For {
                init, step, body, ..
            } => {
                assert!(matches!(init.kind, StmtKind::Let { .. }));
                assert!(matches!(step.kind, StmtKind::Assign { .. }));
                assert!(matches!(body[0].kind, StmtKind::Break));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }
}
