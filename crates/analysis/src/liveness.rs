//! Live-variable analysis.
//!
//! Classic backward may-dataflow over the CFG at whole-variable granularity
//! (scalars, pointers and fixed arrays are all single dataflow facts). DCA
//! uses it twice: to find a loop's **live-out** variables — the values whose
//! preservation defines commutativity (paper §III) — and its loop-carried
//! scalars, which the parallelization stage must privatize or reduce.

use dca_ir::{BlockId, FuncView, Loop, VarId};
use dca_obs::Obs;
use std::collections::BTreeSet;

/// Per-block live-in/live-out sets for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<BTreeSet<VarId>>,
    live_out: Vec<BTreeSet<VarId>>,
    /// Variables defined (written) by each block.
    defs: Vec<BTreeSet<VarId>>,
}

impl Liveness {
    /// Computes liveness for a function.
    pub fn new(view: &FuncView<'_>) -> Self {
        Self::new_with_obs(view, &Obs::disabled())
    }

    /// Like [`Liveness::new`], recording a `analysis.liveness` span and
    /// fixpoint-pass counters into `obs`.
    pub fn new_with_obs(view: &FuncView<'_>, obs: &Obs) -> Self {
        let t = obs.span_start();
        let (result, passes) = Self::compute(view);
        obs.span_end("analysis.liveness", t);
        obs.count("analysis.liveness.runs", 1);
        obs.count("analysis.liveness.passes", passes);
        result
    }

    /// The dataflow computation; returns the result and the number of
    /// fixpoint passes it took.
    fn compute(view: &FuncView<'_>) -> (Self, u64) {
        let f = view.func;
        let n = f.blocks.len();
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![BTreeSet::new(); n];
        let mut kill = vec![BTreeSet::new(); n];
        for b in f.block_ids() {
            let blk = f.block(b);
            let g = &mut gen[b.index()];
            let k = &mut kill[b.index()];
            let mut uses = Vec::new();
            for inst in &blk.insts {
                uses.clear();
                inst.uses_into(&mut uses);
                for &u in &uses {
                    if !k.contains(&u) {
                        g.insert(u);
                    }
                }
                if let Some(d) = inst.def() {
                    k.insert(d);
                }
            }
            for u in blk.term.uses() {
                if !k.contains(&u) {
                    g.insert(u);
                }
            }
        }
        let mut live_in = vec![BTreeSet::new(); n];
        let mut live_out = vec![BTreeSet::new(); n];
        // Iterate to fixpoint, visiting blocks in reverse RPO for speed.
        let order: Vec<BlockId> = view.cfg.reverse_postorder().iter().rev().copied().collect();
        let mut changed = true;
        let mut passes = 0u64;
        while changed {
            changed = false;
            passes += 1;
            for &b in &order {
                let mut out = BTreeSet::new();
                for &s in view.cfg.succs(b) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn = gen[b.index()].clone();
                for &v in &out {
                    if !kill[b.index()].contains(&v) {
                        inn.insert(v);
                    }
                }
                if out != live_out[b.index()] || inn != live_in[b.index()] {
                    live_out[b.index()] = out;
                    live_in[b.index()] = inn;
                    changed = true;
                }
            }
        }
        (
            Liveness {
                live_in,
                live_out,
                defs: kill,
            },
            passes,
        )
    }

    /// Variables live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &BTreeSet<VarId> {
        &self.live_in[b.index()]
    }

    /// Variables live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &BTreeSet<VarId> {
        &self.live_out[b.index()]
    }

    /// Variables defined (written) somewhere in `b`.
    pub fn defs(&self, b: BlockId) -> &BTreeSet<VarId> {
        &self.defs[b.index()]
    }

    /// Variables **defined inside** `l` that are live on entry to any block
    /// the loop exits to — the loop's *live-out variables* in the paper's
    /// sense: values produced by the loop and consumed later.
    pub fn loop_live_outs(&self, l: &Loop) -> BTreeSet<VarId> {
        let defined = self.loop_defs(l);
        let mut out = BTreeSet::new();
        for t in l.exit_targets() {
            for &v in self.live_in(t) {
                if defined.contains(&v) {
                    out.insert(v);
                }
            }
        }
        out
    }

    /// All variables defined by any block of `l`.
    pub fn loop_defs(&self, l: &Loop) -> BTreeSet<VarId> {
        let mut defined = BTreeSet::new();
        for &b in &l.blocks {
            defined.extend(self.defs(b).iter().copied());
        }
        defined
    }

    /// Loop-carried scalars: variables defined inside `l` that are live on
    /// entry to its header — their value flows around the back edge, so the
    /// parallelizer must treat them as inductions, reductions, or reject.
    pub fn loop_carried(&self, l: &Loop) -> BTreeSet<VarId> {
        let defined = self.loop_defs(l);
        self.live_in(l.header)
            .iter()
            .copied()
            .filter(|v| defined.contains(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_ir::{compile, FuncView};

    fn analyze(src: &str) -> (dca_ir::Module, Liveness) {
        let m = compile(src).expect("compile");
        let view = FuncView::new(&m, m.main().expect("main"));
        let live = Liveness::new(&view);
        (m, live)
    }

    fn var_named(m: &dca_ir::Module, name: &str) -> VarId {
        let f = m.func(m.main().expect("main"));
        for (i, v) in f.vars.iter().enumerate() {
            if v.name == name {
                return VarId(i as u32);
            }
        }
        panic!("no var `{name}`");
    }

    #[test]
    fn straight_line_liveness() {
        let (m, live) =
            analyze("fn main() -> int { let a: int = 1; let b: int = 2; return a + b; }");
        let a = var_named(&m, "a");
        // Everything happens in one block; nothing is live in or out.
        assert!(live.live_in(BlockId(0)).is_empty());
        assert!(live.live_out(BlockId(0)).is_empty());
        assert!(live.defs(BlockId(0)).contains(&a));
    }

    #[test]
    fn loop_live_outs_detect_values_used_after() {
        let (m, live) = analyze(
            "fn main() -> int { let s: int = 0; let t: int = 0; \
             @l: for (let i: int = 0; i < 4; i = i + 1) { s = s + i; t = t + 2; } \
             return s; }",
        );
        let view = FuncView::new(&m, m.main().expect("main"));
        let l = view.loops.by_tag("l").expect("tagged loop");
        let outs = live.loop_live_outs(l);
        let s = var_named(&m, "s");
        let t = var_named(&m, "t");
        assert!(outs.contains(&s), "s is consumed by the return");
        assert!(!outs.contains(&t), "t is transient (dead after the loop)");
    }

    #[test]
    fn loop_carried_scalars() {
        let (m, live) = analyze(
            "fn main() -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < 4; i = i + 1) { \
               let tmp: int = i * 2; s = s + tmp; } \
             return s; }",
        );
        let view = FuncView::new(&m, m.main().expect("main"));
        let l = view.loops.by_tag("l").expect("tagged loop");
        let carried = live.loop_carried(l);
        let s = var_named(&m, "s");
        let i = var_named(&m, "i");
        let tmp = var_named(&m, "tmp");
        assert!(carried.contains(&s), "s accumulates across iterations");
        assert!(carried.contains(&i), "i is the induction variable");
        assert!(
            !carried.contains(&tmp),
            "tmp is reinitialized every iteration"
        );
    }

    #[test]
    fn pointer_chase_is_loop_carried_and_live_out_when_used() {
        let (m, live) = analyze(
            "struct N { v: int, next: *N }\n\
             fn main() -> int { let p: *N = new N; \
             @walk: while (p != null) { p = p.next; } \
             if (p == null) { return 1; } return 0; }",
        );
        let view = FuncView::new(&m, m.main().expect("main"));
        let l = view.loops.by_tag("walk").expect("tagged loop");
        let p = var_named(&m, "p");
        assert!(live.loop_carried(l).contains(&p));
        assert!(live.loop_live_outs(l).contains(&p));
    }

    #[test]
    fn branch_divergent_liveness() {
        // A value live only along one branch arm is still live at the
        // split (may-liveness), and dead after its last use.
        let (m, live) = analyze(
            "fn main(c: bool) -> int { let x: int = 5; let y: int = 7;              if (c) { return x; } return y; }",
        );
        let view = FuncView::new(&m, m.main().expect("main"));
        let x = var_named(&m, "x");
        let y = var_named(&m, "y");
        // Both are live out of the entry block (the branch decides).
        let entry_out = live.live_out(view.func.entry());
        assert!(entry_out.contains(&x));
        assert!(entry_out.contains(&y));
    }

    #[test]
    fn array_variables_tracked_whole() {
        // The array base variable is used by indexing on either side.
        let (m, live) = analyze(
            "fn main() -> int { let a: [int; 4];              @l: for (let i: int = 0; i < 4; i = i + 1) { a[i] = i; }              return a[2]; }",
        );
        let view = FuncView::new(&m, m.main().expect("main"));
        let a = var_named(&m, "a");
        let l = view.loops.by_tag("l").expect("loop");
        // `a` is live into the loop (its pointer-to-frame-storage value
        // flows through) and at every exit.
        assert!(live.live_in(l.header).contains(&a));
        for t in l.exit_targets() {
            assert!(live.live_in(t).contains(&a));
        }
    }

    #[test]
    fn liveness_is_a_fixpoint() {
        // live_in(b) == gen(b) ∪ (live_out(b) ∖ kill(b)) for all blocks, and
        // live_out(b) == ∪ live_in(succ).
        let (m, live) = analyze(
            "fn main() -> int { let s: int = 0; let i: int = 0; \
             while (i < 10) { if (i > 5) { s = s + i; } else { s = s + 1; } \
             i = i + 1; } return s; }",
        );
        let view = FuncView::new(&m, m.main().expect("main"));
        for b in view.func.block_ids() {
            let mut out = BTreeSet::new();
            for &succ in view.cfg.succs(b) {
                out.extend(live.live_in(succ).iter().copied());
            }
            assert_eq!(&out, live.live_out(b), "live_out mismatch at {b}");
        }
    }

    #[test]
    fn obs_records_passes_and_matches_uninstrumented_result() {
        let m = dca_ir::compile(
            "fn main() -> int { let s: int = 0; \
             for (let i: int = 0; i < 10; i = i + 1) { s = s + i; } return s; }",
        )
        .expect("compile");
        let view = FuncView::new(&m, m.main().expect("main"));
        let obs = Obs::enabled();
        let live = Liveness::new_with_obs(&view, &obs);
        let plain = Liveness::new(&view);
        for b in view.func.block_ids() {
            assert_eq!(live.live_in(b), plain.live_in(b));
        }
        let r = obs.rollup().expect("enabled");
        assert_eq!(r.counter("analysis.liveness.runs"), 1);
        assert!(
            r.counter("analysis.liveness.passes") >= 2,
            "fixpoint takes >= 2 passes"
        );
        assert_eq!(r.spans["analysis.liveness"].count, 1);
    }
}
