//! Interprocedural effect analysis.
//!
//! Computes, per function, whether it may read/write memory, perform I/O or
//! allocate — transitively through calls. DCA's static stage uses the I/O
//! fact to exclude loops (paper §IV-E); the ICC-style baseline uses "pure"
//! (no memory, no I/O) to decide which calls it can see through, which the
//! paper credits for ICC's robustness (§V-C1).

use dca_ir::{FuncId, Inst, Module};
use dca_obs::Obs;
use std::collections::HashSet;

/// The effects one function may have, transitively.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Effects {
    /// May read heap/array/global memory.
    pub reads_memory: bool,
    /// May write heap/array/global memory.
    pub writes_memory: bool,
    /// May print.
    pub does_io: bool,
    /// May allocate heap objects.
    pub allocates: bool,
    /// May call (transitively) a function whose body is recursive with it.
    pub recursive: bool,
}

impl Effects {
    /// "Pure" in the ICC-inlining sense: computes a value from its
    /// arguments only.
    pub fn is_pure(&self) -> bool {
        !self.reads_memory && !self.writes_memory && !self.does_io && !self.allocates
    }
}

/// Effects for every function of a module.
#[derive(Debug, Clone)]
pub struct EffectMap {
    effects: Vec<Effects>,
}

impl EffectMap {
    /// Computes effects by fixpoint over the call graph.
    pub fn new(module: &Module) -> Self {
        Self::new_with_obs(module, &Obs::disabled())
    }

    /// Like [`EffectMap::new`], recording an `analysis.effect_map` span
    /// and fixpoint-pass counters into `obs`.
    pub fn new_with_obs(module: &Module, obs: &Obs) -> Self {
        let t = obs.span_start();
        let (result, passes) = Self::compute(module);
        obs.span_end("analysis.effect_map", t);
        obs.count("analysis.effect_map.runs", 1);
        obs.count("analysis.effect_map.passes", passes);
        obs.count("analysis.effect_map.funcs", module.funcs.len() as u64);
        result
    }

    /// The fixpoint computation; returns the result and the number of
    /// propagation passes it took.
    fn compute(module: &Module) -> (Self, u64) {
        let n = module.funcs.len();
        let mut effects = vec![Effects::default(); n];
        // Local (intra-procedural) facts plus call edges.
        let mut calls: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        for (i, f) in module.funcs.iter().enumerate() {
            for b in f.block_ids() {
                for inst in &f.block(b).insts {
                    match inst {
                        Inst::LoadIndex { .. }
                        | Inst::LoadField { .. }
                        | Inst::LoadGlobal { .. } => effects[i].reads_memory = true,
                        Inst::StoreIndex { .. }
                        | Inst::StoreField { .. }
                        | Inst::StoreGlobal { .. } => effects[i].writes_memory = true,
                        Inst::Print { .. } => effects[i].does_io = true,
                        Inst::AllocArray { .. } | Inst::AllocStruct { .. } => {
                            effects[i].allocates = true
                        }
                        Inst::Call { func, .. } => {
                            calls[i].insert(func.index());
                        }
                        _ => {}
                    }
                }
            }
        }
        // Propagate to fixpoint.
        let mut changed = true;
        let mut passes = 0u64;
        while changed {
            changed = false;
            passes += 1;
            for i in 0..n {
                for &c in &calls[i] {
                    let callee = effects[c];
                    let merged = Effects {
                        reads_memory: effects[i].reads_memory || callee.reads_memory,
                        writes_memory: effects[i].writes_memory || callee.writes_memory,
                        does_io: effects[i].does_io || callee.does_io,
                        allocates: effects[i].allocates || callee.allocates,
                        recursive: effects[i].recursive,
                    };
                    if merged != effects[i] {
                        effects[i] = merged;
                        changed = true;
                    }
                }
            }
        }
        // Recursion: a function that can reach itself through call edges
        // (covers self- and mutual recursion).
        for i in 0..n {
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = calls[i].iter().copied().collect();
            while let Some(c) = stack.pop() {
                if c == i {
                    effects[i].recursive = true;
                    break;
                }
                if !seen[c] {
                    seen[c] = true;
                    stack.extend(calls[c].iter().copied());
                }
            }
        }
        (EffectMap { effects }, passes)
    }

    /// Effects of `f`.
    pub fn effects(&self, f: FuncId) -> Effects {
        self.effects[f.index()]
    }

    /// The set of functions that may perform I/O (for DCA's loop
    /// exclusion).
    pub fn io_funcs(&self) -> HashSet<FuncId> {
        self.effects
            .iter()
            .enumerate()
            .filter(|(_, e)| e.does_io)
            .map(|(i, _)| FuncId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_ir::compile;

    fn effects_of(src: &str, name: &str) -> Effects {
        let m = compile(src).expect("compile");
        let map = EffectMap::new(&m);
        map.effects(m.func_by_name(name).expect("function exists"))
    }

    #[test]
    fn arithmetic_function_is_pure() {
        let e = effects_of(
            "fn sq(x: float) -> float { return x * x; } fn main() { }",
            "sq",
        );
        assert!(e.is_pure());
    }

    #[test]
    fn memory_and_io_effects_detected() {
        let src = "let g: int;\n\
                   fn reader() -> int { return g; }\n\
                   fn writer() { g = 1; }\n\
                   fn printer() { print(1); }\n\
                   fn main() { }";
        assert!(effects_of(src, "reader").reads_memory);
        assert!(!effects_of(src, "reader").writes_memory);
        assert!(effects_of(src, "writer").writes_memory);
        assert!(effects_of(src, "printer").does_io);
        assert!(!effects_of(src, "printer").is_pure());
    }

    #[test]
    fn effects_propagate_through_calls() {
        let src = "fn leaf() { print(1); }\n\
                   fn mid() { leaf(); }\n\
                   fn top() { mid(); }\n\
                   fn main() { }";
        assert!(effects_of(src, "top").does_io);
        let m = compile(src).expect("compile");
        let map = EffectMap::new(&m);
        assert_eq!(map.io_funcs().len(), 3);
    }

    #[test]
    fn recursion_detected() {
        let e = effects_of(
            "fn f(n: int) -> int { if (n < 1) { return 0; } return f(n - 1); }\n\
             fn main() { }",
            "f",
        );
        assert!(e.recursive);
    }

    #[test]
    fn allocation_is_an_effect() {
        let e = effects_of(
            "struct N { v: int }\n\
             fn mk() -> *N { return new N; }\n\
             fn main() { }",
            "mk",
        );
        assert!(e.allocates);
        assert!(!e.is_pure());
    }

    #[test]
    fn mutual_recursion_reaches_fixpoint() {
        let src = "fn a(n: int) -> int { if (n < 1) { return 0; } return b(n - 1); }\n\
                   fn b(n: int) -> int { print(n); return a(n); }\n\
                   fn main() { }";
        assert!(effects_of(src, "a").does_io);
        assert!(effects_of(src, "a").recursive);
        assert!(effects_of(src, "b").recursive);
    }
}
