//! Static analyses for the DCA reproduction.
//!
//! Four families of analysis, mirroring what the paper's static stage and
//! its baselines need:
//!
//! * [`liveness`] — live variables; in particular a loop's **live-outs**,
//!   the values whose preservation defines liveness-based commutativity
//!   (paper §III), and its loop-carried scalars.
//! * [`iterator`] — generalized iterator recognition (paper §IV-A1): the
//!   backward slice of the loop's continuation conditions, with a memory
//!   closure that captures destructive iterators (worklist pops).
//! * [`affine`] + [`deptest`] — induction variables, affine subscripts and
//!   the ZIV/SIV/GCD dependence tests that power the Polly-/ICC-style
//!   static baselines.
//! * [`reduction`] — scalar reduction, histogram and privatization
//!   classification (paper §IV-C), shared by the Idioms baseline and the
//!   parallel code generator.
//! * [`purity`] — interprocedural effects: I/O (DCA's exclusion rule,
//!   §IV-E) and purity (ICC's call-inlining model, §V-C1).
//!
//! # Example
//!
//! ```
//! use dca_analysis::{Liveness, IteratorSlice};
//! use dca_ir::FuncView;
//!
//! let module = dca_ir::compile(
//!     "fn main() -> int {
//!          let s: int = 0;
//!          @sum: for (let i: int = 0; i < 10; i = i + 1) { s = s + i; }
//!          return s;
//!      }",
//! )?;
//! let view = FuncView::new(&module, module.main().expect("main"));
//! let live = Liveness::new(&view);
//! let l = view.loops.by_tag("sum").expect("tagged loop");
//! let slice = IteratorSlice::compute(&view, l);
//! assert_eq!(slice.iter_vars.len(), 1); // the induction variable `i`
//! assert!(live.loop_live_outs(l).len() == 1); // the accumulator `s`
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod affine;
pub mod deptest;
pub mod iterator;
pub mod liveness;
pub mod purity;
pub mod reduction;

pub use affine::{Access, Affine, AffineLoopInfo, ArrayKey, InductionVar, LoopBound};
pub use deptest::{test_loop, test_pair, DepResult, LoopDepSummary};
pub use iterator::{exclusion, ExclusionReason, InstRef, IteratorSlice, LoopShape};
pub use liveness::Liveness;
pub use purity::{EffectMap, Effects};
pub use reduction::{Histogram, ReductionInfo, ReductionOp, ScalarReduction};
