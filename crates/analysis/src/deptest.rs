//! Static data-dependence tests over affine accesses.
//!
//! Implements the classical ZIV / strong-SIV / GCD decision procedure on
//! the [`Affine`] subscripts produced by [`crate::affine`]. These are the
//! tests a Polly- or ICC-style detector runs to prove a loop's iterations
//! independent; their conservatism on anything non-affine is exactly the
//! gap DCA exploits (paper §I).

use crate::affine::{Access, Affine, AffineLoopInfo};

/// The verdict of a pairwise dependence test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepResult {
    /// Proven independent across iterations.
    Independent,
    /// Proven (or assumed) dependent across iterations.
    Dependent,
    /// Dependence exists but only within a single iteration.
    LoopIndependent,
}

/// Greatest common divisor (non-negative).
fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Tests a pair of subscripts on the same array for a cross-iteration
/// dependence with respect to induction variable `iv` (the loop being
/// analyzed). `trip` is the loop's trip count when statically known; it
/// bounds the dependence distance in the strong-SIV case.
pub fn test_pair(s1: &Affine, s2: &Affine, iv: dca_ir::VarId, trip: Option<i64>) -> DepResult {
    // Split each subscript into the iv coefficient and "the rest".
    let a1 = s1.iv_coeff(iv);
    let a2 = s2.iv_coeff(iv);
    let rest_equal = {
        let mut r1 = s1.clone();
        r1.iv_terms.remove(&iv);
        let mut r2 = s2.clone();
        r2.iv_terms.remove(&iv);
        // Symbolic/other-iv parts must match exactly for the precise tests;
        // otherwise fall through to GCD/conservative.
        (
            r1.iv_terms == r2.iv_terms && r1.sym_terms == r2.sym_terms,
            r1.konst - r2.konst,
        )
    };
    let (same_rest, c_diff) = rest_equal;

    if a1 == 0 && a2 == 0 {
        // ZIV: subscripts do not vary with the loop.
        return if same_rest && c_diff == 0 {
            DepResult::Dependent // same location touched every iteration
        } else if same_rest {
            DepResult::Independent
        } else {
            DepResult::Dependent // unknown symbols: assume the worst
        };
    }

    if a1 == a2 && same_rest {
        // Strong SIV: distance = (c2 - c1) / a.
        let a = a1;
        if c_diff % a != 0 {
            return DepResult::Independent;
        }
        let dist = -c_diff / a;
        if dist == 0 {
            return DepResult::LoopIndependent;
        }
        if let Some(t) = trip {
            if dist.abs() >= t {
                return DepResult::Independent;
            }
        }
        return DepResult::Dependent;
    }

    if same_rest {
        // Weak SIV / MIV on the same loop: GCD test on `a1*i1 - a2*i2 = c`.
        let g = gcd(a1, a2);
        if g != 0 && c_diff % g != 0 {
            return DepResult::Independent;
        }
        return DepResult::Dependent;
    }

    // Different symbolic parts: no theory, assume dependence.
    DepResult::Dependent
}

/// Result of testing a whole loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopDepSummary {
    /// A cross-iteration dependence (RAW, WAR or WAW) was found or assumed.
    pub has_cross_iteration_dep: bool,
    /// Some access pair could not be tested precisely (assumed dependent).
    pub assumed: bool,
}

/// Runs the dependence tests over all conflicting access pairs of `info`
/// for the loop's primary induction variable.
///
/// Returns `None` if the loop has no recognized induction variable or a
/// non-affine access — the "give up" outcome of a static tool.
pub fn test_loop(info: &AffineLoopInfo) -> Option<LoopDepSummary> {
    let iv = info.ivs.first()?.var;
    if !info.all_affine() {
        return None;
    }
    let trip = info.bound.as_ref().and_then(|b| {
        if b.bound.is_constant() {
            // i in [0, B) or [0, B]; trip count relative to a unit step.
            let step = info.ivs.first().map(|iv| iv.step).unwrap_or(1);
            if step == 0 {
                None
            } else {
                Some(((b.bound.konst + i64::from(b.inclusive)) / step).max(0))
            }
        } else {
            None
        }
    });
    let mut has_dep = false;
    let mut assumed = false;
    let n = info.accesses.len();
    for i in 0..n {
        for j in i..n {
            let (x, y): (&Access, &Access) = (&info.accesses[i], &info.accesses[j]);
            if !(x.is_write || y.is_write) || x.array != y.array {
                continue;
            }
            if i == j && !x.is_write {
                continue;
            }
            let (sx, sy) = (
                x.subscript.as_ref().expect("checked affine"),
                y.subscript.as_ref().expect("checked affine"),
            );
            match test_pair(sx, sy, iv, trip) {
                DepResult::Dependent => {
                    has_dep = true;
                    if !sx.is_pure_iv() || !sy.is_pure_iv() {
                        assumed = true;
                    }
                }
                DepResult::LoopIndependent | DepResult::Independent => {}
            }
        }
    }
    Some(LoopDepSummary {
        has_cross_iteration_dep: has_dep,
        assumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineLoopInfo;
    use crate::liveness::Liveness;
    use dca_ir::{compile, FuncView};

    fn summary(src: &str, tag: &str) -> Option<LoopDepSummary> {
        let m = compile(src).expect("compile");
        let view = FuncView::new(&m, m.main().expect("main"));
        let live = Liveness::new(&view);
        let l = view.loops.by_tag(tag).expect("tag");
        let info = AffineLoopInfo::compute(&view, &live, l);
        test_loop(&info)
    }

    #[test]
    fn disjoint_writes_are_independent() {
        let s = summary(
            "fn main() { let a: [int; 16]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { a[i] = i; } }",
            "l",
        )
        .expect("affine loop");
        assert!(!s.has_cross_iteration_dep);
    }

    #[test]
    fn recurrence_is_dependent() {
        let s = summary(
            "fn main() { let a: [int; 16]; \
             @l: for (let i: int = 1; i < 16; i = i + 1) { a[i] = a[i - 1] + 1; } }",
            "l",
        )
        .expect("affine loop");
        assert!(s.has_cross_iteration_dep);
    }

    #[test]
    fn offset_beyond_trip_count_is_independent() {
        // a[i] and a[i + 100] never collide within 16 iterations.
        let s = summary(
            "fn main() { let a: [int; 200]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { a[i] = a[i + 100]; } }",
            "l",
        )
        .expect("affine loop");
        assert!(!s.has_cross_iteration_dep);
    }

    #[test]
    fn gcd_test_separates_odd_even() {
        // Writes to 2i, reads from 2i+1: different parity, never collide.
        let s = summary(
            "fn main() { let a: [int; 64]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { a[2 * i] = a[2 * i + 1]; } }",
            "l",
        )
        .expect("affine loop");
        assert!(!s.has_cross_iteration_dep);
    }

    #[test]
    fn scalar_location_every_iteration_is_dependent() {
        let s = summary(
            "fn main() { let a: [int; 4]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { a[0] = a[0] + i; } }",
            "l",
        )
        .expect("affine loop");
        assert!(s.has_cross_iteration_dep);
    }

    #[test]
    fn non_affine_gives_up() {
        assert!(summary(
            "fn main() { let a: [int; 16]; let idx: [int; 16]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { a[idx[i]] = i; } }",
            "l",
        )
        .is_none());
    }

    #[test]
    fn read_only_pairs_ignored() {
        let s = summary(
            "fn main() { let a: [int; 16]; let s: int = 0; \
             @l: for (let i: int = 1; i < 15; i = i + 1) { s = s + a[i] + a[i - 1]; } }",
            "l",
        )
        .expect("affine loop");
        assert!(!s.has_cross_iteration_dep, "reads never conflict");
    }

    #[test]
    fn gcd_function() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(7, 0), 7);
    }

    #[test]
    fn symbolic_same_offset_is_loop_independent() {
        // a[i + off] written and read with identical symbolic part: the
        // strong-SIV distance is 0 — no cross-iteration dependence.
        let s = summary(
            "fn main(off: int) { let a: *int = new [int; 256]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { a[i + off] = a[i + off] + 1; } }",
            "l",
        )
        .expect("affine loop");
        assert!(!s.has_cross_iteration_dep);
    }
}
