//! Generalized iterator recognition (paper §IV-A1).
//!
//! Following Manilov et al. (CC'18), the *iterator* of a loop is the code
//! that decides whether execution continues in the loop — here computed as
//! the backward dataflow slice, within the loop, of every terminator
//! condition that can leave the loop (including the header's). Everything
//! else is *payload*. The iterator variables that payload consumes (the
//! induction variable, the chased pointer, the popped worklist item) are
//! what DCA records and rebinds during permuted replay.

use crate::liveness::Liveness;
use dca_ir::{BlockId, FuncView, GlobalId, Inst, Loop, MemBase, Operand, VarId};
use std::collections::{BTreeSet, HashSet};

/// The location class of a memory access, at the precision iterator
/// recognition needs: which pointer variable or global it goes through,
/// plus the field for struct accesses (so a slice that loads `list.head`
/// pulls in stores to `list.head` but not payload stores to `node.val`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MemRoot {
    Array(VarId),
    Field(VarId, u32),
    GlobalArray(GlobalId),
    GlobalScalar(GlobalId),
}

/// The location class an instruction reads through, if any.
fn reads_root(inst: &Inst) -> Option<MemRoot> {
    match inst {
        Inst::LoadIndex {
            base: MemBase::Var(v),
            ..
        } => Some(MemRoot::Array(*v)),
        Inst::LoadIndex {
            base: MemBase::Global(g),
            ..
        } => Some(MemRoot::GlobalArray(*g)),
        Inst::LoadField {
            obj: Operand::Var(v),
            field,
            ..
        } => Some(MemRoot::Field(*v, *field)),
        Inst::LoadGlobal { global, .. } => Some(MemRoot::GlobalScalar(*global)),
        _ => None,
    }
}

/// The location class an instruction writes through, if any.
fn writes_root(inst: &Inst) -> Option<MemRoot> {
    match inst {
        Inst::StoreIndex {
            base: MemBase::Var(v),
            ..
        } => Some(MemRoot::Array(*v)),
        Inst::StoreIndex {
            base: MemBase::Global(g),
            ..
        } => Some(MemRoot::GlobalArray(*g)),
        Inst::StoreField {
            obj: Operand::Var(v),
            field,
            ..
        } => Some(MemRoot::Field(*v, *field)),
        Inst::StoreGlobal { global, .. } => Some(MemRoot::GlobalScalar(*global)),
        _ => None,
    }
}

/// True if `inst` is a call that takes one of the loaded bases as an
/// argument and may mutate iterator state through it (a worklist `pop`).
/// Only memory-writing callees qualify; pure or read-only helpers in the
/// payload must not be dragged into the iterator.
fn call_may_write_loaded(
    inst: &Inst,
    loaded: &HashSet<MemRoot>,
    effects: &crate::purity::EffectMap,
) -> bool {
    match inst {
        Inst::Call { func, args, .. } if effects.effects(*func).writes_memory => {
            args.iter().filter_map(|a| a.as_var()).any(|v| {
                loaded
                    .iter()
                    .any(|r| matches!(r, MemRoot::Field(b, _) | MemRoot::Array(b) if *b == v))
            })
        }
        _ => false,
    }
}

/// Identifies one instruction inside a function.
pub type InstRef = (BlockId, usize);

/// The iterator/payload separation of one loop.
#[derive(Debug, Clone)]
pub struct IteratorSlice {
    /// Instructions belonging to the iterator slice.
    pub insts: HashSet<InstRef>,
    /// Variables defined by slice instructions.
    pub slice_vars: BTreeSet<VarId>,
    /// Slice-defined variables that payload instructions (or nested calls)
    /// actually read — the values to record per iteration.
    pub iter_vars: BTreeSet<VarId>,
    /// Number of payload (non-slice) instructions in the loop.
    pub payload_insts: usize,
    /// True if some slice instruction has side effects (memory writes,
    /// calls, allocation) — e.g. a worklist `pop` feeding the condition.
    pub effectful_iterator: bool,
}

impl IteratorSlice {
    /// Computes the separation for loop `l` of `view`'s function,
    /// building the module's effect map internally. Prefer
    /// [`IteratorSlice::compute_with`] when analyzing many loops.
    pub fn compute(view: &FuncView<'_>, l: &Loop) -> Self {
        Self::compute_with(view, l, &crate::purity::EffectMap::new(view.module))
    }

    /// Computes the separation for loop `l`, reusing a precomputed effect
    /// map for the call-closure rule.
    pub fn compute_with(view: &FuncView<'_>, l: &Loop, effects: &crate::purity::EffectMap) -> Self {
        Self::compute_with_obs(view, l, effects, &dca_obs::Obs::disabled())
    }

    /// Like [`IteratorSlice::compute_with`], recording an
    /// `analysis.iterator_slice` span plus slice-size and fixpoint-pass
    /// counters into `obs`.
    pub fn compute_with_obs(
        view: &FuncView<'_>,
        l: &Loop,
        effects: &crate::purity::EffectMap,
        obs: &dca_obs::Obs,
    ) -> Self {
        let t = obs.span_start();
        let (slice, passes) = Self::separate(view, l, effects);
        obs.span_end("analysis.iterator_slice", t);
        obs.count("analysis.slice.runs", 1);
        obs.count("analysis.slice.passes", passes);
        obs.count("analysis.slice.insts", slice.insts.len() as u64);
        obs.count("analysis.slice.payload_insts", slice.payload_insts as u64);
        slice
    }

    /// The separation fixpoint; returns the slice and how many passes it
    /// took to converge.
    fn separate(view: &FuncView<'_>, l: &Loop, effects: &crate::purity::EffectMap) -> (Self, u64) {
        let f = view.func;
        // Seed: variables used by terminators of blocks with an exit edge,
        // plus the header's terminator (it decides each iteration).
        let mut needed: BTreeSet<VarId> = BTreeSet::new();
        let exit_sources: HashSet<BlockId> = l.exit_edges.iter().map(|&(s, _)| s).collect();
        for &b in &l.blocks {
            if b == l.header || exit_sources.contains(&b) {
                for v in f.block(b).term.uses() {
                    needed.insert(v);
                }
            }
        }
        // Fixpoint with two closure rules:
        //  1. def-use: an in-loop instruction defining a needed variable
        //     joins the slice and its operands become needed;
        //  2. memory: if a slice instruction *loads* through a base (a
        //     pointer variable or a global), then in-loop stores and calls
        //     that may write through that same base join the slice too —
        //     this is what captures destructive iterators such as worklist
        //     pops, whose state lives in memory rather than registers
        //     (paper §I-A, Fig. 2).
        let mut insts: HashSet<InstRef> = HashSet::new();
        let mut loaded_bases: HashSet<MemRoot> = HashSet::new();
        let mut changed = true;
        let mut passes = 0u64;
        let mut uses = Vec::new();
        while changed {
            changed = false;
            passes += 1;
            for &b in &l.blocks {
                for (i, inst) in f.block(b).insts.iter().enumerate() {
                    if insts.contains(&(b, i)) {
                        continue;
                    }
                    let by_def = inst.def().map(|d| needed.contains(&d)).unwrap_or(false);
                    let by_mem = writes_root(inst)
                        .map(|r| loaded_bases.contains(&r))
                        .unwrap_or(false)
                        || call_may_write_loaded(inst, &loaded_bases, effects);
                    if by_def || by_mem {
                        insts.insert((b, i));
                        uses.clear();
                        inst.uses_into(&mut uses);
                        for &u in &uses {
                            needed.insert(u);
                        }
                        if let Some(r) = reads_root(inst) {
                            loaded_bases.insert(r);
                        }
                        changed = true;
                    }
                }
            }
        }
        let mut slice_vars = BTreeSet::new();
        let mut effectful_iterator = false;
        for &(b, i) in &insts {
            let inst = &f.block(b).insts[i];
            if let Some(d) = inst.def() {
                slice_vars.insert(d);
            }
            if inst.has_side_effects() {
                effectful_iterator = true;
            }
        }
        // Payload instructions and the slice vars they read.
        let mut iter_vars = BTreeSet::new();
        let mut payload_insts = 0;
        for &b in &l.blocks {
            for (i, inst) in f.block(b).insts.iter().enumerate() {
                if insts.contains(&(b, i)) {
                    continue;
                }
                payload_insts += 1;
                uses.clear();
                inst.uses_into(&mut uses);
                for &u in &uses {
                    if slice_vars.contains(&u) {
                        iter_vars.insert(u);
                    }
                }
            }
            // Payload-internal branches may also read slice vars.
            if b != l.header && !exit_sources.contains(&b) {
                for u in f.block(b).term.uses() {
                    if slice_vars.contains(&u) {
                        iter_vars.insert(u);
                    }
                }
            }
        }
        (
            IteratorSlice {
                insts,
                slice_vars,
                iter_vars,
                payload_insts,
                effectful_iterator,
            },
            passes,
        )
    }

    /// True if `r` is part of the iterator slice.
    pub fn contains(&self, r: InstRef) -> bool {
        self.insts.contains(&r)
    }
}

/// Reasons a loop is statically unsuitable for DCA testing (paper §IV-E).
///
/// Early-returning loops need no exclusion: a `return` terminator can never
/// belong to a natural loop (its block cannot reach the latch), so replay
/// handles the return path like any other exit edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExclusionReason {
    /// The loop (or a function it calls) performs observable I/O.
    PerformsIo,
    /// The loop has no payload: nothing to permute.
    EmptyPayload,
}

impl std::fmt::Display for ExclusionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExclusionReason::PerformsIo => write!(f, "performs I/O"),
            ExclusionReason::EmptyPayload => write!(f, "empty payload"),
        }
    }
}

/// Checks the static exclusion rules for `l`: I/O (directly or via calls,
/// using `io_funcs` — the set of functions that may print) and empty
/// payloads.
pub fn exclusion(
    view: &FuncView<'_>,
    l: &Loop,
    slice: &IteratorSlice,
    io_funcs: &HashSet<dca_ir::FuncId>,
) -> Option<ExclusionReason> {
    let f = view.func;
    for &b in &l.blocks {
        for inst in &f.block(b).insts {
            match inst {
                Inst::Print { .. } => return Some(ExclusionReason::PerformsIo),
                Inst::Call { func, .. } if io_funcs.contains(func) => {
                    return Some(ExclusionReason::PerformsIo)
                }
                _ => {}
            }
        }
    }
    if slice.payload_insts == 0 {
        return Some(ExclusionReason::EmptyPayload);
    }
    None
}

/// Convenience bundle: separation plus liveness facts for one loop.
#[derive(Debug, Clone)]
pub struct LoopShape {
    /// Iterator/payload separation.
    pub slice: IteratorSlice,
    /// The loop's live-out variables (defined inside, consumed after).
    pub live_outs: BTreeSet<VarId>,
    /// Loop-carried scalars (flow around the back edge).
    pub carried: BTreeSet<VarId>,
}

impl LoopShape {
    /// Computes the shape of loop `l`.
    pub fn compute(view: &FuncView<'_>, live: &Liveness, l: &Loop) -> Self {
        LoopShape {
            slice: IteratorSlice::compute(view, l),
            live_outs: live.loop_live_outs(l),
            carried: live.loop_carried(l),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_ir::{compile, FuncView};

    fn slice_of(src: &str, tag: &str) -> (dca_ir::Module, IteratorSlice) {
        let m = compile(src).expect("compile");
        let view = FuncView::new(&m, m.main().expect("main"));
        let l = view.loops.by_tag(tag).expect("tagged loop").clone();
        let s = IteratorSlice::compute(&view, &l);
        (m, s)
    }

    fn var_named(m: &dca_ir::Module, name: &str) -> VarId {
        let f = m.func(m.main().expect("main"));
        for (i, v) in f.vars.iter().enumerate() {
            if v.name == name {
                return VarId(i as u32);
            }
        }
        panic!("no var `{name}`");
    }

    #[test]
    fn counted_loop_iterator_is_induction_variable() {
        let (m, s) = slice_of(
            "fn main() { let a: [int; 8]; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { a[i] = i * 2; } }",
            "l",
        );
        let i = var_named(&m, "i");
        assert!(s.slice_vars.contains(&i));
        assert!(s.iter_vars.contains(&i), "payload reads i");
        assert!(s.payload_insts > 0);
        assert!(!s.effectful_iterator);
    }

    #[test]
    fn pointer_chase_iterator_is_the_pointer() {
        let (m, s) = slice_of(
            "struct N { val: int, next: *N }\n\
             fn main() { let p: *N = new N; \
             @walk: while (p != null) { p.val = p.val + 1; p = p.next; } }",
            "walk",
        );
        let p = var_named(&m, "p");
        assert!(s.slice_vars.contains(&p));
        assert!(s.iter_vars.contains(&p), "payload dereferences p");
        // The pointer advance is a LoadField — reads memory but does not
        // write it, so the iterator is not effectful.
        assert!(!s.effectful_iterator);
    }

    #[test]
    fn payload_instructions_excluded_from_slice() {
        let (m, s) = slice_of(
            "fn main() { let a: [float; 8]; let sum: float = 0.0; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { sum = sum + a[i]; } }",
            "l",
        );
        let sum = var_named(&m, "sum");
        assert!(!s.slice_vars.contains(&sum), "sum is payload, not iterator");
    }

    #[test]
    fn condition_on_payload_value_pulls_it_into_slice() {
        // A convergence-style loop: the exit condition depends on a value
        // the body computes, so that computation is iterator, not payload.
        let (m, s) = slice_of(
            "fn main() { let err: float = 1.0; let n: int = 0; \
             @conv: while (err > 0.5) { err = err * 0.25; n = n + 1; } }",
            "conv",
        );
        let err = var_named(&m, "err");
        assert!(s.slice_vars.contains(&err));
        let n = var_named(&m, "n");
        assert!(!s.slice_vars.contains(&n));
    }

    #[test]
    fn exclusion_rules() {
        let m = compile(
            "fn noisy() { print(1); }\n\
             fn main() { let s: int = 0;\n\
             @io: for (let i: int = 0; i < 3; i = i + 1) { print(i); }\n\
             @callio: for (let i: int = 0; i < 3; i = i + 1) { noisy(); }\n\
             @ret: for (let i: int = 0; i < 3; i = i + 1) { s = s + i; if (i == 2) { return; } }\n\
             @ok: for (let i: int = 0; i < 3; i = i + 1) { s = s + i; } }",
        )
        .expect("compile");
        let view = FuncView::new(&m, m.main().expect("main"));
        let io_funcs: HashSet<_> = [m.func_by_name("noisy").expect("noisy")].into();
        let check = |tag: &str| {
            let l = view.loops.by_tag(tag).expect("tag");
            let s = IteratorSlice::compute(&view, l);
            exclusion(&view, l, &s, &io_funcs)
        };
        assert_eq!(check("io"), Some(ExclusionReason::PerformsIo));
        assert_eq!(check("callio"), Some(ExclusionReason::PerformsIo));
        // An early `return` lives outside the natural loop, so the loop
        // remains a candidate (replay treats the return path as a normal
        // exit edge).
        assert_eq!(check("ret"), None);
        assert_eq!(check("ok"), None);
    }

    #[test]
    fn empty_payload_excluded() {
        let m = compile("fn main() { @spin: for (let i: int = 0; i < 3; i = i + 1) { } }")
            .expect("compile");
        let view = FuncView::new(&m, m.main().expect("main"));
        let l = view.loops.by_tag("spin").expect("tag");
        let s = IteratorSlice::compute(&view, l);
        assert_eq!(
            exclusion(&view, l, &s, &HashSet::new()),
            Some(ExclusionReason::EmptyPayload)
        );
    }

    #[test]
    fn worklist_pop_is_effectful_iterator() {
        // `current` comes from a destructive pop through the list head held
        // in a struct; the head update is a store, making the iterator
        // effectful.
        let (_, s) = slice_of(
            "struct Cell { v: int, next: *Cell }\n\
             struct List { head: *Cell }\n\
             fn main() { let l: *List = new List; let total: int = 0;\n\
             @drain: while (l.head != null) { \
               let c: *Cell = l.head; l.head = c.next; total = total + c.v; } }",
            "drain",
        );
        assert!(s.effectful_iterator);
    }
}
