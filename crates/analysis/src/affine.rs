//! Induction-variable recognition and affine subscript analysis.
//!
//! This is the substrate of the *static* baselines (Polly-style and
//! ICC-style detection): recognize basic induction variables, express array
//! subscripts as affine functions of them, and extract loop bounds. Loops or
//! accesses that escape this form are what defeat static dependence
//! analysis — and what DCA handles uniformly at run time.

use crate::liveness::Liveness;
use dca_ir::{BinOp, FuncView, GlobalId, Inst, Loop, MemBase, Operand, Terminator, VarId};
use std::collections::{BTreeMap, HashMap};

/// A basic induction variable: `iv = iv + step` once per iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InductionVar {
    /// The variable.
    pub var: VarId,
    /// The (constant) per-iteration step.
    pub step: i64,
}

/// An affine expression `Σ coeff·iv + Σ coeff·sym + konst`, where `iv` are
/// induction variables of enclosing loops and `sym` are loop-invariant
/// integer variables (kept symbolic, the way ICC's tests tolerate them).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    /// Induction-variable terms.
    pub iv_terms: BTreeMap<VarId, i64>,
    /// Loop-invariant symbolic terms.
    pub sym_terms: BTreeMap<VarId, i64>,
    /// Constant part.
    pub konst: i64,
}

impl Affine {
    /// The constant `k`.
    pub fn constant(k: i64) -> Self {
        Affine {
            konst: k,
            ..Default::default()
        }
    }

    /// A single variable with coefficient 1 (an IV term).
    pub fn iv(v: VarId) -> Self {
        let mut a = Affine::default();
        a.iv_terms.insert(v, 1);
        a
    }

    /// A single loop-invariant symbol with coefficient 1.
    pub fn sym(v: VarId) -> Self {
        let mut a = Affine::default();
        a.sym_terms.insert(v, 1);
        a
    }

    /// True if the expression has no variable terms at all.
    pub fn is_constant(&self) -> bool {
        self.iv_terms.is_empty() && self.sym_terms.is_empty()
    }

    /// True if the expression uses no symbolic (non-IV) terms.
    pub fn is_pure_iv(&self) -> bool {
        self.sym_terms.is_empty()
    }

    fn add(mut self, other: &Affine) -> Affine {
        for (&v, &c) in &other.iv_terms {
            *self.iv_terms.entry(v).or_insert(0) += c;
        }
        for (&v, &c) in &other.sym_terms {
            *self.sym_terms.entry(v).or_insert(0) += c;
        }
        self.konst += other.konst;
        self.normalize()
    }

    fn scale(mut self, k: i64) -> Affine {
        for c in self.iv_terms.values_mut() {
            *c *= k;
        }
        for c in self.sym_terms.values_mut() {
            *c *= k;
        }
        self.konst *= k;
        self.normalize()
    }

    fn normalize(mut self) -> Affine {
        self.iv_terms.retain(|_, c| *c != 0);
        self.sym_terms.retain(|_, c| *c != 0);
        self
    }

    /// The coefficient of induction variable `v` (0 if absent).
    pub fn iv_coeff(&self, v: VarId) -> i64 {
        self.iv_terms.get(&v).copied().unwrap_or(0)
    }
}

/// The identity of an array for dependence testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArrayKey {
    /// A global fixed array.
    Global(GlobalId),
    /// A loop-invariant pointer variable (heap array or frame array).
    Var(VarId),
}

/// One array access inside a loop.
#[derive(Debug, Clone)]
pub struct Access {
    /// Which array.
    pub array: ArrayKey,
    /// The subscript as an affine expression, `None` when non-affine.
    pub subscript: Option<Affine>,
    /// True for stores.
    pub is_write: bool,
}

/// Loop bound of the form `iv </<= bound`.
#[derive(Debug, Clone)]
pub struct LoopBound {
    /// The controlling induction variable.
    pub iv: VarId,
    /// The bound, affine in symbols/constants (never in IVs).
    pub bound: Affine,
    /// True if the comparison is inclusive (`<=`).
    pub inclusive: bool,
}

/// Everything the static dependence tests need to know about one loop.
#[derive(Debug, Clone)]
pub struct AffineLoopInfo {
    /// Recognized basic induction variables.
    pub ivs: Vec<InductionVar>,
    /// Array accesses in the loop (payload and iterator alike).
    pub accesses: Vec<Access>,
    /// The loop bound, when the header condition has the canonical form.
    pub bound: Option<LoopBound>,
    /// True if the loop contains calls (any callee).
    pub has_calls: bool,
    /// True if the loop reads or writes through struct-pointer fields
    /// (pointer chasing — outside the affine world).
    pub has_pointer_access: bool,
    /// True if the loop writes scalar globals.
    pub writes_scalar_global: bool,
    /// True if the loop allocates.
    pub has_alloc: bool,
    /// True if the loop prints.
    pub has_io: bool,
}

impl AffineLoopInfo {
    /// Analyzes loop `l` of `view`'s function.
    pub fn compute(view: &FuncView<'_>, live: &Liveness, l: &Loop) -> Self {
        let f = view.func;
        let defined = live.loop_defs(l);
        let invariant = |v: VarId| !defined.contains(&v);

        // --- induction variables: exactly one in-loop def `v = v ± c`.
        // The lowered pattern is `t = add v, c; v = t` with `t` otherwise
        // unused, so recognize through one level of copy.
        let mut def_counts: HashMap<VarId, u32> = HashMap::new();
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                if let Some(d) = inst.def() {
                    *def_counts.entry(d).or_insert(0) += 1;
                }
            }
        }
        // Map from temp -> (base, step) for `t = base ± c` instructions.
        let mut add_temps: HashMap<VarId, (VarId, i64)> = HashMap::new();
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                if let Inst::Bin { dst, op, a, b: rhs } = inst {
                    let step = match (op, a, rhs) {
                        (BinOp::Add, Operand::Var(v), Operand::ConstInt(c)) => Some((*v, *c)),
                        (BinOp::Add, Operand::ConstInt(c), Operand::Var(v)) => Some((*v, *c)),
                        (BinOp::Sub, Operand::Var(v), Operand::ConstInt(c)) => Some((*v, -*c)),
                        _ => None,
                    };
                    if let Some((base, c)) = step {
                        add_temps.insert(*dst, (base, c));
                    }
                }
            }
        }
        let mut ivs = Vec::new();
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                if let Inst::Copy {
                    dst,
                    src: Operand::Var(t),
                } = inst
                {
                    if let Some(&(base, step)) = add_temps.get(t) {
                        if base == *dst && def_counts.get(dst) == Some(&1) {
                            ivs.push(InductionVar { var: *dst, step });
                        }
                    }
                }
            }
        }
        ivs.sort_by_key(|iv| iv.var);
        ivs.dedup_by_key(|iv| iv.var);
        let is_iv = |v: VarId| ivs.iter().any(|iv| iv.var == v);

        // --- affine evaluation of integer expressions within the loop.
        // Resolve a variable to an affine expr by chasing its unique in-loop
        // definition; depth-limited to keep this linear in practice.
        let mut single_def: HashMap<VarId, &Inst> = HashMap::new();
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                if let Some(d) = inst.def() {
                    if def_counts.get(&d) == Some(&1) {
                        single_def.insert(d, inst);
                    }
                }
            }
        }
        fn eval_operand(
            op: &Operand,
            depth: u32,
            is_iv: &dyn Fn(VarId) -> bool,
            invariant: &dyn Fn(VarId) -> bool,
            single_def: &HashMap<VarId, &Inst>,
        ) -> Option<Affine> {
            match op {
                Operand::ConstInt(c) => Some(Affine::constant(*c)),
                Operand::Var(v) => eval_var(*v, depth, is_iv, invariant, single_def),
                _ => None,
            }
        }
        fn eval_var(
            v: VarId,
            depth: u32,
            is_iv: &dyn Fn(VarId) -> bool,
            invariant: &dyn Fn(VarId) -> bool,
            single_def: &HashMap<VarId, &Inst>,
        ) -> Option<Affine> {
            if is_iv(v) {
                return Some(Affine::iv(v));
            }
            if invariant(v) {
                return Some(Affine::sym(v));
            }
            if depth == 0 {
                return None;
            }
            let inst = single_def.get(&v)?;
            match inst {
                Inst::Copy { src, .. } => {
                    eval_operand(src, depth - 1, is_iv, invariant, single_def)
                }
                Inst::Bin { op, a, b, .. } => {
                    let ea = eval_operand(a, depth - 1, is_iv, invariant, single_def)?;
                    let eb = eval_operand(b, depth - 1, is_iv, invariant, single_def)?;
                    match op {
                        BinOp::Add => Some(ea.add(&eb)),
                        BinOp::Sub => Some(ea.add(&eb.scale(-1))),
                        BinOp::Mul if eb.is_constant() => Some(ea.scale(eb.konst)),
                        BinOp::Mul if ea.is_constant() => Some(eb.scale(ea.konst)),
                        BinOp::Shl if eb.is_constant() && (0..62).contains(&eb.konst) => {
                            Some(ea.scale(1 << eb.konst))
                        }
                        _ => None,
                    }
                }
                Inst::Un {
                    op: dca_ir::UnOp::Neg,
                    a,
                    ..
                } => Some(eval_operand(a, depth - 1, is_iv, invariant, single_def)?.scale(-1)),
                _ => None,
            }
        }
        let eval = |op: &Operand| eval_operand(op, 16, &is_iv, &invariant, &single_def);

        // --- collect accesses and loop-shape facts.
        let mut accesses = Vec::new();
        let mut has_calls = false;
        let mut has_pointer_access = false;
        let mut writes_scalar_global = false;
        let mut has_alloc = false;
        let mut has_io = false;
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                match inst {
                    Inst::LoadIndex { base, index, .. } | Inst::StoreIndex { base, index, .. } => {
                        let is_write = matches!(inst, Inst::StoreIndex { .. });
                        let array = match base {
                            MemBase::Global(g) => Some(ArrayKey::Global(*g)),
                            MemBase::Var(v) if invariant(*v) => Some(ArrayKey::Var(*v)),
                            MemBase::Var(_) => None,
                        };
                        match array {
                            Some(array) => accesses.push(Access {
                                array,
                                subscript: eval(index),
                                is_write,
                            }),
                            None => has_pointer_access = true,
                        }
                    }
                    Inst::LoadField { .. } | Inst::StoreField { .. } => {
                        has_pointer_access = true;
                    }
                    Inst::StoreGlobal { .. } => writes_scalar_global = true,
                    Inst::LoadGlobal { .. } => {}
                    Inst::Call { .. } => has_calls = true,
                    Inst::AllocArray { .. } | Inst::AllocStruct { .. } => has_alloc = true,
                    Inst::Print { .. } => has_io = true,
                    _ => {}
                }
            }
        }

        // --- the loop bound from the header terminator: `t = lt/le iv, B`.
        let mut bound = None;
        if let Terminator::Branch {
            cond: Operand::Var(c),
            ..
        } = &f.block(l.header).term
        {
            if let Some(Inst::Bin { op, a, b, .. }) = single_def.get(c) {
                let (iv_op, bound_op, inclusive, flipped) = match op {
                    BinOp::Lt => (a, b, false, false),
                    BinOp::Le => (a, b, true, false),
                    BinOp::Gt => (b, a, false, true),
                    BinOp::Ge => (b, a, true, true),
                    _ => (a, a, false, false),
                };
                let _ = flipped;
                if matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) {
                    if let Operand::Var(v) = iv_op {
                        if is_iv(*v) {
                            if let Some(e) = eval(bound_op) {
                                if e.iv_terms.is_empty() {
                                    bound = Some(LoopBound {
                                        iv: *v,
                                        bound: e,
                                        inclusive,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        AffineLoopInfo {
            ivs,
            accesses,
            bound,
            has_calls,
            has_pointer_access,
            writes_scalar_global,
            has_alloc,
            has_io,
        }
    }

    /// True if every array access has an affine subscript.
    pub fn all_affine(&self) -> bool {
        self.accesses.iter().all(|a| a.subscript.is_some())
    }

    /// True if every array access is affine using *constant-only* terms
    /// (the strict SCoP shape a Polly-style tool requires).
    pub fn all_affine_pure(&self) -> bool {
        self.accesses.iter().all(|a| {
            a.subscript
                .as_ref()
                .map(|s| s.is_pure_iv())
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::Liveness;
    use dca_ir::{compile, FuncView};

    fn info_of(src: &str, tag: &str) -> (dca_ir::Module, AffineLoopInfo) {
        let m = compile(src).expect("compile");
        let view = FuncView::new(&m, m.main().expect("main"));
        let live = Liveness::new(&view);
        let l = view.loops.by_tag(tag).expect("tagged loop").clone();
        let info = AffineLoopInfo::compute(&view, &live, &l);
        (m, info)
    }

    #[test]
    fn recognizes_basic_induction_variable() {
        let (_, info) = info_of(
            "fn main() { let a: [int; 16]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { a[i] = i; } }",
            "l",
        );
        assert_eq!(info.ivs.len(), 1);
        assert_eq!(info.ivs[0].step, 1);
        let b = info.bound.as_ref().expect("bound recognized");
        assert_eq!(b.bound, Affine::constant(16));
        assert!(!b.inclusive);
    }

    #[test]
    fn strided_and_offset_subscripts_are_affine() {
        let (_, info) = info_of(
            "fn main() { let a: [int; 64]; \
             @l: for (let i: int = 0; i < 30; i = i + 2) { a[2 * i + 3] = a[i]; } }",
            "l",
        );
        assert_eq!(info.ivs[0].step, 2);
        assert!(info.all_affine());
        let store = info.accesses.iter().find(|a| a.is_write).expect("store");
        let sub = store.subscript.as_ref().expect("affine");
        assert_eq!(sub.iv_coeff(info.ivs[0].var), 2);
        assert_eq!(sub.konst, 3);
    }

    #[test]
    fn indirect_subscript_is_not_affine() {
        let (_, info) = info_of(
            "fn main() { let a: [int; 16]; let idx: [int; 16]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { a[idx[i]] = i; } }",
            "l",
        );
        assert!(!info.all_affine());
        // The idx[i] load itself is affine; the a[idx[i]] store is not.
        let store = info.accesses.iter().find(|a| a.is_write).expect("store");
        assert!(store.subscript.is_none());
    }

    #[test]
    fn symbolic_bound_and_subscript_offsets() {
        let (_, info) = info_of(
            "fn main(n: int, off: int) { let a: *int = new [int; 128]; \
             @l: for (let i: int = 0; i < n; i = i + 1) { a[i + off] = i; } }",
            "l",
        );
        let b = info.bound.as_ref().expect("bound");
        assert!(!b.bound.is_constant());
        assert!(b.bound.sym_terms.len() == 1);
        assert!(info.all_affine());
        assert!(!info.all_affine_pure(), "offset is symbolic, not constant");
    }

    #[test]
    fn pointer_chasing_flagged() {
        let (_, info) = info_of(
            "struct N { v: int, next: *N }\n\
             fn main() { let p: *N = new N; \
             @walk: while (p != null) { p.v = 1; p = p.next; } }",
            "walk",
        );
        assert!(info.has_pointer_access);
        assert!(info.bound.is_none());
    }

    #[test]
    fn calls_and_io_flagged() {
        let (_, info) = info_of(
            "fn f(x: int) -> int { return x; }\n\
             fn main() { let s: int = 0; \
             @l: for (let i: int = 0; i < 4; i = i + 1) { s = f(s); print(s); } }",
            "l",
        );
        assert!(info.has_calls);
        assert!(info.has_io);
    }

    #[test]
    fn downward_counting_loop_recognized_conservatively() {
        // `for (i = n-1; i >= 0; i--)`: the IV (step -1) is recognized,
        // but the `i >= 0` bound shape is not canonical, so static tools
        // fall back to "no bound" — conservative, never wrong.
        let (_, info) = info_of(
            "fn main(n: int) { let a: *int = new [int; 64];              @l: for (let i: int = 31; i >= 0; i = i - 1) { a[i] = i; } }",
            "l",
        );
        assert_eq!(info.ivs.len(), 1);
        assert_eq!(info.ivs[0].step, -1);
        assert!(info.bound.is_none(), "downward bounds are not extracted");
    }

    #[test]
    fn bound_with_iv_on_the_right_recognized() {
        // `n > i` is the same loop as `i < n`.
        let (_, info) = info_of(
            "fn main(n: int) { let a: *int = new [int; 64];              @l: for (let i: int = 0; n > i; i = i + 1) { a[i] = i; } }",
            "l",
        );
        let b = info.bound.as_ref().expect("bound recognized");
        assert!(!b.inclusive);
        assert!(b.bound.sym_terms.len() == 1);
    }

    #[test]
    fn strided_iv_with_shift_subscript() {
        let (_, info) = info_of(
            "fn main() { let a: [int; 64];              @l: for (let i: int = 0; i < 8; i = i + 1) { a[(i << 2) + 1] = i; } }",
            "l",
        );
        assert!(info.all_affine(), "shifts by constants are affine scaling");
        let store = info.accesses.iter().find(|a| a.is_write).expect("store");
        assert_eq!(
            store
                .subscript
                .as_ref()
                .expect("affine")
                .iv_coeff(info.ivs[0].var),
            4
        );
    }

    #[test]
    fn nested_loop_outer_iv_symbolic_in_inner() {
        let (_, info) = info_of(
            "fn main() { let a: [int; 64]; \
             for (let i: int = 0; i < 8; i = i + 1) { \
               @inner: for (let j: int = 0; j < 8; j = j + 1) { a[8 * i + j] = 1; } } }",
            "inner",
        );
        // From the inner loop's perspective, `i` is loop-invariant, so the
        // subscript is affine with a symbolic term.
        assert!(info.all_affine());
        assert!(!info.all_affine_pure());
    }
}
