//! Static reduction, histogram and privatization classification.
//!
//! Loop-carried scalars and repeatedly-updated array cells defeat plain
//! dependence tests, but specific *idioms* — `sum += e`, `m = max(m, e)`,
//! `hist[f(i)] += e` — are parallelizable with a combining step. The
//! Idioms and ICC baselines recognize (subsets of) these statically; the
//! parallelization stage (paper §IV-C) uses the same classification to emit
//! reduction clauses and privatization.

use crate::liveness::Liveness;
use dca_ir::{BinOp, FuncView, Inst, Intrinsic, Loop, MemBase, Operand, VarId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How a reduction combines values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReductionOp {
    /// `+` (also `-` onto the accumulator, which is a sum of negated terms).
    Sum,
    /// `*`.
    Product,
    /// `imin`/`fmin`.
    Min,
    /// `imax`/`fmax`.
    Max,
    /// `&`, `|`, `^`.
    Bitwise,
}

impl std::fmt::Display for ReductionOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReductionOp::Sum => write!(f, "sum"),
            ReductionOp::Product => write!(f, "product"),
            ReductionOp::Min => write!(f, "min"),
            ReductionOp::Max => write!(f, "max"),
            ReductionOp::Bitwise => write!(f, "bitwise"),
        }
    }
}

/// A recognized scalar reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarReduction {
    /// The accumulator variable.
    pub var: VarId,
    /// The combining operation.
    pub op: ReductionOp,
}

/// A recognized histogram (array reduction): `array[e] op= v` where the
/// array is not otherwise touched in the loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// The updated array.
    pub array: crate::affine::ArrayKey,
    /// The combining operation.
    pub op: ReductionOp,
}

/// Classification of every loop-carried scalar of one loop.
#[derive(Debug, Clone, Default)]
pub struct ReductionInfo {
    /// Scalars recognized as reductions.
    pub reductions: Vec<ScalarReduction>,
    /// Array histograms.
    pub histograms: Vec<Histogram>,
    /// Loop-carried scalars that are neither induction variables (per the
    /// caller-provided set) nor reductions — parallelization blockers.
    pub unresolved_carried: BTreeSet<VarId>,
}

fn bin_reduction_op(op: BinOp) -> Option<ReductionOp> {
    match op {
        BinOp::Add | BinOp::Sub => Some(ReductionOp::Sum),
        BinOp::Mul => Some(ReductionOp::Product),
        BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => Some(ReductionOp::Bitwise),
        _ => None,
    }
}

fn intrin_reduction_op(op: Intrinsic) -> Option<ReductionOp> {
    match op {
        Intrinsic::Imin | Intrinsic::Fmin => Some(ReductionOp::Min),
        Intrinsic::Imax | Intrinsic::Fmax => Some(ReductionOp::Max),
        _ => None,
    }
}

/// Structural equivalence of two operands within a loop body: identical
/// constants/variables, or temporaries whose (unique) defining instructions
/// are recursively structurally equal. This is how a recomputed subscript
/// (`hist[f(i)]` evaluated once for the load and once for the store) is
/// recognized as the *same* index while `a[i]` vs `a[i-1]` is not.
fn operands_equivalent(
    a: &Operand,
    b: &Operand,
    single_def: &HashMap<VarId, &Inst>,
    depth: u32,
) -> bool {
    if a == b {
        return true;
    }
    if depth == 0 {
        return false;
    }
    let (va, vb) = match (a, b) {
        (Operand::Var(x), Operand::Var(y)) => (*x, *y),
        _ => return false,
    };
    let (da, db) = match (single_def.get(&va), single_def.get(&vb)) {
        (Some(x), Some(y)) => (*x, *y),
        _ => return false,
    };
    match (da, db) {
        (Inst::Copy { src: sa, .. }, Inst::Copy { src: sb, .. }) => {
            operands_equivalent(sa, sb, single_def, depth - 1)
        }
        (
            Inst::Bin {
                op: oa,
                a: aa,
                b: ba,
                ..
            },
            Inst::Bin {
                op: ob,
                a: ab,
                b: bb,
                ..
            },
        ) => {
            oa == ob
                && operands_equivalent(aa, ab, single_def, depth - 1)
                && operands_equivalent(ba, bb, single_def, depth - 1)
        }
        (Inst::Un { op: oa, a: aa, .. }, Inst::Un { op: ob, a: ab, .. }) => {
            oa == ob && operands_equivalent(aa, ab, single_def, depth - 1)
        }
        (
            Inst::Intrin {
                op: oa, args: aa, ..
            },
            Inst::Intrin {
                op: ob, args: ab, ..
            },
        ) => {
            oa == ob
                && aa.len() == ab.len()
                && aa
                    .iter()
                    .zip(ab)
                    .all(|(x, y)| operands_equivalent(x, y, single_def, depth - 1))
        }
        (
            Inst::LoadIndex {
                base: ba,
                index: ia,
                ..
            },
            Inst::LoadIndex {
                base: bb,
                index: ib,
                ..
            },
        ) => ba == bb && operands_equivalent(ia, ib, single_def, depth - 1),
        (
            Inst::LoadField {
                obj: oa, field: fa, ..
            },
            Inst::LoadField {
                obj: ob, field: fb, ..
            },
        ) => fa == fb && operands_equivalent(oa, ob, single_def, depth - 1),
        (Inst::LoadGlobal { global: ga, .. }, Inst::LoadGlobal { global: gb, .. }) => ga == gb,
        _ => false,
    }
}

impl ReductionInfo {
    /// Classifies loop `l`. `ivs` are the recognized induction variables
    /// (and any other iterator-slice variables) to leave out of the
    /// reduction/unresolved partition.
    pub fn compute(view: &FuncView<'_>, live: &Liveness, l: &Loop, ivs: &BTreeSet<VarId>) -> Self {
        let f = view.func;
        let carried: BTreeSet<VarId> = live
            .loop_carried(l)
            .into_iter()
            .filter(|v| !ivs.contains(v))
            .collect();

        // Gather per-variable facts: every def site and every use site of
        // carried scalars inside the loop.
        #[derive(Default)]
        struct VarFacts {
            /// `(temp, op)` for defs of the form `x = copy t` where
            /// `t = x op e` / `t = op(x, e)`.
            reduction_defs: usize,
            other_defs: usize,
            /// Uses outside its own reduction pattern.
            outside_uses: usize,
        }
        // First find candidate combine temps: t = x op e.
        // temp -> (accumulator, op)
        let mut combine: HashMap<VarId, (VarId, ReductionOp)> = HashMap::new();
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                match inst {
                    Inst::Bin { dst, op, a, b: rhs } => {
                        if let Some(rop) = bin_reduction_op(*op) {
                            // Accumulator on the left; for commutative ops
                            // also on the right. `x - e` reduces; `e - x`
                            // does not.
                            if let Operand::Var(x) = a {
                                if carried.contains(x) {
                                    combine.insert(*dst, (*x, rop));
                                    continue;
                                }
                            }
                            if op.is_commutative() {
                                if let Operand::Var(x) = rhs {
                                    if carried.contains(x) {
                                        combine.insert(*dst, (*x, rop));
                                    }
                                }
                            }
                        }
                    }
                    Inst::Intrin { dst, op, args } => {
                        if let Some(rop) = intrin_reduction_op(*op) {
                            for a in args {
                                if let Operand::Var(x) = a {
                                    if carried.contains(x) {
                                        combine.insert(*dst, (*x, rop));
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // Propagate combines through additive/multiplicative chains:
        // `s = s + a + b` lowers to `t1 = add s, a; t2 = add t1, b;
        // s = t2`, so a temp combining with the accumulator makes the
        // next same-op combine on top of it a combine too (left operand
        // only for the non-commutative `-`).
        let mut grew = true;
        while grew {
            grew = false;
            for &b in &l.blocks {
                for inst in &f.block(b).insts {
                    if let Inst::Bin { dst, op, a, b: rhs } = inst {
                        if combine.contains_key(dst) {
                            continue;
                        }
                        let Some(rop) = bin_reduction_op(*op) else {
                            continue;
                        };
                        let from_left = matches!(a, Operand::Var(t)
                            if combine.get(t).map(|&(_, r)| r == rop).unwrap_or(false));
                        let from_right = op.is_commutative()
                            && matches!(rhs, Operand::Var(t)
                                if combine.get(t).map(|&(_, r)| r == rop).unwrap_or(false));
                        let src = if from_left {
                            a.as_var()
                        } else if from_right {
                            rhs.as_var()
                        } else {
                            None
                        };
                        if let Some(tsrc) = src {
                            let (x, r) = combine[&tsrc];
                            combine.insert(*dst, (x, r));
                            grew = true;
                        }
                    }
                }
            }
        }
        let mut facts: BTreeMap<VarId, VarFacts> =
            carried.iter().map(|&v| (v, VarFacts::default())).collect();
        let mut var_ops: BTreeMap<VarId, BTreeSet<ReductionOp>> = BTreeMap::new();
        let mut uses = Vec::new();
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                // Defs of carried vars.
                if let Some(d) = inst.def() {
                    if carried.contains(&d) {
                        let is_reduction_def = match inst {
                            Inst::Copy {
                                src: Operand::Var(t),
                                ..
                            } => matches!(combine.get(t), Some(&(x, _)) if x == d),
                            _ => false,
                        };
                        let fact = facts.get_mut(&d).expect("carried var");
                        if is_reduction_def {
                            fact.reduction_defs += 1;
                            if let Inst::Copy {
                                src: Operand::Var(t),
                                ..
                            } = inst
                            {
                                let (_, op) = combine[t];
                                var_ops.entry(d).or_default().insert(op);
                            }
                        } else {
                            fact.other_defs += 1;
                        }
                        continue;
                    }
                }
                // Uses of carried vars outside their own combine pattern.
                uses.clear();
                inst.uses_into(&mut uses);
                for &u in &uses {
                    if !carried.contains(&u) {
                        continue;
                    }
                    let in_own_combine = match inst {
                        Inst::Bin { dst, .. } | Inst::Intrin { dst, .. } => {
                            matches!(combine.get(dst), Some(&(x, _)) if x == u)
                        }
                        _ => false,
                    };
                    if !in_own_combine {
                        facts.get_mut(&u).expect("carried var").outside_uses += 1;
                    }
                }
            }
            // Terminator uses count as outside uses.
            for u in f.block(b).term.uses() {
                if let Some(fact) = facts.get_mut(&u) {
                    fact.outside_uses += 1;
                }
            }
        }
        let mut reductions = Vec::new();
        let mut unresolved_carried = BTreeSet::new();
        for (&v, fact) in &facts {
            let ops = var_ops.get(&v).cloned().unwrap_or_default();
            let compatible =
                ops.len() == 1 || (ops.len() > 1 && ops.iter().all(|o| *o == ReductionOp::Sum));
            if fact.reduction_defs > 0
                && fact.other_defs == 0
                && fact.outside_uses == 0
                && compatible
            {
                reductions.push(ScalarReduction {
                    var: v,
                    op: ops.into_iter().next().expect("at least one op"),
                });
            } else {
                unresolved_carried.insert(v);
            }
        }

        // Unique in-loop definitions, for structural index comparison.
        let mut def_counts2: HashMap<VarId, u32> = HashMap::new();
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                if let Some(d) = inst.def() {
                    *def_counts2.entry(d).or_insert(0) += 1;
                }
            }
        }
        let mut single_def: HashMap<VarId, &Inst> = HashMap::new();
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                if let Some(d) = inst.def() {
                    if def_counts2.get(&d) == Some(&1) {
                        single_def.insert(d, inst);
                    }
                }
            }
        }

        // Histograms: `A[e] = load A[e] op v` with A not otherwise accessed.
        let mut histograms = Vec::new();
        let mut array_accesses: BTreeMap<crate::affine::ArrayKey, Vec<(bool, usize)>> =
            BTreeMap::new();
        // Count accesses per array; indexes into a flat list for matching.
        let mut flat: Vec<(&Inst, bool)> = Vec::new();
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                let (base, is_write) = match inst {
                    Inst::LoadIndex { base, .. } => (Some(base), false),
                    Inst::StoreIndex { base, .. } => (Some(base), true),
                    _ => (None, false),
                };
                if let Some(base) = base {
                    let key = match base {
                        MemBase::Global(g) => crate::affine::ArrayKey::Global(*g),
                        MemBase::Var(v) => crate::affine::ArrayKey::Var(*v),
                    };
                    array_accesses
                        .entry(key)
                        .or_default()
                        .push((is_write, flat.len()));
                    flat.push((inst, is_write));
                }
            }
        }
        'arrays: for (key, accs) in &array_accesses {
            // Exactly pairs of load+store in update form.
            let writes: Vec<usize> = accs.iter().filter(|(w, _)| *w).map(|&(_, i)| i).collect();
            let reads: Vec<usize> = accs.iter().filter(|(w, _)| !*w).map(|&(_, i)| i).collect();
            if writes.is_empty() || writes.len() != reads.len() {
                continue;
            }
            let mut op_seen: Option<ReductionOp> = None;
            for &wi in &writes {
                let (store, _) = flat[wi];
                let (s_index, s_value) = match store {
                    Inst::StoreIndex { index, value, .. } => (index, value),
                    _ => unreachable!("writes are stores"),
                };
                // Stored value must be `t = loaded op e` where the load is
                // from the same array at a *structurally equal* index (the
                // subscript may be recomputed into a fresh temporary
                // between load and store, so temp identity is too strict,
                // but `a[i]` vs `a[i-1]` must not match).
                let tv = match s_value {
                    Operand::Var(t) => *t,
                    _ => continue 'arrays,
                };
                // Find `t = bin(load_t, e)` and `load_t = load key[index]`.
                let mut ok = false;
                for &b2 in &l.blocks {
                    for inst2 in &f.block(b2).insts {
                        // Accept `t = loaded op e` both as a binary op and
                        // as a min/max intrinsic.
                        let (dst, rop, operands): (VarId, ReductionOp, Vec<&Operand>) = match inst2
                        {
                            Inst::Bin { dst, op, a, b: rhs } => {
                                let rop = match bin_reduction_op(*op) {
                                    Some(r) => r,
                                    None => continue,
                                };
                                (*dst, rop, vec![a, rhs])
                            }
                            Inst::Intrin { dst, op, args } => {
                                let rop = match intrin_reduction_op(*op) {
                                    Some(r) => r,
                                    None => continue,
                                };
                                (*dst, rop, args.iter().collect())
                            }
                            _ => continue,
                        };
                        {
                            if dst != tv {
                                continue;
                            }
                            // One operand must be a load of key[same index].
                            let mut load_side = None;
                            for side in operands {
                                if let Operand::Var(lv) = side {
                                    for &ri in &reads {
                                        if let (
                                            Inst::LoadIndex {
                                                dst: ld,
                                                index: l_index,
                                                ..
                                            },
                                            _,
                                        ) = flat[ri]
                                        {
                                            if ld == lv
                                                && operands_equivalent(
                                                    l_index,
                                                    s_index,
                                                    &single_def,
                                                    12,
                                                )
                                            {
                                                load_side = Some(rop);
                                            }
                                        }
                                    }
                                }
                            }
                            if let Some(rop) = load_side {
                                match op_seen {
                                    None => op_seen = Some(rop),
                                    Some(prev) if prev == rop => {}
                                    _ => continue 'arrays,
                                }
                                ok = true;
                            }
                        }
                    }
                }
                if !ok {
                    continue 'arrays;
                }
            }
            if let Some(op) = op_seen {
                histograms.push(Histogram { array: *key, op });
            }
        }

        ReductionInfo {
            reductions,
            histograms,
            unresolved_carried,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::Liveness;
    use dca_ir::{compile, FuncView};

    fn classify(src: &str, tag: &str, ivs: &[&str]) -> (dca_ir::Module, ReductionInfo) {
        let m = compile(src).expect("compile");
        let view = FuncView::new(&m, m.main().expect("main"));
        let live = Liveness::new(&view);
        let l = view.loops.by_tag(tag).expect("tag").clone();
        let f = m.func(m.main().expect("main"));
        let iv_set: BTreeSet<VarId> = f
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| ivs.contains(&v.name.as_str()))
            .map(|(i, _)| VarId(i as u32))
            .collect();
        let info = ReductionInfo::compute(&view, &live, &l, &iv_set);
        (m, info)
    }

    #[test]
    fn sum_reduction_recognized() {
        let (_, info) = classify(
            "fn main() -> int { let s: int = 0; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { s = s + i; } return s; }",
            "l",
            &["i"],
        );
        assert_eq!(info.reductions.len(), 1);
        assert_eq!(info.reductions[0].op, ReductionOp::Sum);
        assert!(info.unresolved_carried.is_empty());
    }

    #[test]
    fn max_reduction_via_intrinsic() {
        let (_, info) = classify(
            "fn main() -> int { let m: int = 0; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { m = imax(m, i * 3 % 7); } \
             return m; }",
            "l",
            &["i"],
        );
        assert_eq!(info.reductions.len(), 1);
        assert_eq!(info.reductions[0].op, ReductionOp::Max);
    }

    #[test]
    fn accumulator_read_elsewhere_is_unresolved() {
        // `s` is both accumulated and consumed by the payload — not a
        // clean reduction.
        let (_, info) = classify(
            "fn main() -> int { let s: int = 0; let a: [int; 8]; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { s = s + i; a[i] = s; } \
             return s; }",
            "l",
            &["i"],
        );
        assert!(info.reductions.is_empty());
        assert_eq!(info.unresolved_carried.len(), 1);
    }

    #[test]
    fn plain_recurrence_is_unresolved() {
        let (_, info) = classify(
            "fn main() -> int { let x: int = 1; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { x = x * 2 + 1; } return x; }",
            "l",
            &["i"],
        );
        // x = (x*2)+1: the add-of-constant on top of the multiply makes two
        // chained combines; x's def is a copy from the add temp whose
        // operand is the multiply temp, not x itself -> not a reduction.
        assert!(info.reductions.is_empty());
        assert!(info.unresolved_carried.len() == 1);
    }

    #[test]
    fn histogram_recognized() {
        let (_, info) = classify(
            "fn main() { let hist: [int; 10]; let data: [int; 32]; \
             @l: for (let i: int = 0; i < 32; i = i + 1) { \
               hist[data[i] % 10] = hist[data[i] % 10] + 1; } }",
            "l",
            &["i"],
        );
        assert_eq!(info.histograms.len(), 1);
        assert_eq!(info.histograms[0].op, ReductionOp::Sum);
    }

    #[test]
    fn array_with_unrelated_write_is_not_histogram() {
        let (_, info) = classify(
            "fn main() { let a: [int; 16]; \
             @l: for (let i: int = 0; i < 16; i = i + 1) { a[i] = i; } }",
            "l",
            &["i"],
        );
        assert!(info.histograms.is_empty());
    }

    #[test]
    fn float_sum_reduction() {
        let (_, info) = classify(
            "fn main() -> float { let s: float = 0.0; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { s = s + i as float; } \
             return s; }",
            "l",
            &["i"],
        );
        assert_eq!(info.reductions.len(), 1);
        assert_eq!(info.reductions[0].op, ReductionOp::Sum);
    }

    #[test]
    fn subtraction_reduces_but_not_reversed() {
        let (_, info) = classify(
            "fn main() -> int { let s: int = 100; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { s = s - i; } return s; }",
            "l",
            &["i"],
        );
        assert_eq!(info.reductions.len(), 1);
        let (_, info) = classify(
            "fn main() -> int { let s: int = 100; \
             @l: for (let i: int = 0; i < 8; i = i + 1) { s = i - s; } return s; }",
            "l",
            &["i"],
        );
        assert!(info.reductions.is_empty());
    }
}
