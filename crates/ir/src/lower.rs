//! Lowering from the checked AST to IR.
//!
//! Each function is lowered to a CFG of basic blocks. Short-circuit `&&` and
//! `||` become control flow; `for`/`while` loops become the canonical
//! header/body/latch shape whose back edge targets the condition block, so
//! natural-loop detection recovers exactly the source loops. Source loop
//! tags (`@name:`) are recorded against the header block.

use crate::module::*;
use dca_lang::ast::{self, Expr, ExprKind, PrintArg, Stmt, StmtKind};
use dca_lang::sema::{CheckedProgram, Ty};
use dca_lang::{Error, ErrorKind};
use std::collections::HashMap;

/// Lowers a checked program to an IR [`Module`].
///
/// # Errors
///
/// Returns an error for constructs the IR cannot represent (currently only
/// non-constant global initializers).
pub fn lower(prog: &CheckedProgram) -> Result<Module, Error> {
    let mut globals = Vec::new();
    let mut global_ids = HashMap::new();
    for (i, g) in prog.ast.globals.iter().enumerate() {
        let init = match &g.init {
            None => None,
            Some(e) => Some(const_operand(e)?),
        };
        let ty = resolve(prog, &g.ty);
        global_ids.insert(g.name.clone(), GlobalId(i as u32));
        globals.push(GlobalInfo {
            name: g.name.clone(),
            ty,
            init,
        });
    }
    let mut func_ids = HashMap::new();
    for (i, f) in prog.ast.functions.iter().enumerate() {
        func_ids.insert(f.name.clone(), FuncId(i as u32));
    }
    let mut funcs = Vec::new();
    for f in &prog.ast.functions {
        funcs.push(FnLower::new(prog, &global_ids, &func_ids, f).run()?);
    }
    Ok(Module {
        structs: prog.structs.clone(),
        globals,
        funcs,
    })
}

fn const_operand(e: &Expr) -> Result<Operand, Error> {
    match &e.kind {
        ExprKind::IntLit(v) => Ok(Operand::ConstInt(*v)),
        ExprKind::FloatLit(v) => Ok(Operand::ConstFloat(*v)),
        ExprKind::BoolLit(v) => Ok(Operand::ConstBool(*v)),
        ExprKind::NullLit => Ok(Operand::Null),
        ExprKind::Unary(ast::UnOp::Neg, inner) => match const_operand(inner)? {
            Operand::ConstInt(v) => Ok(Operand::ConstInt(-v)),
            Operand::ConstFloat(v) => Ok(Operand::ConstFloat(-v)),
            _ => Err(Error::new(
                ErrorKind::Type,
                "global initializer must be a numeric constant",
                e.pos,
            )),
        },
        _ => Err(Error::new(
            ErrorKind::Type,
            "global initializer must be a constant literal",
            e.pos,
        )),
    }
}

fn resolve(prog: &CheckedProgram, t: &ast::TyAst) -> Ty {
    // Mirrors the checker's resolution; all names were validated there.
    match t {
        ast::TyAst::Int => Ty::Int,
        ast::TyAst::Float => Ty::Float,
        ast::TyAst::Bool => Ty::Bool,
        ast::TyAst::Ptr(inner) => Ty::Ptr(Box::new(resolve(prog, inner))),
        ast::TyAst::Array(elem, n) => Ty::Array(Box::new(resolve(prog, elem)), *n),
        ast::TyAst::Named(name) => {
            let i = prog
                .structs
                .iter()
                .position(|s| s.name == *name)
                .expect("checker resolved struct names");
            Ty::Struct(i)
        }
    }
}

/// Where `break` and `continue` jump inside the innermost loop.
struct LoopCtx {
    continue_to: BlockId,
    break_to: BlockId,
}

struct FnLower<'a> {
    prog: &'a CheckedProgram,
    global_ids: &'a HashMap<String, GlobalId>,
    func_ids: &'a HashMap<String, FuncId>,
    src: &'a ast::FnDef,
    vars: Vec<VarInfo>,
    scopes: Vec<HashMap<String, VarId>>,
    blocks: Vec<(Vec<Inst>, Option<Terminator>)>,
    cur: BlockId,
    loops: Vec<LoopCtx>,
    loop_tags: HashMap<BlockId, String>,
    temp_count: u32,
}

impl<'a> FnLower<'a> {
    fn new(
        prog: &'a CheckedProgram,
        global_ids: &'a HashMap<String, GlobalId>,
        func_ids: &'a HashMap<String, FuncId>,
        src: &'a ast::FnDef,
    ) -> Self {
        FnLower {
            prog,
            global_ids,
            func_ids,
            src,
            vars: Vec::new(),
            scopes: vec![HashMap::new()],
            blocks: vec![(Vec::new(), None)],
            cur: BlockId(0),
            loops: Vec::new(),
            loop_tags: HashMap::new(),
            temp_count: 0,
        }
    }

    fn run(mut self) -> Result<Function, Error> {
        let mut params = Vec::new();
        for (pname, pty) in &self.src.params {
            let ty = resolve(self.prog, pty);
            let v = self.new_var(pname.clone(), ty, false);
            params.push(v);
        }
        for s in &self.src.body {
            self.stmt(s)?;
        }
        let ret = match &self.src.ret {
            None => Ty::Unit,
            Some(t) => resolve(self.prog, t),
        };
        // Implicit return with a zero value if control falls off the end.
        if self.blocks[self.cur.index()].1.is_none() {
            let value = match &ret {
                Ty::Unit => None,
                Ty::Int => Some(Operand::ConstInt(0)),
                Ty::Float => Some(Operand::ConstFloat(0.0)),
                Ty::Bool => Some(Operand::ConstBool(false)),
                _ => Some(Operand::Null),
            };
            self.term(Terminator::Return(value));
        }
        let mut f = Function {
            name: self.src.name.clone(),
            params,
            ret,
            vars: self.vars,
            blocks: self
                .blocks
                .into_iter()
                .map(|(insts, term)| Block {
                    insts,
                    term: term.unwrap_or(Terminator::Return(None)),
                })
                .collect(),
            loop_tags: self.loop_tags,
        };
        prune_unreachable(&mut f);
        Ok(f)
    }

    // ---- building helpers --------------------------------------------------

    fn new_var(&mut self, name: String, ty: Ty, is_temp: bool) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo { name, ty, is_temp });
        if !is_temp {
            self.scopes
                .last_mut()
                .expect("scope stack never empty")
                .insert(self.vars[id.index()].name.clone(), id);
        }
        id
    }

    fn temp(&mut self, ty: Ty) -> VarId {
        let n = self.temp_count;
        self.temp_count += 1;
        self.new_var(format!("t{n}"), ty, true)
    }

    fn emit(&mut self, inst: Inst) {
        let b = &mut self.blocks[self.cur.index()];
        debug_assert!(b.1.is_none(), "emitting into a terminated block");
        b.0.push(inst);
    }

    fn term(&mut self, t: Terminator) {
        let b = &mut self.blocks[self.cur.index()];
        if b.1.is_none() {
            b.1 = Some(t);
        }
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push((Vec::new(), None));
        id
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(*v);
            }
        }
        None
    }

    fn expr_ty(&self, e: &Expr) -> &Ty {
        self.prog.types.ty(e.id)
    }

    // ---- statements ---------------------------------------------------------

    fn block_stmts(&mut self, body: &[Stmt]) -> Result<(), Error> {
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), Error> {
        match &s.kind {
            StmtKind::Let { name, ty, init } => {
                let ty = resolve(self.prog, ty);
                let init_op = match init {
                    Some(e) => Some(self.expr(e)?),
                    None => None,
                };
                let v = self.new_var(name.clone(), ty.clone(), false);
                let op = init_op.unwrap_or(match &ty {
                    Ty::Int => Operand::ConstInt(0),
                    Ty::Float => Operand::ConstFloat(0.0),
                    Ty::Bool => Operand::ConstBool(false),
                    _ => Operand::Null,
                });
                if !matches!(ty, Ty::Array(..)) {
                    self.emit(Inst::Copy { dst: v, src: op });
                }
                Ok(())
            }
            StmtKind::Assign { target, value } => {
                let v = self.expr(value)?;
                self.assign(target, v)
            }
            StmtKind::Expr(e) => {
                self.expr_discard(e)?;
                Ok(())
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.expr(cond)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.term(Terminator::Branch {
                    cond: c,
                    then_bb,
                    else_bb,
                });
                self.switch_to(then_bb);
                self.block_stmts(then_body)?;
                self.term(Terminator::Jump(join));
                self.switch_to(else_bb);
                self.block_stmts(else_body)?;
                self.term(Terminator::Jump(join));
                self.switch_to(join);
                Ok(())
            }
            StmtKind::While { tag, cond, body } => {
                let header = self.new_block();
                let exit = self.new_block();
                if let Some(t) = tag {
                    self.loop_tags.insert(header, t.clone());
                }
                self.term(Terminator::Jump(header));
                self.switch_to(header);
                let c = self.expr(cond)?;
                let body_bb = self.new_block();
                self.term(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    continue_to: header,
                    break_to: exit,
                });
                self.block_stmts(body)?;
                self.loops.pop();
                self.term(Terminator::Jump(header));
                self.switch_to(exit);
                Ok(())
            }
            StmtKind::For {
                tag,
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                self.stmt(init)?;
                let header = self.new_block();
                let exit = self.new_block();
                if let Some(t) = tag {
                    self.loop_tags.insert(header, t.clone());
                }
                self.term(Terminator::Jump(header));
                self.switch_to(header);
                let c = self.expr(cond)?;
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                self.term(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    continue_to: step_bb,
                    break_to: exit,
                });
                self.block_stmts(body)?;
                self.loops.pop();
                self.term(Terminator::Jump(step_bb));
                self.switch_to(step_bb);
                self.stmt(step)?;
                self.term(Terminator::Jump(header));
                self.scopes.pop();
                self.switch_to(exit);
                Ok(())
            }
            StmtKind::Break => {
                let target = self
                    .loops
                    .last()
                    .expect("checker verified break is inside a loop")
                    .break_to;
                self.term(Terminator::Jump(target));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            StmtKind::Continue => {
                let target = self
                    .loops
                    .last()
                    .expect("checker verified continue is inside a loop")
                    .continue_to;
                self.term(Terminator::Jump(target));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            StmtKind::Return(value) => {
                let op = match value {
                    Some(e) => Some(self.expr(e)?),
                    None => None,
                };
                self.term(Terminator::Return(op));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            StmtKind::Print(args) => {
                let mut ops = Vec::new();
                for a in args {
                    match a {
                        PrintArg::Label(s) => ops.push(PrintOp::Label(s.clone())),
                        PrintArg::Value(e) => {
                            let v = self.expr(e)?;
                            ops.push(PrintOp::Value(v));
                        }
                    }
                }
                self.emit(Inst::Print { args: ops });
                Ok(())
            }
            StmtKind::Block(body) => self.block_stmts(body),
        }
    }

    fn assign(&mut self, target: &Expr, value: Operand) -> Result<(), Error> {
        match &target.kind {
            ExprKind::Var(name) => {
                if let Some(v) = self.lookup(name) {
                    self.emit(Inst::Copy { dst: v, src: value });
                } else {
                    let g = self.global_ids[name.as_str()];
                    self.emit(Inst::StoreGlobal { global: g, value });
                }
                Ok(())
            }
            ExprKind::Index(base, idx) => {
                let b = self.index_base(base)?;
                let i = self.expr(idx)?;
                self.emit(Inst::StoreIndex {
                    base: b,
                    index: i,
                    value,
                });
                Ok(())
            }
            ExprKind::Field(base, fname) => {
                let (obj, field) = self.field_ref(base, fname)?;
                self.emit(Inst::StoreField { obj, field, value });
                Ok(())
            }
            _ => unreachable!("checker verified lvalue shape"),
        }
    }

    fn field_ref(&mut self, base: &Expr, fname: &str) -> Result<(Operand, u32), Error> {
        let sid = match self.expr_ty(base) {
            Ty::Ptr(inner) => match inner.as_ref() {
                Ty::Struct(i) => *i,
                _ => unreachable!("checker verified struct pointer"),
            },
            _ => unreachable!("checker verified struct pointer"),
        };
        let field = self.prog.structs[sid]
            .field_index(fname)
            .expect("checker resolved field") as u32;
        let obj = self.expr(base)?;
        Ok((obj, field))
    }

    fn index_base(&mut self, base: &Expr) -> Result<MemBase, Error> {
        if let ExprKind::Var(name) = &base.kind {
            if let Some(v) = self.lookup(name) {
                return Ok(MemBase::Var(v));
            }
            let g = self.global_ids[name.as_str()];
            match &self.prog.types.ty(base.id) {
                Ty::Array(..) => return Ok(MemBase::Global(g)),
                _ => {
                    // A scalar pointer global: load it first.
                    let ty = self.expr_ty(base).clone();
                    let t = self.temp(ty);
                    self.emit(Inst::LoadGlobal { dst: t, global: g });
                    return Ok(MemBase::Var(t));
                }
            }
        }
        // Arbitrary pointer-valued expression.
        let op = self.expr(base)?;
        match op {
            Operand::Var(v) => Ok(MemBase::Var(v)),
            other => {
                let ty = self.expr_ty(base).clone();
                let t = self.temp(ty);
                self.emit(Inst::Copy { dst: t, src: other });
                Ok(MemBase::Var(t))
            }
        }
    }

    // ---- expressions ---------------------------------------------------------

    /// Lowers an expression used only for effect (a unit call).
    fn expr_discard(&mut self, e: &Expr) -> Result<(), Error> {
        if let ExprKind::Call(name, args) = &e.kind {
            if Intrinsic::from_name(name).is_none() && !self.is_builtin(name) {
                let mut ops = Vec::new();
                for a in args {
                    ops.push(self.expr(a)?);
                }
                let func = self.func_ids[name.as_str()];
                let dst = match self.expr_ty(e) {
                    Ty::Unit => None,
                    ty => Some(self.temp(ty.clone())),
                };
                self.emit(Inst::Call {
                    dst,
                    func,
                    args: ops,
                });
                return Ok(());
            }
        }
        self.expr(e)?;
        Ok(())
    }

    fn is_builtin(&self, name: &str) -> bool {
        dca_lang::sema::BUILTINS.iter().any(|(n, _, _)| *n == name)
    }

    fn expr(&mut self, e: &Expr) -> Result<Operand, Error> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Operand::ConstInt(*v)),
            ExprKind::FloatLit(v) => Ok(Operand::ConstFloat(*v)),
            ExprKind::BoolLit(v) => Ok(Operand::ConstBool(*v)),
            ExprKind::NullLit => Ok(Operand::Null),
            ExprKind::Var(name) => {
                if let Some(v) = self.lookup(name) {
                    Ok(Operand::Var(v))
                } else {
                    let g = self.global_ids[name.as_str()];
                    let ty = self.expr_ty(e).clone();
                    let t = self.temp(ty);
                    self.emit(Inst::LoadGlobal { dst: t, global: g });
                    Ok(Operand::Var(t))
                }
            }
            ExprKind::Unary(op, a) => {
                let av = self.expr(a)?;
                let ty = self.expr_ty(e).clone();
                let t = self.temp(ty);
                let op = match op {
                    ast::UnOp::Neg => UnOp::Neg,
                    ast::UnOp::Not => UnOp::Not,
                };
                self.emit(Inst::Un { dst: t, op, a: av });
                Ok(Operand::Var(t))
            }
            ExprKind::Binary(op, a, b) if op.is_logical() => self.short_circuit(*op, a, b),
            ExprKind::Binary(op, a, b) => {
                let av = self.expr(a)?;
                let bv = self.expr(b)?;
                let ty = self.expr_ty(e).clone();
                let t = self.temp(ty);
                let op = lower_binop(*op);
                self.emit(Inst::Bin {
                    dst: t,
                    op,
                    a: av,
                    b: bv,
                });
                Ok(Operand::Var(t))
            }
            ExprKind::Index(base, idx) => {
                let b = self.index_base(base)?;
                let i = self.expr(idx)?;
                let ty = self.expr_ty(e).clone();
                let t = self.temp(ty);
                self.emit(Inst::LoadIndex {
                    dst: t,
                    base: b,
                    index: i,
                });
                Ok(Operand::Var(t))
            }
            ExprKind::Field(base, fname) => {
                let (obj, field) = self.field_ref(base, fname)?;
                let ty = self.expr_ty(e).clone();
                let t = self.temp(ty);
                self.emit(Inst::LoadField { dst: t, obj, field });
                Ok(Operand::Var(t))
            }
            ExprKind::Call(name, args) => {
                let mut ops = Vec::new();
                for a in args {
                    ops.push(self.expr(a)?);
                }
                let ty = self.expr_ty(e).clone();
                if let Some(intr) = Intrinsic::from_name(name) {
                    let t = self.temp(ty);
                    self.emit(Inst::Intrin {
                        dst: t,
                        op: intr,
                        args: ops,
                    });
                    return Ok(Operand::Var(t));
                }
                let func = self.func_ids[name.as_str()];
                let dst = match &ty {
                    Ty::Unit => None,
                    _ => Some(self.temp(ty.clone())),
                };
                self.emit(Inst::Call {
                    dst,
                    func,
                    args: ops,
                });
                Ok(dst.map(Operand::Var).unwrap_or(Operand::ConstInt(0)))
            }
            ExprKind::NewStruct(name) => {
                let sid = self
                    .prog
                    .structs
                    .iter()
                    .position(|s| s.name == *name)
                    .expect("checker resolved struct");
                let ty = self.expr_ty(e).clone();
                let t = self.temp(ty);
                self.emit(Inst::AllocStruct {
                    dst: t,
                    sid: StructId(sid as u32),
                });
                Ok(Operand::Var(t))
            }
            ExprKind::NewArray(_, len) => {
                let l = self.expr(len)?;
                let ty = self.expr_ty(e).clone();
                let t = self.temp(ty);
                self.emit(Inst::AllocArray { dst: t, len: l });
                Ok(Operand::Var(t))
            }
            ExprKind::Cast(inner, _) => {
                let iv = self.expr(inner)?;
                let from = self.expr_ty(inner).clone();
                let to = self.expr_ty(e).clone();
                if from == to {
                    return Ok(iv);
                }
                let t = self.temp(to.clone());
                let op = match (&from, &to) {
                    (Ty::Int, Ty::Float) => Intrinsic::IntToFloat,
                    (Ty::Float, Ty::Int) => Intrinsic::FloatToInt,
                    _ => unreachable!("checker verified cast"),
                };
                self.emit(Inst::Intrin {
                    dst: t,
                    op,
                    args: vec![iv],
                });
                Ok(Operand::Var(t))
            }
        }
    }

    fn short_circuit(&mut self, op: ast::BinOp, a: &Expr, b: &Expr) -> Result<Operand, Error> {
        let t = self.temp(Ty::Bool);
        let av = self.expr(a)?;
        let rhs_bb = self.new_block();
        let short_bb = self.new_block();
        let join = self.new_block();
        match op {
            ast::BinOp::And => self.term(Terminator::Branch {
                cond: av,
                then_bb: rhs_bb,
                else_bb: short_bb,
            }),
            ast::BinOp::Or => self.term(Terminator::Branch {
                cond: av,
                then_bb: short_bb,
                else_bb: rhs_bb,
            }),
            _ => unreachable!("only logical ops are short-circuit"),
        }
        self.switch_to(rhs_bb);
        let bv = self.expr(b)?;
        self.emit(Inst::Copy { dst: t, src: bv });
        self.term(Terminator::Jump(join));
        self.switch_to(short_bb);
        let short_value = Operand::ConstBool(matches!(op, ast::BinOp::Or));
        self.emit(Inst::Copy {
            dst: t,
            src: short_value,
        });
        self.term(Terminator::Jump(join));
        self.switch_to(join);
        Ok(Operand::Var(t))
    }
}

fn lower_binop(op: ast::BinOp) -> BinOp {
    match op {
        ast::BinOp::Add => BinOp::Add,
        ast::BinOp::Sub => BinOp::Sub,
        ast::BinOp::Mul => BinOp::Mul,
        ast::BinOp::Div => BinOp::Div,
        ast::BinOp::Rem => BinOp::Rem,
        ast::BinOp::Eq => BinOp::Eq,
        ast::BinOp::Ne => BinOp::Ne,
        ast::BinOp::Lt => BinOp::Lt,
        ast::BinOp::Le => BinOp::Le,
        ast::BinOp::Gt => BinOp::Gt,
        ast::BinOp::Ge => BinOp::Ge,
        ast::BinOp::BitAnd => BinOp::BitAnd,
        ast::BinOp::BitOr => BinOp::BitOr,
        ast::BinOp::BitXor => BinOp::BitXor,
        ast::BinOp::Shl => BinOp::Shl,
        ast::BinOp::Shr => BinOp::Shr,
        ast::BinOp::And | ast::BinOp::Or => {
            unreachable!("logical operators lower to control flow")
        }
    }
}

/// Removes blocks unreachable from the entry and compacts block ids.
fn prune_unreachable(f: &mut Function) {
    let n = f.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![BlockId(0)];
    while let Some(b) = stack.pop() {
        if reachable[b.index()] {
            continue;
        }
        reachable[b.index()] = true;
        for s in f.blocks[b.index()].term.successors() {
            stack.push(s);
        }
    }
    if reachable.iter().all(|&r| r) {
        return;
    }
    let mut remap = vec![None; n];
    let mut next = 0u32;
    for i in 0..n {
        if reachable[i] {
            remap[i] = Some(BlockId(next));
            next += 1;
        }
    }
    let map = |b: BlockId| remap[b.index()].expect("successor of reachable block is reachable");
    let mut blocks = Vec::with_capacity(next as usize);
    for (i, mut b) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        b.term = match b.term {
            Terminator::Jump(t) => Terminator::Jump(map(t)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond,
                then_bb: map(then_bb),
                else_bb: map(else_bb),
            },
            r @ Terminator::Return(_) => r,
        };
        blocks.push(b);
    }
    f.blocks = blocks;
    f.loop_tags = std::mem::take(&mut f.loop_tags)
        .into_iter()
        .filter_map(|(b, t)| remap[b.index()].map(|nb| (nb, t)))
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn lowers_simple_function() {
        let m = compile("fn main() -> int { let x: int = 2; return x * 21; }").expect("compile");
        let f = &m.funcs[0];
        assert_eq!(f.name, "main");
        assert!(matches!(
            f.blocks[0].term,
            Terminator::Return(Some(Operand::Var(_)))
        ));
    }

    #[test]
    fn while_loop_has_back_edge_to_header() {
        let m = compile("fn main() { let i: int = 0; while (i < 10) { i = i + 1; } }")
            .expect("compile");
        let f = &m.funcs[0];
        // Find a block whose terminator jumps backwards.
        let mut found_back_edge = false;
        for (i, b) in f.blocks.iter().enumerate() {
            for s in b.term.successors() {
                if s.index() <= i && i != s.index() {
                    found_back_edge = true;
                }
            }
        }
        assert!(found_back_edge, "expected a back edge in: {f:?}");
    }

    #[test]
    fn loop_tags_attached_to_headers() {
        let m = compile("fn main() { @outer: for (let i: int = 0; i < 4; i = i + 1) { } }")
            .expect("compile");
        let f = &m.funcs[0];
        assert_eq!(f.loop_tags.len(), 1);
        let (&header, tag) = f.loop_tags.iter().next().expect("one tag");
        assert_eq!(tag, "outer");
        // The tagged block is a branch target of some other block (the back
        // edge) and contains/leads to the loop condition.
        let preds: Vec<_> = f
            .block_ids()
            .filter(|&b| f.block(b).term.successors().contains(&header))
            .collect();
        assert!(preds.len() >= 2, "header should have entry + latch preds");
    }

    #[test]
    fn short_circuit_creates_control_flow() {
        let m = compile("fn f(a: bool, b: bool) -> bool { return a && b; }").expect("compile");
        assert!(m.funcs[0].blocks.len() >= 3);
    }

    #[test]
    fn break_prunes_unreachable_blocks() {
        let m = compile("fn main() { while (true) { break; } }").expect("compile");
        // No block is unreachable from the entry.
        let f = &m.funcs[0];
        let mut reach = vec![false; f.blocks.len()];
        let mut stack = vec![BlockId(0)];
        while let Some(b) = stack.pop() {
            if reach[b.index()] {
                continue;
            }
            reach[b.index()] = true;
            stack.extend(f.block(b).term.successors());
        }
        assert!(
            reach.iter().all(|&r| r),
            "unreachable block survived pruning"
        );
    }

    #[test]
    fn globals_lowered_with_initializers() {
        let m = compile(
            "let n: int = 5; let arr: [float; 8];\n\
             fn main() -> int { arr[0] = 1.5; return n; }",
        )
        .expect("compile");
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.globals[0].init, Some(Operand::ConstInt(5)));
        assert_eq!(m.globals[1].init, None);
        let insts = &m.funcs[0].blocks[0].insts;
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::StoreIndex {
                base: MemBase::Global(_),
                ..
            }
        )));
        assert!(insts.iter().any(|i| matches!(i, Inst::LoadGlobal { .. })));
    }

    #[test]
    fn non_constant_global_init_rejected() {
        let err = compile("let n: int = 2 + 3; fn main() { }").expect_err("should fail");
        assert!(err.to_string().contains("constant"));
    }

    #[test]
    fn field_access_through_pointer() {
        let m = compile(
            "struct Node { val: int, next: *Node }\n\
             fn main() -> int { let p: *Node = new Node; p.val = 7; return p.val; }",
        )
        .expect("compile");
        let insts = &m.funcs[0].blocks[0].insts;
        assert!(insts.iter().any(|i| matches!(i, Inst::AllocStruct { .. })));
        assert!(insts
            .iter()
            .any(|i| matches!(i, Inst::StoreField { field: 0, .. })));
        assert!(insts
            .iter()
            .any(|i| matches!(i, Inst::LoadField { field: 0, .. })));
    }

    #[test]
    fn intrinsics_lowered_not_called() {
        let m = compile("fn main() -> float { return sqrt(2.0); }").expect("compile");
        let insts = &m.funcs[0].blocks[0].insts;
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::Intrin {
                op: Intrinsic::Sqrt,
                ..
            }
        )));
        assert!(!insts.iter().any(|i| matches!(i, Inst::Call { .. })));
    }

    #[test]
    fn casts_lower_to_conversions() {
        let m =
            compile("fn main() -> float { let i: int = 3; return i as float; }").expect("compile");
        let insts = &m.funcs[0].blocks[0].insts;
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::Intrin {
                op: Intrinsic::IntToFloat,
                ..
            }
        )));
    }

    #[test]
    fn calls_lower_with_func_ids() {
        let m = compile(
            "fn helper(x: int) -> int { return x + 1; }\n\
             fn main() -> int { return helper(41); }",
        )
        .expect("compile");
        let main = m.func_by_name("main").expect("main exists");
        let insts = &m.func(main).blocks[0].insts;
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::Call {
                func: FuncId(0),
                ..
            }
        )));
    }
}
