//! Canonical, semantics-complete text forms of IR entities.
//!
//! The verdict cache in `dca-core` keys cached commutativity verdicts by
//! a fingerprint of these strings, so their shape is a **stability
//! contract**: two compiles must produce identical canonical text if and
//! only if they are the same program at the IR level. Whitespace,
//! comments and declaration order in the *source* never show up here —
//! lowering normalizes all of that — while anything that can change a
//! verdict does:
//!
//! * every instruction and terminator of every block, in block order
//!   (via the deterministic [`std::fmt::Display`] impls in `print.rs`);
//! * struct layouts, globals and their initializers;
//! * the full per-function variable table (names **and** types — local
//!   types drive interpreter semantics, and names appear verbatim in
//!   divergence reports, so a rename must miss the cache rather than
//!   replay a stale report);
//! * source loop tags, which select loops for analysis.
//!
//! Growing the text with new information is always safe (old cache
//! entries just miss); *removing* information is what would make two
//! different programs collide, and is the thing reviewers should block.

use crate::loops::Loop;
use crate::module::{Function, Module};
use std::fmt::Write as _;

/// Canonical text of a whole module: the deterministic IR printing plus
/// a per-function variable table.
///
/// The printed IR alone only shows parameter types; locals and
/// temporaries appear as bare `v7` uses. Their declared types still
/// change evaluation (e.g. float vs. int arithmetic on the same
/// operator), so the table makes them part of the canonical form.
#[must_use]
pub fn canonical_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = write!(out, "{m}");
    for (fi, func) in m.funcs.iter().enumerate() {
        let _ = writeln!(out, "vars f{fi} {}:", func.name);
        for (vi, v) in func.vars.iter().enumerate() {
            let _ = writeln!(out, "  v{vi} {}: {}", v.name, v.ty);
        }
    }
    out
}

/// Canonical text of one loop's body within `func`: the loop's identity
/// (header, depth, tag) followed by every member block's instructions
/// and terminator in ascending block order, plus the exit edges that
/// define where live-outs are verified.
#[must_use]
pub fn canonical_loop_body(func: &Function, l: &Loop) -> String {
    let mut out = String::new();
    let _ = write!(out, "loop {} header {} depth {}", l.id, l.header, l.depth);
    if let Some(tag) = &l.tag {
        let _ = write!(out, " @{tag}");
    }
    let _ = writeln!(out);
    for &b in &l.blocks {
        let _ = writeln!(out, "{b}:");
        let blk = func.block(b);
        for inst in &blk.insts {
            let _ = writeln!(out, "  {inst}");
        }
        let _ = writeln!(out, "  {}", blk.term);
    }
    for (from, to) in &l.exit_edges {
        let _ = writeln!(out, "exit {from} -> {to}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const TAGGED: &str = "fn main() -> int {
        let s: int = 0;
        let i: int = 0;
        @acc: while (i < 4) { s = s + i; i = i + 1; }
        return s;
    }";

    #[test]
    fn canonical_text_ignores_source_formatting() {
        let a = compile(TAGGED).expect("compile");
        let b = compile(
            "// a comment\nfn main() -> int { let s: int = 0; \t let i: int = 0;\n\n\
             @acc: while (i < 4) { s = s + i; i = i + 1; } return s; }",
        )
        .expect("compile");
        assert_eq!(canonical_module(&a), canonical_module(&b));
    }

    #[test]
    fn canonical_text_distinguishes_semantic_changes() {
        let base = canonical_module(&compile(TAGGED).expect("compile"));
        // A different constant.
        let c = canonical_module(&compile(&TAGGED.replace("i < 4", "i < 5")).expect("compile"));
        assert_ne!(base, c);
        // Local types are recorded even though instruction printing
        // elides them: the var table names every declared local.
        assert!(base.contains("vars f0 main:"), "var table present: {base}");
        assert!(base.contains("s: int"), "local type recorded: {base}");
        // A rename: verdicts embed variable names in divergence reports,
        // so renames must change the canonical form too.
        let r = canonical_module(
            &compile(
                &TAGGED
                    .replace("let s", "let total")
                    .replace("s =", "total =")
                    .replace("s + i", "total + i")
                    .replace("return s", "return total"),
            )
            .expect("compile"),
        );
        assert_ne!(base, r);
    }

    #[test]
    fn loop_body_covers_blocks_tag_and_exits() {
        let m = compile(TAGGED).expect("compile");
        let view = crate::FuncView::new(&m, m.main().expect("main"));
        let l = view
            .loops
            .iter()
            .find(|l| l.tag.as_deref() == Some("acc"))
            .expect("tagged loop");
        let text = canonical_loop_body(view.func, l);
        assert!(text.starts_with("loop "), "identity line first: {text}");
        assert!(text.contains("@acc"));
        assert!(text.contains("exit "), "exit edges present: {text}");
        // Every member block appears exactly once.
        for &b in &l.blocks {
            assert_eq!(text.matches(&format!("{b}:")).count(), 1);
        }
    }
}
