//! Dominator-tree computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::Cfg;
use crate::module::{BlockId, Function};

/// The dominator tree of a function's CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (`idom[entry] == entry`).
    idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// Computes dominators for `f` using its CFG.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let entry = f.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);
        let rpo = cfg.reverse_postorder();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cfg, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom }
    }

    /// Immediate dominator of `b`; the entry's idom is itself. `None` for
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// True if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(i) if i != cur => cur = i,
                _ => return false,
            }
        }
    }
}

fn intersect(idom: &[Option<BlockId>], cfg: &Cfg, mut a: BlockId, mut b: BlockId) -> BlockId {
    let pos = |x: BlockId| cfg.rpo_index(x).expect("reachable block in intersect");
    while a != b {
        while pos(a) > pos(b) {
            a = idom[a.index()].expect("processed block has idom");
        }
        while pos(b) > pos(a) {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn dom_of(src: &str) -> (crate::module::Function, Cfg, DomTree) {
        let m = compile(src).expect("compile");
        let f = m.funcs[0].clone();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        (f, cfg, dt)
    }

    #[test]
    fn entry_dominates_everything() {
        let (f, _, dt) = dom_of(
            "fn f(c: bool) -> int { let x: int = 0; \
             if (c) { x = 1; } else { x = 2; } while (x < 5) { x = x + 1; } return x; }",
        );
        for b in f.block_ids() {
            assert!(dt.dominates(f.entry(), b), "{b} not dominated by entry");
        }
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let (f, cfg, dt) = dom_of(
            "fn f(c: bool) -> int { let x: int = 0; \
             if (c) { x = 1; } else { x = 2; } return x; }",
        );
        let join = f
            .block_ids()
            .find(|&b| cfg.preds(b).len() == 2)
            .expect("join");
        for &arm in cfg.preds(join) {
            assert!(!dt.dominates(arm, join));
        }
        assert_eq!(dt.idom(join), Some(f.entry()));
    }

    #[test]
    fn loop_header_dominates_body_and_latch() {
        let (f, cfg, dt) = dom_of("fn main() { let i: int = 0; while (i < 3) { i = i + 1; } }");
        // The header is the target of a back edge.
        let mut header = None;
        for b in f.block_ids() {
            for &s in cfg.succs(b) {
                if dt.dominates(s, b) {
                    header = Some((s, b));
                }
            }
        }
        let (h, latch) = header.expect("loop with back edge");
        assert!(dt.dominates(h, latch));
    }

    #[test]
    fn dominance_is_a_partial_order() {
        let (f, _, dt) = dom_of(
            "fn f(c: bool) -> int { let x: int = 0; if (c) { x = 1; } \
             while (x < 9) { x = x + 2; if (c) { x = x + 1; } } return x; }",
        );
        for a in f.block_ids() {
            assert!(dt.dominates(a, a), "reflexive");
            for b in f.block_ids() {
                if a != b && dt.dominates(a, b) && dt.dominates(b, a) {
                    panic!("antisymmetry violated for {a} and {b}");
                }
                for c in f.block_ids() {
                    if dt.dominates(a, b) && dt.dominates(b, c) {
                        assert!(dt.dominates(a, c), "transitivity violated");
                    }
                }
            }
        }
    }
}
