//! The intermediate representation: modules, functions, blocks and
//! instructions.
//!
//! The IR is a conventional register machine over a control-flow graph:
//! every function has a flat pool of typed variables (parameters, named
//! locals and compiler temporaries are all [`VarId`]s), basic blocks of
//! side-effect-ordered instructions, and a single terminator per block.
//! Memory is accessed only through explicit load/store instructions, which
//! is what makes dependence profiling and commutativity instrumentation
//! straightforward.

use dca_lang::sema::{StructInfo, Ty};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A variable within one function: parameter, local or temporary.
    VarId,
    "v"
);
id_type!(
    /// A basic block within one function.
    BlockId,
    "bb"
);
id_type!(
    /// A function within a module.
    FuncId,
    "fn"
);
id_type!(
    /// A global variable within a module.
    GlobalId,
    "g"
);
id_type!(
    /// A struct type within a module.
    StructId,
    "s"
);

/// An instruction operand: a variable or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Read a variable.
    Var(VarId),
    /// Integer immediate.
    ConstInt(i64),
    /// Float immediate.
    ConstFloat(f64),
    /// Boolean immediate.
    ConstBool(bool),
    /// The null pointer.
    Null,
}

impl Operand {
    /// The variable this operand reads, if any.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

/// Binary operators. Arithmetic operators are polymorphic over `int` and
/// `float` (the checker guarantees both operands agree); the rest are
/// integer- or pointer-typed as in the source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division truncates; division by zero traps).
    Div,
    /// Integer remainder.
    Rem,
    /// Equality (ints, floats, bools, pointers).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

impl BinOp {
    /// True if the operator is commutative *as an operation on values*
    /// (used by reduction recognition).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::BitXor
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
            BinOp::BitAnd => "and",
            BinOp::BitOr => "or",
            BinOp::BitXor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (int or float).
    Neg,
    /// Boolean not.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "neg"),
            UnOp::Not => write!(f, "not"),
        }
    }
}

/// Pure math intrinsics (lowered from the builtins in
/// [`dca_lang::sema::BUILTINS`]) plus the numeric casts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `sqrt(f)`.
    Sqrt,
    /// `sin(f)`.
    Sin,
    /// `cos(f)`.
    Cos,
    /// `exp(f)`.
    Exp,
    /// `log(f)`.
    Log,
    /// `fabs(f)`.
    Fabs,
    /// `pow(f, f)`.
    Pow,
    /// `fmin(f, f)`.
    Fmin,
    /// `fmax(f, f)`.
    Fmax,
    /// `iabs(i)`.
    Iabs,
    /// `imin(i, i)`.
    Imin,
    /// `imax(i, i)`.
    Imax,
    /// `i as float`.
    IntToFloat,
    /// `f as int` (truncating).
    FloatToInt,
}

impl Intrinsic {
    /// Resolves a builtin function name to its intrinsic, if it is one.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sqrt" => Intrinsic::Sqrt,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "fabs" => Intrinsic::Fabs,
            "pow" => Intrinsic::Pow,
            "fmin" => Intrinsic::Fmin,
            "fmax" => Intrinsic::Fmax,
            "iabs" => Intrinsic::Iabs,
            "imin" => Intrinsic::Imin,
            "imax" => Intrinsic::Imax,
            _ => return None,
        })
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Pow => "pow",
            Intrinsic::Fmin => "fmin",
            Intrinsic::Fmax => "fmax",
            Intrinsic::Iabs => "iabs",
            Intrinsic::Imin => "imin",
            Intrinsic::Imax => "imax",
            Intrinsic::IntToFloat => "itof",
            Intrinsic::FloatToInt => "ftoi",
        };
        write!(f, "{s}")
    }
}

/// The base of an indexed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemBase {
    /// A global fixed array.
    Global(GlobalId),
    /// A variable: either a fixed local array (frame storage) or a pointer
    /// to a heap array.
    Var(VarId),
}

/// One argument of a `print` instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum PrintOp {
    /// A literal label, emitted verbatim.
    Label(String),
    /// A value operand, evaluated and emitted.
    Value(Operand),
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = src`.
    Copy {
        /// Destination variable.
        dst: VarId,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op a`.
    Un {
        /// Destination variable.
        dst: VarId,
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// `dst = a op b`.
    Bin {
        /// Destination variable.
        dst: VarId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = intrinsic(args...)` — pure, no memory access.
    Intrin {
        /// Destination variable.
        dst: VarId,
        /// Which intrinsic.
        op: Intrinsic,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `dst = base[index]`.
    LoadIndex {
        /// Destination variable.
        dst: VarId,
        /// Array base.
        base: MemBase,
        /// Element index.
        index: Operand,
    },
    /// `base[index] = value`.
    StoreIndex {
        /// Array base.
        base: MemBase,
        /// Element index.
        index: Operand,
        /// Stored value.
        value: Operand,
    },
    /// `dst = obj.field` through a struct pointer.
    LoadField {
        /// Destination variable.
        dst: VarId,
        /// Struct pointer operand.
        obj: Operand,
        /// Field index.
        field: u32,
    },
    /// `obj.field = value` through a struct pointer.
    StoreField {
        /// Struct pointer operand.
        obj: Operand,
        /// Field index.
        field: u32,
        /// Stored value.
        value: Operand,
    },
    /// `dst = g` for a scalar global.
    LoadGlobal {
        /// Destination variable.
        dst: VarId,
        /// The global.
        global: GlobalId,
    },
    /// `g = value` for a scalar global.
    StoreGlobal {
        /// The global.
        global: GlobalId,
        /// Stored value.
        value: Operand,
    },
    /// `dst = new Struct` — heap-allocate a zeroed struct.
    AllocStruct {
        /// Destination variable (pointer).
        dst: VarId,
        /// Which struct.
        sid: StructId,
    },
    /// `dst = new [T; len]` — heap-allocate a zeroed array.
    AllocArray {
        /// Destination variable (pointer).
        dst: VarId,
        /// Number of elements.
        len: Operand,
    },
    /// `dst? = func(args...)`.
    Call {
        /// Destination variable, absent for unit functions.
        dst: Option<VarId>,
        /// Callee.
        func: FuncId,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Observable output (the I/O marker used to exclude loops from DCA).
    Print {
        /// Arguments in order.
        args: Vec<PrintOp>,
    },
}

impl Inst {
    /// The variable this instruction defines, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Inst::Copy { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Intrin { dst, .. }
            | Inst::LoadIndex { dst, .. }
            | Inst::LoadField { dst, .. }
            | Inst::LoadGlobal { dst, .. }
            | Inst::AllocStruct { dst, .. }
            | Inst::AllocArray { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::StoreIndex { .. }
            | Inst::StoreField { .. }
            | Inst::StoreGlobal { .. }
            | Inst::Print { .. } => None,
        }
    }

    /// Appends every variable this instruction reads to `out`.
    pub fn uses_into(&self, out: &mut Vec<VarId>) {
        fn op(out: &mut Vec<VarId>, o: &Operand) {
            if let Operand::Var(v) = o {
                out.push(*v);
            }
        }
        match self {
            Inst::Copy { src, .. } => op(out, src),
            Inst::Un { a, .. } => op(out, a),
            Inst::Bin { a, b, .. } => {
                op(out, a);
                op(out, b);
            }
            Inst::Intrin { args, .. } => args.iter().for_each(|a| op(out, a)),
            Inst::LoadIndex { base, index, .. } => {
                if let MemBase::Var(v) = base {
                    out.push(*v);
                }
                op(out, index);
            }
            Inst::StoreIndex { base, index, value } => {
                if let MemBase::Var(v) = base {
                    out.push(*v);
                }
                op(out, index);
                op(out, value);
            }
            Inst::LoadField { obj, .. } => op(out, obj),
            Inst::StoreField { obj, value, .. } => {
                op(out, obj);
                op(out, value);
            }
            Inst::LoadGlobal { .. } => {}
            Inst::StoreGlobal { value, .. } => op(out, value),
            Inst::AllocStruct { .. } => {}
            Inst::AllocArray { len, .. } => op(out, len),
            Inst::Call { args, .. } => args.iter().for_each(|a| op(out, a)),
            Inst::Print { args } => {
                for a in args {
                    if let PrintOp::Value(o) = a {
                        op(out, o);
                    }
                }
            }
        }
    }

    /// The variables this instruction reads.
    pub fn uses(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.uses_into(&mut out);
        out
    }

    /// True if the instruction reads or writes memory (arrays, fields,
    /// globals), allocates, calls, or prints — i.e. anything beyond pure
    /// register dataflow.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::StoreIndex { .. }
                | Inst::StoreField { .. }
                | Inst::StoreGlobal { .. }
                | Inst::AllocStruct { .. }
                | Inst::AllocArray { .. }
                | Inst::Call { .. }
                | Inst::Print { .. }
        )
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on a boolean operand.
    Branch {
        /// Condition.
        cond: Operand,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return.
    Return(Option<Operand>),
}

impl Terminator {
    /// Successor blocks, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => vec![],
        }
    }

    /// The variables the terminator reads.
    pub fn uses(&self) -> Vec<VarId> {
        match self {
            Terminator::Branch {
                cond: Operand::Var(v),
                ..
            } => vec![*v],
            Terminator::Return(Some(Operand::Var(v))) => vec![*v],
            _ => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions in execution order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

/// Metadata about one function variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Source name, or a generated name for temporaries.
    pub name: String,
    /// Resolved type.
    pub ty: Ty,
    /// True for compiler-generated temporaries.
    pub is_temp: bool,
}

/// A function in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters (always the first `params.len()` entries of `vars`).
    pub params: Vec<VarId>,
    /// Return type (`Ty::Unit` for none).
    pub ret: Ty,
    /// All variables: parameters, named locals, temporaries.
    pub vars: Vec<VarInfo>,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
    /// Source loop tags: header block of a tagged source loop → tag.
    pub loop_tags: std::collections::HashMap<BlockId, String>,
}

impl Function {
    /// The entry block (always `bb0`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Iterator over block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Access a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Variable metadata.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalInfo {
    /// Global name.
    pub name: String,
    /// Resolved type (scalar or fixed array).
    pub ty: Ty,
    /// Constant scalar initializer (zero if absent).
    pub init: Option<Operand>,
}

/// A whole program in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Struct layouts, indexed by [`StructId`].
    pub structs: Vec<StructInfo>,
    /// Globals, indexed by [`GlobalId`].
    pub globals: Vec<GlobalInfo>,
    /// Functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
}

impl Module {
    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// The `main` function, if present.
    pub fn main(&self) -> Option<FuncId> {
        self.func_by_name("main")
    }

    /// Access a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(VarId(3).to_string(), "v3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(GlobalId(1).to_string(), "g1");
    }

    #[test]
    fn inst_def_and_uses() {
        let i = Inst::Bin {
            dst: VarId(0),
            op: BinOp::Add,
            a: Operand::Var(VarId(1)),
            b: Operand::ConstInt(2),
        };
        assert_eq!(i.def(), Some(VarId(0)));
        assert_eq!(i.uses(), vec![VarId(1)]);
    }

    #[test]
    fn store_has_no_def_but_uses_base() {
        let i = Inst::StoreIndex {
            base: MemBase::Var(VarId(5)),
            index: Operand::Var(VarId(6)),
            value: Operand::ConstFloat(1.0),
        };
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), vec![VarId(5), VarId(6)]);
        assert!(i.has_side_effects());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(2)).successors(), vec![BlockId(2)]);
        assert_eq!(
            Terminator::Branch {
                cond: Operand::ConstBool(true),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            }
            .successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Terminator::Return(None).successors().is_empty());
    }

    #[test]
    fn commutative_ops() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Div.is_commutative());
    }

    #[test]
    fn intrinsic_from_name() {
        assert_eq!(Intrinsic::from_name("sqrt"), Some(Intrinsic::Sqrt));
        assert_eq!(Intrinsic::from_name("nope"), None);
    }
}
