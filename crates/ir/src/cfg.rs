//! Control-flow graph utilities: predecessors, postorder traversals.

use crate::module::{BlockId, Function};

/// Precomputed CFG edge information for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry.
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG for a function.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for b in f.block_ids() {
            for s in f.block(b).term.successors() {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }
        // Iterative postorder DFS.
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
        state[f.entry().index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            preds,
            succs,
            rpo,
            rpo_index,
        }
    }

    /// Predecessors of a block.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of a block.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Blocks in reverse postorder from the entry.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in reverse postorder (`None` if unreachable).
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.index()];
        (i != usize::MAX).then_some(i)
    }

    /// Number of blocks in the underlying function.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True if the function has no blocks (never happens for lowered code).
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn diamond_cfg_edges() {
        let m = compile(
            "fn f(c: bool) -> int { let x: int = 0; \
             if (c) { x = 1; } else { x = 2; } return x; }",
        )
        .expect("compile");
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        // Entry has two successors, the join has two predecessors.
        assert_eq!(cfg.succs(f.entry()).len(), 2);
        let join = f
            .block_ids()
            .find(|&b| cfg.preds(b).len() == 2)
            .expect("join block");
        assert!(matches!(
            f.block(join).term,
            crate::module::Terminator::Return(_)
        ));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let m =
            compile("fn main() { let i: int = 0; while (i < 3) { i = i + 1; } }").expect("compile");
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        assert_eq!(cfg.reverse_postorder()[0], f.entry());
        assert_eq!(cfg.reverse_postorder().len(), f.blocks.len());
        for b in f.block_ids() {
            assert!(cfg.rpo_index(b).is_some());
        }
    }

    #[test]
    fn rpo_respects_forward_edges_outside_loops() {
        let m =
            compile("fn f(c: bool) -> int { if (c) { return 1; } return 2; }").expect("compile");
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        for b in f.block_ids() {
            for s in cfg.succs(b) {
                // In an acyclic CFG every edge goes forward in RPO.
                assert!(cfg.rpo_index(b).expect("reach") < cfg.rpo_index(*s).expect("reach"));
            }
        }
    }
}
