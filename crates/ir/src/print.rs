//! Human-readable IR printing, for debugging and golden tests.

use crate::module::*;
use std::fmt;

struct OpFmt<'a>(&'a Operand);

impl fmt::Display for OpFmt<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::ConstInt(v) => write!(f, "{v}"),
            Operand::ConstFloat(v) => write!(f, "{v:?}"),
            Operand::ConstBool(v) => write!(f, "{v}"),
            Operand::Null => write!(f, "null"),
        }
    }
}

struct BaseFmt<'a>(&'a MemBase);

impl fmt::Display for BaseFmt<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            MemBase::Global(g) => write!(f, "{g}"),
            MemBase::Var(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Copy { dst, src } => write!(f, "{dst} = {}", OpFmt(src)),
            Inst::Un { dst, op, a } => write!(f, "{dst} = {op} {}", OpFmt(a)),
            Inst::Bin { dst, op, a, b } => {
                write!(f, "{dst} = {op} {}, {}", OpFmt(a), OpFmt(b))
            }
            Inst::Intrin { dst, op, args } => {
                write!(f, "{dst} = {op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", OpFmt(a))?;
                }
                write!(f, ")")
            }
            Inst::LoadIndex { dst, base, index } => {
                write!(f, "{dst} = load {}[{}]", BaseFmt(base), OpFmt(index))
            }
            Inst::StoreIndex { base, index, value } => {
                write!(
                    f,
                    "store {}[{}] = {}",
                    BaseFmt(base),
                    OpFmt(index),
                    OpFmt(value)
                )
            }
            Inst::LoadField { dst, obj, field } => {
                write!(f, "{dst} = load {}.f{field}", OpFmt(obj))
            }
            Inst::StoreField { obj, field, value } => {
                write!(f, "store {}.f{field} = {}", OpFmt(obj), OpFmt(value))
            }
            Inst::LoadGlobal { dst, global } => write!(f, "{dst} = load {global}"),
            Inst::StoreGlobal { global, value } => {
                write!(f, "store {global} = {}", OpFmt(value))
            }
            Inst::AllocStruct { dst, sid } => write!(f, "{dst} = new {sid}"),
            Inst::AllocArray { dst, len } => write!(f, "{dst} = new[{}]", OpFmt(len)),
            Inst::Call { dst, func, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call {func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", OpFmt(a))?;
                }
                write!(f, ")")
            }
            Inst::Print { args } => {
                write!(f, "print(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match a {
                        PrintOp::Label(s) => write!(f, "{s:?}")?,
                        PrintOp::Value(o) => write!(f, "{}", OpFmt(o))?,
                    }
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jump {b}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "br {}, {then_bb}, {else_bb}", OpFmt(cond)),
            Terminator::Return(None) => write!(f, "ret"),
            Terminator::Return(Some(v)) => write!(f, "ret {}", OpFmt(v)),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}: {}", self.var(*p).ty)?;
        }
        writeln!(f, ") -> {} {{", self.ret)?;
        for b in self.block_ids() {
            let tag = self
                .loop_tags
                .get(&b)
                .map(|t| format!("  ; @{t}"))
                .unwrap_or_default();
            writeln!(f, "{b}:{tag}")?;
            for inst in &self.block(b).insts {
                writeln!(f, "  {inst}")?;
            }
            writeln!(f, "  {}", self.block(b).term)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.structs.iter().enumerate() {
            write!(f, "struct s{i} {}", s.name)?;
            writeln!(
                f,
                " {{ {} }}",
                s.fields
                    .iter()
                    .map(|(n, t)| format!("{n}: {t}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        for (i, g) in self.globals.iter().enumerate() {
            write!(f, "global g{i} {}: {}", g.name, g.ty)?;
            match &g.init {
                Some(v) => writeln!(f, " = {}", OpFmt(v))?,
                None => writeln!(f)?,
            }
        }
        for func in &self.funcs {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;

    #[test]
    fn function_printing_is_stable() {
        let m = compile("fn main() -> int { let x: int = 1; return x + 2; }").expect("compile");
        let text = m.funcs[0].to_string();
        assert!(text.contains("fn main()"));
        assert!(text.contains("bb0:"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn module_printing_lists_structs_and_globals() {
        let m = compile("struct N { v: int }\nlet g: int = 4;\nfn main() { }").expect("compile");
        let text = m.to_string();
        assert!(text.contains("struct s0 N"));
        assert!(text.contains("global g0 g: int = 4"));
    }

    #[test]
    fn tagged_loop_headers_annotated() {
        let m = compile("fn main() { @hot: while (false) { } }").expect("compile");
        assert!(m.funcs[0].to_string().contains("; @hot"));
    }
}
