//! Compiler IR for the DCA reproduction.
//!
//! This crate plays the role LLVM IR plays in the paper's prototype: a
//! CFG-based register-machine representation of mini-C programs, plus the
//! structural analyses every later stage builds on — predecessor/successor
//! edges ([`cfg::Cfg`]), dominators ([`dom::DomTree`]) and the natural-loop
//! nesting forest ([`loops::LoopForest`]).
//!
//! # Example
//!
//! ```
//! use dca_ir::{compile, FuncView};
//!
//! let module = compile(
//!     "fn main() -> int {
//!          let s: int = 0;
//!          @sum: for (let i: int = 0; i < 10; i = i + 1) { s = s + i; }
//!          return s;
//!      }",
//! )?;
//! let main = module.main().expect("main exists");
//! let view = FuncView::new(&module, main);
//! assert_eq!(view.loops.len(), 1);
//! assert!(view.loops.by_tag("sum").is_some());
//! # Ok::<(), dca_lang::Error>(())
//! ```

#![warn(missing_docs)]

pub mod canon;
pub mod cfg;
pub mod dom;
pub mod loops;
pub mod lower;
pub mod module;
mod print;

pub use canon::{canonical_loop_body, canonical_module};
pub use cfg::Cfg;
pub use dca_lang::sema::{StructInfo, Ty};
pub use dom::DomTree;
pub use loops::{Loop, LoopForest, LoopId};
pub use lower::lower;
pub use module::{
    BinOp, Block, BlockId, FuncId, Function, GlobalId, GlobalInfo, Inst, Intrinsic, MemBase,
    Module, Operand, PrintOp, StructId, Terminator, UnOp, VarId, VarInfo,
};

/// Compiles mini-C source all the way to an IR [`Module`].
///
/// # Errors
///
/// Returns the first frontend (lex/parse/type) or lowering error.
pub fn compile(source: &str) -> Result<Module, dca_lang::Error> {
    let checked = dca_lang::frontend(source)?;
    lower(&checked)
}

/// A function together with its derived structural analyses.
///
/// Most analyses need the CFG, dominators and loops together; this bundles
/// one consistent set. The view borrows the module, so it is cheap to build
/// per function and discard.
#[derive(Debug)]
pub struct FuncView<'m> {
    /// The module the function belongs to.
    pub module: &'m Module,
    /// The function's id.
    pub id: FuncId,
    /// The function.
    pub func: &'m Function,
    /// Control-flow graph edges.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Natural-loop forest.
    pub loops: LoopForest,
}

impl<'m> FuncView<'m> {
    /// Builds the CFG, dominator tree and loop forest for `id`.
    pub fn new(module: &'m Module, id: FuncId) -> Self {
        let func = module.func(id);
        let cfg = Cfg::new(func);
        let dom = DomTree::new(func, &cfg);
        let loops = LoopForest::new(func, &cfg, &dom);
        FuncView {
            module,
            id,
            func,
            cfg,
            dom,
            loops,
        }
    }
}

/// Uniquely identifies a loop across a whole module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopRef {
    /// The containing function.
    pub func: FuncId,
    /// The loop within that function's [`LoopForest`].
    pub loop_id: LoopId,
}

impl std::fmt::Display for LoopRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.func, self.loop_id)
    }
}

/// Enumerates every natural loop in the module as a [`LoopRef`] together
/// with its optional source tag, in deterministic order.
pub fn all_loops(module: &Module) -> Vec<(LoopRef, Option<String>)> {
    let mut out = Vec::new();
    for (i, _) in module.funcs.iter().enumerate() {
        let id = FuncId(i as u32);
        let view = FuncView::new(module, id);
        for l in view.loops.iter() {
            out.push((
                LoopRef {
                    func: id,
                    loop_id: l.id,
                },
                l.tag.clone(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_end_to_end() {
        let m = compile("fn main() -> int { return 42; }").expect("compile");
        assert!(m.main().is_some());
    }

    #[test]
    fn compile_propagates_frontend_errors() {
        assert!(compile("fn main() -> int { return x; }").is_err());
        assert!(compile("fn main( {").is_err());
    }

    #[test]
    fn func_view_bundles_consistent_analyses() {
        let m =
            compile("fn main() { let i: int = 0; while (i < 3) { i = i + 1; } }").expect("compile");
        let v = FuncView::new(&m, m.main().expect("main"));
        assert_eq!(v.loops.len(), 1);
        let l = v.loops.iter().next().expect("loop");
        for &latch in &l.latches {
            assert!(v.dom.dominates(l.header, latch));
        }
    }

    #[test]
    fn all_loops_spans_functions() {
        let m = compile(
            "fn a() { let i: int = 0; while (i < 2) { i = i + 1; } }\n\
             fn main() { a(); let j: int = 0; @x: while (j < 2) { j = j + 1; } }",
        )
        .expect("compile");
        let loops = all_loops(&m);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[1].1.as_deref(), Some("x"));
    }
}
